//! Equivalence guarantees of the query engine's execution modes: sharded
//! scans, batch execution, the threshold fast path and the filter cascade
//! must return exactly the results of the seed-faithful sequential scan,
//! for the standard estimator and for both ablation variants (GBDA-V1,
//! GBDA-V2).

use gbda::prelude::*;
use rand::SeedableRng;

fn workload() -> (Vec<Graph>, GraphDatabase) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE9E);
    let mut graphs = Vec::new();
    // Mixed sizes so the extended size genuinely varies across the scan.
    for size in [10usize, 13, 16] {
        let cfg = GeneratorConfig::new(size, 2.2).with_alphabets(LabelAlphabets::new(6, 3));
        graphs.extend(cfg.generate_many(20, &mut rng).unwrap());
    }
    let queries: Vec<Graph> = (0..6).map(|i| graphs[i * 7].clone()).collect();
    (queries, GraphDatabase::from_graphs(graphs))
}

fn assert_outcomes_identical(a: &SearchOutcome, b: &SearchOutcome, context: &str) {
    assert_eq!(a.matches, b.matches, "matches diverge: {context}");
    assert_eq!(
        a.posteriors.len(),
        b.posteriors.len(),
        "posterior lengths diverge: {context}"
    );
    for (i, (x, y)) in a.posteriors.iter().zip(&b.posteriors).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "posterior {i} diverges ({x} vs {y}): {context}"
        );
    }
}

fn check_variant(variant: GbdaVariant, label: &str) {
    let (queries, database) = workload();
    let config = GbdaConfig::new(4, 0.7)
        .with_sample_pairs(300)
        .with_variant(variant);
    let index = OfflineIndex::build(&database, &config).unwrap();

    let sequential = QueryEngine::new(&database, &index, config.clone());
    let sharded = QueryEngine::new(&database, &index, config.clone().with_shards(4));

    // Per-query: sharded scan ≡ sequential scan ≡ seed reference scan.
    for (qi, query) in queries.iter().enumerate() {
        let reference = sequential.reference_search(query);
        assert_outcomes_identical(
            &sequential.search(query),
            &reference,
            &format!("{label}, sequential vs reference, query {qi}"),
        );
        assert_outcomes_identical(
            &sharded.search(query),
            &reference,
            &format!("{label}, sharded vs reference, query {qi}"),
        );
    }

    // Batch: order preserved, outcomes identical to per-query search.
    let batch = sharded.search_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    for (qi, (query, outcome)) in queries.iter().zip(&batch).enumerate() {
        assert_outcomes_identical(
            outcome,
            &sequential.search(query),
            &format!("{label}, batch vs sequential, query {qi}"),
        );
    }
}

#[test]
fn sharded_and_batch_execution_match_sequential_for_standard_gbda() {
    check_variant(GbdaVariant::Standard, "standard");
}

#[test]
fn sharded_and_batch_execution_match_sequential_for_variant_v1() {
    check_variant(
        GbdaVariant::AverageExtendedSize { sample_graphs: 8 },
        "V1(α=8)",
    );
}

#[test]
fn sharded_and_batch_execution_match_sequential_for_variant_v2() {
    check_variant(GbdaVariant::WeightedGbd { weight: 0.5 }, "V2(w=0.5)");
}

#[test]
fn threshold_fast_path_matches_recorded_scan_for_all_variants() {
    for (variant, label) in [
        (GbdaVariant::Standard, "standard"),
        (
            GbdaVariant::AverageExtendedSize { sample_graphs: 8 },
            "V1(α=8)",
        ),
        (GbdaVariant::WeightedGbd { weight: 0.5 }, "V2(w=0.5)"),
    ] {
        let (queries, database) = workload();
        let config = GbdaConfig::new(4, 0.7)
            .with_sample_pairs(300)
            .with_variant(variant);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let recording = QueryEngine::new(&database, &index, config.clone());
        let fast = QueryEngine::new(
            &database,
            &index,
            config.with_record_posteriors(false).with_shards(2),
        );
        for (qi, query) in queries.iter().enumerate() {
            let a = recording.search(query);
            let b = fast.search(query);
            assert_eq!(a.matches, b.matches, "{label}, query {qi}");
            assert!(b.posteriors.is_empty());
        }
    }
}

#[test]
fn filter_cascade_is_bit_identical_to_the_merge_scan_for_all_variants() {
    for (variant, label) in [
        (GbdaVariant::Standard, "standard"),
        (
            GbdaVariant::AverageExtendedSize { sample_graphs: 8 },
            "V1(α=8)",
        ),
        (GbdaVariant::WeightedGbd { weight: 0.5 }, "V2(w=0.5)"),
    ] {
        let (queries, database) = workload();
        let config = GbdaConfig::new(4, 0.7)
            .with_sample_pairs(300)
            .with_variant(variant);
        let index = OfflineIndex::build(&database, &config).unwrap();
        for record in [true, false] {
            let cascade = QueryEngine::new(
                &database,
                &index,
                config.clone().with_record_posteriors(record),
            );
            let merge = QueryEngine::new(
                &database,
                &index,
                config
                    .clone()
                    .with_record_posteriors(record)
                    .with_filter_cascade(false),
            );
            for (qi, query) in queries.iter().enumerate() {
                let a = cascade.search(query);
                let b = merge.search(query);
                let context = format!("{label}, record={record}, query {qi}");
                assert_outcomes_identical(&a, &b, &context);
                // The cascade run never merged a single graph; the merge run
                // merged all of them.
                assert_eq!(a.stats.merged, 0, "{context}");
                assert_eq!(a.stats.skipped_merges(), database.len(), "{context}");
                assert_eq!(b.stats.merged, database.len(), "{context}");
            }
        }
    }
}

#[test]
fn cascade_stage_counters_partition_sharded_and_batch_scans() {
    let (queries, database) = workload();
    let config = GbdaConfig::new(4, 0.7)
        .with_sample_pairs(300)
        .with_record_posteriors(false)
        .with_shards(4);
    let index = OfflineIndex::build(&database, &config).unwrap();
    let engine = QueryEngine::new(&database, &index, config);
    for query in &queries {
        let stats = engine.search(query).stats;
        assert_eq!(
            stats.bound_rejected + stats.bound_accepted + stats.postings_resolved + stats.merged,
            database.len(),
            "stage counters must partition the scan"
        );
    }
    let (outcomes, batch_stats) = engine.search_batch_with_stats(&queries);
    assert_eq!(outcomes.len(), queries.len());
    assert_eq!(
        batch_stats.skipped_merges() + batch_stats.merged,
        database.len() * queries.len(),
        "batch stats must aggregate the filter counters"
    );
    assert_eq!(batch_stats.evaluated, database.len() * queries.len());
}

#[test]
fn search_stats_account_for_every_database_graph() {
    let (queries, database) = workload();
    let config = GbdaConfig::new(3, 0.8)
        .with_sample_pairs(300)
        .with_shards(3);
    let index = OfflineIndex::build(&database, &config).unwrap();
    let engine = QueryEngine::new(&database, &index, config);
    let outcome = engine.search(&queries[0]);
    assert_eq!(outcome.stats.evaluated, database.len());
    assert_eq!(
        outcome.stats.cache_hits + outcome.stats.cache_misses,
        database.len()
    );
    assert_eq!(outcome.stats.shards, 3);
    assert!(outcome.stats.scan_seconds >= 0.0);
}
