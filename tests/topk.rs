//! Ranked-query integration tests, exercised through the `gbda` facade.
//!
//! The central property: for **every** engine mode — Standard / V1 / V2
//! variants, cascade on/off, 1/2/4 shards — `search_top_k(query, k)` is
//! bit-identical to the definitional reference "scan every graph
//! threshold-free, sort by (posterior descending, graph id ascending),
//! truncate to `k`", where the reference posteriors come from the already
//! proven [`QueryEngine::search`] recording path. The tie-break suite then
//! pins the determinism guarantee itself: equal posteriors order by
//! ascending graph id, run-to-run, on sharded, batched and dynamic scans.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graphs_from_seed(seed: u64, count: usize, size: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    GeneratorConfig::new(size, 2.2)
        .with_alphabets(LabelAlphabets::new(6, 3))
        .generate_many(count, &mut rng)
        .expect("generation succeeds")
}

fn mixed_graphs(seed: u64, per_size: usize) -> Vec<Graph> {
    let mut graphs = Vec::new();
    for (k, size) in [8usize, 12, 16].into_iter().enumerate() {
        graphs.extend(graphs_from_seed(seed ^ (k as u64) << 8, per_size, size));
    }
    graphs
}

fn assert_hits_identical(a: &[RankedHit], b: &[RankedHit], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths diverge");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.id, y.id, "{context}: hit {i} id diverges");
        assert_eq!(
            x.posterior.to_bits(),
            y.posterior.to_bits(),
            "{context}: hit {i} posterior diverges"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: ranked results equal the threshold-free
    /// sort-truncate reference across variants × cascade × shards × k.
    #[test]
    fn top_k_equals_sort_truncate_in_every_mode(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x707);
        let graphs = mixed_graphs(seed, 6);
        let database = GraphDatabase::from_graphs(graphs);
        let n = database.len();
        let config = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(seed);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let queries = [
            database.graph(rng.gen_range(0..n)).clone(),
            graphs_from_seed(seed ^ 0xABCD, 1, 10).pop().unwrap(),
        ];
        let variants = [
            ("standard", GbdaVariant::Standard),
            ("v1", GbdaVariant::AverageExtendedSize { sample_graphs: 5 }),
            ("v2", GbdaVariant::WeightedGbd { weight: 0.4 }),
            ("v2-negative", GbdaVariant::WeightedGbd { weight: -0.3 }),
        ];
        for (name, variant) in variants {
            // The reference: the proven recording scan's posterior array,
            // ranked and truncated by the shared definitional helper.
            let reference_engine = QueryEngine::new(
                &database,
                &index,
                config.clone().with_variant(variant),
            );
            for (q, query) in queries.iter().enumerate() {
                let posteriors = reference_engine.search(query).posteriors;
                for k in [1usize, 5, n, n + 7] {
                    let expected = rank_by_posterior(&posteriors, k);
                    for cascade in [true, false] {
                        for shards in [1usize, 2, 4] {
                            let engine = QueryEngine::new(
                                &database,
                                &index,
                                config
                                    .clone()
                                    .with_variant(variant)
                                    .with_filter_cascade(cascade)
                                    .with_shards(shards)
                                    .with_record_posteriors(false),
                            );
                            let context = format!(
                                "{name}/q={q}/k={k}/cascade={cascade}/shards={shards}"
                            );
                            let top = engine.search_top_k(query, k);
                            assert_hits_identical(&top.hits, &expected, &context);
                            prop_assert_eq!(top.stats.evaluated, n, "{}", &context);
                            // The engine's own reference path agrees too.
                            assert_hits_identical(
                                &engine.top_k_reference(query, k),
                                &expected,
                                &context,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Batched ranked queries equal per-query ranked queries, in order.
    #[test]
    fn top_k_batch_equals_per_query(seed in 0u64..10_000, k in 1usize..12) {
        let graphs = mixed_graphs(seed, 4);
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(4, 0.7).with_sample_pairs(120).with_seed(seed);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let queries: Vec<Graph> = (0..4).map(|i| database.graph(i * 2).clone()).collect();
        let engine = QueryEngine::new(&database, &index, config.with_shards(3));
        let batch = engine.search_top_k_batch(&queries, k);
        prop_assert_eq!(batch.len(), queries.len());
        for (q, (query, outcome)) in queries.iter().zip(&batch).enumerate() {
            let single = engine.search_top_k(query, k);
            assert_hits_identical(&outcome.hits, &single.hits, &format!("batch q={q}"));
        }
    }
}

/// A database of duplicated graphs forces posterior ties; the guarantee is
/// that ties order by ascending graph id on every execution path.
#[test]
fn equal_posteriors_order_by_ascending_id() {
    let distinct = graphs_from_seed(3, 6, 10);
    // Each graph appears three times: indices i, i+6, i+12 are identical.
    let mut graphs = Vec::new();
    for _ in 0..3 {
        graphs.extend(distinct.iter().cloned());
    }
    let database = GraphDatabase::from_graphs(graphs);
    let n = database.len();
    let config = GbdaConfig::new(3, 0.8).with_sample_pairs(100);
    let index = OfflineIndex::build(&database, &config).unwrap();
    let query = distinct[0].clone();

    for shards in [1usize, 2, 4] {
        let engine = QueryEngine::new(&database, &index, config.clone().with_shards(shards));
        let top = engine.search_top_k(&query, n);
        assert_eq!(top.hits.len(), n);
        // Within every group of equal posteriors the ids strictly ascend.
        for pair in top.hits.windows(2) {
            if pair[0].posterior.to_bits() == pair[1].posterior.to_bits() {
                assert!(
                    pair[0].id < pair[1].id,
                    "tie at posterior {} broken out of id order (shards {shards})",
                    pair[0].posterior
                );
            }
        }
        // The query's three clones tie at the top rank, ids ascending.
        let top3: Vec<usize> = top.hits[..3].iter().map(|h| h.id).collect();
        assert_eq!(top3, vec![0, 6, 12], "shards {shards}");
    }
}

/// Ranked queries are reproducible run-to-run on sharded, batched and
/// dynamic paths (the documented determinism guarantee).
#[test]
fn ranked_queries_are_reproducible_run_to_run() {
    let graphs = mixed_graphs(17, 5);
    let database = GraphDatabase::from_graphs(graphs.clone());
    let config = GbdaConfig::new(4, 0.7).with_sample_pairs(150);
    let index = OfflineIndex::build(&database, &config).unwrap();
    let query = database.graph(1).clone();
    let k = 7;

    let sharded = QueryEngine::new(&database, &index, config.clone().with_shards(4));
    let first = sharded.search_top_k(&query, k);
    for _ in 0..5 {
        assert_hits_identical(
            &sharded.search_top_k(&query, k).hits,
            &first.hits,
            "sharded",
        );
    }

    let queries: Vec<Graph> = (0..5).map(|i| database.graph(i).clone()).collect();
    let batch_first = sharded.search_top_k_batch(&queries, k);
    for _ in 0..3 {
        let again = sharded.search_top_k_batch(&queries, k);
        for (a, b) in batch_first.iter().zip(&again) {
            assert_hits_identical(&a.hits, &b.hits, "batched");
        }
    }

    let mut dynamic = DynamicDatabase::new(database);
    dynamic.remove(2).unwrap();
    for g in graphs_from_seed(99, 3, 11) {
        dynamic.insert(g);
    }
    let engine = DynamicEngine::new(&dynamic, &index, config);
    let dyn_first = engine.search_top_k(&query, k);
    for _ in 0..5 {
        let again = engine.search_top_k(&query, k);
        assert_eq!(again.hits.len(), dyn_first.hits.len());
        for (a, b) in dyn_first.hits.iter().zip(&again.hits) {
            assert_eq!(a.id, b.id, "dynamic ids diverge across runs");
            assert_eq!(a.posterior.to_bits(), b.posterior.to_bits());
        }
    }
}
