//! The paper's worked examples, checked end to end across crates.

use gbda::graph::extended::{extend_graph, extended_gbd};
use gbda::prelude::*;

#[test]
fn example_1_and_2_figure_1_numbers() {
    let (g1, _) = gbda::graph::paper_examples::figure1_g1();
    let (g2, _) = gbda::graph::paper_examples::figure1_g2();
    // Example 1: GED(G1, G2) = 3.
    assert_eq!(exact_ged(&g1, &g2).0, 3);
    // Example 2: GBD(G1, G2) = 3.
    assert_eq!(graph_branch_distance(&g1, &g2), 3);
}

#[test]
fn example_3_theorems_1_and_2_on_extended_graphs() {
    let (g1, _) = gbda::graph::paper_examples::figure1_g1();
    let (g2, _) = gbda::graph::paper_examples::figure1_g2();
    let e1 = extend_graph(&g1, 1);
    let e2 = extend_graph(&g2, 0);
    // Theorem 1: GED is unchanged by extension.
    assert_eq!(e1.brute_force_ged(&e2), exact_ged(&g1, &g2).0);
    // Theorem 2: GBD is unchanged by extension.
    assert_eq!(extended_gbd(&e1, &e2), graph_branch_distance(&g1, &g2));
}

#[test]
fn example_4_figure_4_numbers() {
    let (g1, _) = gbda::graph::paper_examples::figure4_g1();
    let (g2, _) = gbda::graph::paper_examples::figure4_g2();
    assert_eq!(exact_ged(&g1, &g2).0, 2);
    assert_eq!(graph_branch_distance(&g1, &g2), 2);
}

#[test]
fn example_7_algorithm_1_walkthrough() {
    // Example 7 runs Algorithm 1 with Q = G1, G = G2, τ̂ = 3, γ = 0.8 and a
    // stipulated Λ3/Λ2 ≡ 0.8. The paper computes
    // Φ = (0 + 0 + 0.5113 + 0.5631) × 0.8 ≈ 0.86 ≥ γ, so G2 is returned.
    // We reproduce the structure of the computation with our model: Λ1(0,3)
    // and Λ1(1,3) must be exactly zero (a GED of τ can produce a GBD of at
    // most 2τ), and the posterior with the stipulated ratio must clear γ when
    // the likelihood terms at τ = 2, 3 carry weight.
    use gbda::prob::{lambda1, BranchEditModel};
    let (g1, _) = gbda::graph::paper_examples::figure1_g1();
    let (g2, _) = gbda::graph::paper_examples::figure1_g2();
    let phi = graph_branch_distance(&g1, &g2) as u64;
    assert_eq!(phi, 3);
    let model = BranchEditModel::new(4, LabelAlphabets::new(3, 3));
    assert_eq!(lambda1(&model, 0, phi), 0.0);
    assert_eq!(lambda1(&model, 1, phi), 0.0);
    let l2 = lambda1(&model, 2, phi);
    let l3 = lambda1(&model, 3, phi);
    assert!(l2 > 0.0 && l3 > 0.0, "Λ1(2,3) = {l2}, Λ1(3,3) = {l3}");
    let phi_value: f64 = (0..=3).map(|tau| lambda1(&model, tau, phi) * 0.8).sum();
    assert!(
        phi_value > 0.0,
        "the Example-7 style posterior must be positive, got {phi_value}"
    );
}

#[test]
fn example_5_gbd_prior_on_a_fingerprint_like_sample() {
    // Example 5 fits the GBD prior on sampled Fingerprint pairs; here the
    // substitute dataset plays that role and the fitted prior must assign
    // most of its mass to the range of observed GBDs.
    let config = RealLikeConfig::new(DatasetProfile::fingerprint(), 0.01).with_seed(3);
    let dataset = generate_real_like(&config).unwrap();
    let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);
    let gbda_config = GbdaConfig::new(3, 0.8).with_sample_pairs(2000);
    let index = OfflineIndex::build(&database, &gbda_config).expect("offline stage builds");
    let mass: f64 = (0..=database.max_vertices())
        .map(|phi| index.gbd_prior().probability(phi))
        .sum();
    assert!(
        mass > 0.9,
        "prior mass over the observable range is only {mass}"
    );
}
