//! Cross-crate integration tests: the full GBDA pipeline against ground truth
//! and against every baseline, on dataset substitutes.

use gbda::prelude::*;

fn aids_like() -> LabeledDataset {
    let config = RealLikeConfig::new(DatasetProfile::aids(), 0.02).with_seed(77);
    generate_real_like(&config).expect("dataset generation succeeds")
}

/// Runs one searcher over every query of a dataset and micro-averages the
/// confusion counts at the given threshold.
fn evaluate(
    searcher: &dyn SimilaritySearcher,
    dataset: &LabeledDataset,
    tau_hat: usize,
) -> Confusion {
    let mut confusions = Vec::new();
    for (qi, query) in dataset.queries.iter().enumerate() {
        let outcome = searcher.search(query);
        let positives = dataset
            .ground_truth
            .positives(qi, tau_hat, dataset.database_size());
        confusions.push(Confusion::from_sets(&outcome.matches, &positives));
    }
    gbda::engine::aggregate(confusions.iter())
}

#[test]
fn gbda_is_effective_on_an_aids_like_dataset() {
    let dataset = aids_like();
    let tau_hat = 5u64;
    let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);
    let config = GbdaConfig::new(tau_hat, 0.7).with_sample_pairs(1500);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
    let gbda = GbdaSearcher::new(&database, &index, config);
    let result = evaluate(&gbda, &dataset, tau_hat as usize);
    assert!(
        result.f1() > 0.5,
        "GBDA F1 {} too low (precision {}, recall {})",
        result.f1(),
        result.precision(),
        result.recall()
    );
}

#[test]
fn lsap_has_perfect_recall_and_gbda_has_competitive_f1() {
    let dataset = aids_like();
    let tau_hat = 3u64;
    let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);

    let lsap = EstimatorSearcher::new(&database, LsapGed, tau_hat as f64);
    let lsap_result = evaluate(&lsap, &dataset, tau_hat as usize);
    assert!(
        (lsap_result.recall() - 1.0).abs() < 1e-9,
        "LSAP lower-bounds the GED and must therefore have 100% recall, got {}",
        lsap_result.recall()
    );

    let config = GbdaConfig::new(tau_hat, 0.7).with_sample_pairs(1500);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
    let gbda = GbdaSearcher::new(&database, &index, config);
    let gbda_result = evaluate(&gbda, &dataset, tau_hat as usize);
    // On the cluster-structured substitute every edit touches the same
    // modification center, so GBD ≈ GED + 1 (instead of ≈ 2·GED on organic
    // data); GBDA therefore behaves as a high-recall filter at small τ̂. See
    // EXPERIMENTS.md for the discussion of this deviation. What must hold:
    // GBDA misses nothing and still carries usable precision.
    assert!(
        (gbda_result.recall() - 1.0).abs() < 1e-9,
        "GBDA recall should be perfect on this workload, got {}",
        gbda_result.recall()
    );
    assert!(
        gbda_result.f1() > 0.3,
        "GBDA F1 {} collapsed (precision {})",
        gbda_result.f1(),
        gbda_result.precision()
    );
}

#[test]
fn all_methods_run_on_the_same_fingerprint_like_workload() {
    let config = RealLikeConfig::new(DatasetProfile::fingerprint(), 0.01).with_seed(5);
    let dataset = generate_real_like(&config).expect("dataset generation succeeds");
    let tau_hat = 4u64;
    let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);
    let gbda_config = GbdaConfig::new(tau_hat, 0.8).with_sample_pairs(500);
    let index = OfflineIndex::build(&database, &gbda_config).expect("offline stage builds");

    let searchers: Vec<Box<dyn SimilaritySearcher>> = vec![
        Box::new(GbdaSearcher::new(&database, &index, gbda_config)),
        Box::new(EstimatorSearcher::new(&database, LsapGed, tau_hat as f64)),
        Box::new(EstimatorSearcher::new(&database, GreedyGed, tau_hat as f64)),
        Box::new(EstimatorSearcher::new(
            &database,
            SeriationGed::default(),
            tau_hat as f64,
        )),
    ];
    for searcher in &searchers {
        let result = evaluate(searcher.as_ref(), &dataset, tau_hat as usize);
        assert!(
            result.precision() >= 0.0 && result.recall() >= 0.0,
            "{} produced invalid metrics",
            searcher.name()
        );
        // Every method must at least return the query's own cluster sibling
        // with distance zero somewhere across the workload.
        let any_match = dataset
            .queries
            .iter()
            .any(|q| !searcher.search(q).matches.is_empty());
        assert!(
            any_match,
            "{} returned nothing for every query",
            searcher.name()
        );
    }
}

#[test]
fn gbd_respects_the_two_tau_bound_against_known_geds() {
    // GBD ≤ 2·GED must hold between every query and every same-cluster graph
    // of a generated dataset — tying the generator, the branch distance and
    // the ground-truth bookkeeping together.
    let dataset = aids_like();
    for (qi, query) in dataset.queries.iter().enumerate() {
        for (gi, graph) in dataset.graphs.iter().enumerate() {
            if let Some(gbda::datasets::KnownDistance::Exact(ged)) =
                dataset.ground_truth.get(qi, gi)
            {
                let gbd = graph_branch_distance(query, graph);
                assert!(
                    gbd <= 2 * ged,
                    "GBD {gbd} > 2·GED {ged} for query {qi}, graph {gi}"
                );
            }
        }
    }
}
