//! Storage-engine integration tests: snapshot persistence and the dynamic
//! layer, exercised through the `gbda` facade.
//!
//! The central property: for **any** interleaving of insert / remove /
//! compact, a [`DynamicEngine`] scan is bit-identical — matches *and*
//! posteriors — to a [`QueryEngine`] over a freshly built database of the
//! surviving graphs, across every variant (Standard / V1 / V2) and cascade
//! mode, given the same offline index. The same holds for **ranked**
//! queries: `search_top_k` over the dynamic live set equals the fresh
//! rebuild's top-k (ids mapped through the canonical order) for every k.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graphs_from_seed(seed: u64, count: usize, size: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    GeneratorConfig::new(size, 2.2)
        .with_alphabets(LabelAlphabets::new(6, 3))
        .generate_many(count, &mut rng)
        .expect("generation succeeds")
}

fn mixed_graphs(seed: u64, per_size: usize) -> Vec<Graph> {
    let mut graphs = Vec::new();
    for (k, size) in [8usize, 12, 16].into_iter().enumerate() {
        graphs.extend(graphs_from_seed(seed ^ (k as u64) << 8, per_size, size));
    }
    graphs
}

/// Applies `ops` random insert/remove/compact operations.
fn random_interleaving(dynamic: &mut DynamicDatabase, rng: &mut StdRng, ops: usize, seed: u64) {
    let mut fresh_graphs = mixed_graphs(seed ^ 0xFEED, ops.div_ceil(3) + 1).into_iter();
    for _ in 0..ops {
        match rng.gen_range(0u32..5) {
            0 | 1 => {
                if let Some(graph) = fresh_graphs.next() {
                    dynamic.insert(graph);
                }
            }
            2 | 3 => {
                let live = dynamic.live_ids();
                if !live.is_empty() {
                    let victim = live[rng.gen_range(0..live.len())];
                    dynamic.remove(victim).expect("live id removes");
                }
            }
            _ => {
                dynamic.compact();
            }
        }
    }
}

/// Asserts one dynamic scan equals the fresh-rebuild scan bit-for-bit.
fn assert_equivalent(
    dynamic: &DynamicDatabase,
    index: &OfflineIndex,
    config: &GbdaConfig,
    queries: &[Graph],
    context: &str,
) {
    let (ids, survivors): (Vec<u64>, Vec<Graph>) = dynamic
        .live_graphs()
        .map(|(id, graph)| (id, graph.clone()))
        .unzip();
    let fresh = GraphDatabase::with_alphabets(survivors, dynamic.alphabets());
    let static_engine = QueryEngine::new(&fresh, index, config.clone());
    let dynamic_engine = DynamicEngine::new(dynamic, index, config.clone());
    assert_eq!(
        static_engine.fixed_extended_size(),
        dynamic_engine.fixed_extended_size(),
        "{context}: V1 sampling diverged"
    );
    for (q, query) in queries.iter().enumerate() {
        let expected = static_engine.search(query);
        let got = dynamic_engine.search(query);
        assert_eq!(
            got.ids, ids,
            "{context}: query {q} scanned a different live set"
        );
        let expected_ids: Vec<u64> = expected.matches.iter().map(|&i| ids[i]).collect();
        assert_eq!(
            got.matches, expected_ids,
            "{context}: query {q} matches diverge"
        );
        assert_eq!(
            got.posteriors.len(),
            expected.posteriors.len(),
            "{context}: query {q}"
        );
        for (i, (a, b)) in got.posteriors.iter().zip(&expected.posteriors).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{context}: query {q} posterior {i} diverges"
            );
        }
        assert_eq!(got.stats.evaluated, fresh.len(), "{context}: query {q}");

        // Ranked queries: dynamic top-k equals the fresh rebuild's top-k with
        // indices mapped through the canonical order, for small, saturating
        // and oversized k.
        for k in [1usize, 5, fresh.len(), fresh.len() + 7] {
            let expected_top = static_engine.search_top_k(query, k);
            let got_top = dynamic_engine.search_top_k(query, k);
            assert_eq!(
                got_top.hits.len(),
                expected_top.hits.len(),
                "{context}: query {q} top-{k} lengths diverge"
            );
            for (i, (a, b)) in got_top.hits.iter().zip(&expected_top.hits).enumerate() {
                assert_eq!(
                    a.id, ids[b.id],
                    "{context}: query {q} top-{k} hit {i} id diverges"
                );
                assert_eq!(
                    a.posterior.to_bits(),
                    b.posterior.to_bits(),
                    "{context}: query {q} top-{k} hit {i} posterior diverges"
                );
            }
        }
    }
}

/// Every (variant, cascade, record) combination the engine supports.
fn all_modes(config: &GbdaConfig) -> Vec<(String, GbdaConfig)> {
    let variants = [
        ("standard", GbdaVariant::Standard),
        ("v1", GbdaVariant::AverageExtendedSize { sample_graphs: 5 }),
        ("v2", GbdaVariant::WeightedGbd { weight: 0.4 }),
        ("v2-negative", GbdaVariant::WeightedGbd { weight: -0.3 }),
    ];
    let mut modes = Vec::new();
    for (name, variant) in variants {
        for cascade in [true, false] {
            for record in [true, false] {
                modes.push((
                    format!("{name}/cascade={cascade}/record={record}"),
                    config
                        .clone()
                        .with_variant(variant)
                        .with_filter_cascade(cascade)
                        .with_record_posteriors(record),
                ));
            }
        }
    }
    modes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: random interleavings, all modes,
    /// bit-identical to a fresh `from_graphs` over the survivors.
    #[test]
    fn dynamic_scans_equal_a_fresh_rebuild(seed in 0u64..10_000, ops in 3usize..14) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C);
        let base = GraphDatabase::from_graphs(mixed_graphs(seed, 4));
        let config = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(seed);
        let index = OfflineIndex::build(&base, &config).unwrap();
        let queries = [
            base.graph(rng.gen_range(0..base.len())).clone(),
            graphs_from_seed(seed ^ 0xABCD, 1, 10).pop().unwrap(),
        ];
        let mut dynamic = DynamicDatabase::new(base);
        random_interleaving(&mut dynamic, &mut rng, ops, seed);
        for (context, mode_config) in all_modes(&config) {
            assert_equivalent(&dynamic, &index, &mode_config, &queries, &context);
        }
    }

    /// Snapshots preserve scans: save → load → identical outcomes, and the
    /// loaded structures verify against a fresh postings rebuild.
    #[test]
    fn snapshot_round_trip_preserves_scans(seed in 0u64..10_000) {
        let database = GraphDatabase::from_graphs(mixed_graphs(seed, 3));
        let bytes = Snapshot::from_database(&database).to_bytes();
        let (loaded, _) = Snapshot::from_bytes(&bytes).unwrap().into_database().unwrap();
        prop_assert!(loaded.verify_postings());
        prop_assert_eq!(loaded.len(), database.len());
        prop_assert_eq!(loaded.arena_len(), database.arena_len());

        let config = GbdaConfig::new(4, 0.75).with_sample_pairs(120).with_seed(seed);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let query = database.graph(0).clone();
        let original = QueryEngine::new(&database, &index, config.clone());
        let reloaded = QueryEngine::new(&loaded, &index, config);
        let a = original.search(&query);
        let b = reloaded.search(&query);
        prop_assert_eq!(a.matches, b.matches);
        for (x, y) in a.posteriors.iter().zip(&b.posteriors) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Random single-byte corruption never panics the loader: it either
    /// trips a typed error (almost always the checksum) or — for header
    /// fields — a magic/version/framing error.
    #[test]
    fn corrupted_snapshots_error_instead_of_panicking(seed in 0u64..10_000) {
        let database = GraphDatabase::from_graphs(graphs_from_seed(seed, 6, 9));
        let bytes = Snapshot::from_database(&database).to_bytes();
        let mut rng = StdRng::seed_from_u64(seed);
        let position = rng.gen_range(0..bytes.len());
        let flip = 1u8 << rng.gen_range(0u32..8);
        let mut corrupted = bytes.clone();
        corrupted[position] ^= flip;
        match Snapshot::from_bytes(&corrupted) {
            Err(_) => {}
            // A flip inside the checksum-covered payload cannot decode; a
            // header-adjacent flip that still decodes must still build a
            // coherent database or error — never panic.
            Ok(snapshot) => {
                let _ = snapshot.into_database();
            }
        }
    }
}

/// The full production lifecycle: build → save → load → serve dynamically →
/// compact → save again → load again.
#[test]
fn snapshot_dynamic_compact_lifecycle() {
    let dir = std::env::temp_dir();
    let first_path = dir.join("gbda-lifecycle-base.snap");
    let second_path = dir.join("gbda-lifecycle-compacted.snap");

    let database = GraphDatabase::from_graphs(mixed_graphs(0xA11CE, 4));
    let config = GbdaConfig::new(4, 0.7).with_sample_pairs(200);
    let index = OfflineIndex::build(&database, &config).unwrap();
    let query = database.graph(3).clone();
    let baseline = QueryEngine::new(&database, &index, config.clone()).search(&query);

    // Persist, reload, and serve the reloaded base dynamically.
    save_database(&database, &Vocabulary::new(), &first_path).unwrap();
    let (loaded, _) = load_database(&first_path).unwrap();
    let mut dynamic = DynamicDatabase::new(loaded);
    let reloaded_scan = DynamicEngine::new(&dynamic, &index, config.clone()).search(&query);
    let expected: Vec<u64> = baseline.matches.iter().map(|&i| i as u64).collect();
    assert_eq!(reloaded_scan.matches, expected);

    // Mutate, compact, persist the compacted state, reload it.
    let inserted = dynamic.insert(graphs_from_seed(7, 1, 11).pop().unwrap());
    dynamic.remove(0).unwrap();
    dynamic.remove(5).unwrap();
    let live_before = dynamic.live_ids();
    dynamic.compact();
    assert_eq!(dynamic.live_ids(), live_before);
    assert!(dynamic.contains(inserted));
    save_database(dynamic.base(), &Vocabulary::new(), &second_path).unwrap();
    let (compacted, _) = load_database(&second_path).unwrap();
    assert_eq!(compacted.len(), dynamic.len());
    assert!(compacted.verify_postings());

    // The reloaded compacted base scans like the dynamic view did.
    let dynamic_scan = DynamicEngine::new(&dynamic, &index, config.clone()).search(&query);
    let static_scan = QueryEngine::new(&compacted, &index, config).search(&query);
    let static_ids: Vec<u64> = static_scan
        .matches
        .iter()
        .map(|&i| live_before[i])
        .collect();
    assert_eq!(dynamic_scan.matches, static_ids);

    std::fs::remove_file(&first_path).ok();
    std::fs::remove_file(&second_path).ok();
}

/// Inserts may introduce branches the base catalog has never seen; the
/// grown catalog must serve both segments and survive compaction.
#[test]
fn inserts_grow_the_catalog_without_breaking_base_scans() {
    let base = GraphDatabase::from_graphs(graphs_from_seed(1, 8, 10));
    let config = GbdaConfig::new(3, 0.8).with_sample_pairs(100);
    let index = OfflineIndex::build(&base, &config).unwrap();
    let base_catalog_len = base.catalog().len();
    let mut dynamic = DynamicDatabase::new(base);
    // A disjoint alphabet guarantees unseen branches.
    let mut rng = StdRng::seed_from_u64(77);
    let alien = GeneratorConfig::new(12, 2.5)
        .with_alphabets(LabelAlphabets::new(40, 9))
        .generate_many(3, &mut rng)
        .unwrap();
    for graph in alien.clone() {
        dynamic.insert(graph);
    }
    assert!(
        dynamic.catalog().len() > base_catalog_len,
        "alien labels must intern new branches"
    );
    // Scans over base + delta still agree with the fresh rebuild, with the
    // alien graphs as queries too.
    let mut queries = vec![dynamic.base().graph(0).clone()];
    queries.extend(alien);
    assert_equivalent(&dynamic, &index, &config, &queries, "grown catalog");
    dynamic.compact();
    assert_equivalent(&dynamic, &index, &config, &queries, "compacted alien");
}
