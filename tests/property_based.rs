//! Property-based tests over the core invariants, spanning crates.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds a reproducible random graph from a seed and size.
fn graph_from_seed(seed: u64, vertices: usize, degree: f64, labels: usize) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GeneratorConfig::new(vertices, degree)
        .with_alphabets(LabelAlphabets::new(labels, labels.min(4)))
        .generate(&mut rng)
        .expect("generation succeeds for sane parameters")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GBD is symmetric and bounded by max(|V1|, |V2|).
    #[test]
    fn gbd_is_symmetric_and_bounded(seed_a in 0u64..500, seed_b in 500u64..1000,
                                    n_a in 2usize..14, n_b in 2usize..14) {
        let a = graph_from_seed(seed_a, n_a, 2.0, 5);
        let b = graph_from_seed(seed_b, n_b, 2.0, 5);
        let d_ab = graph_branch_distance(&a, &b);
        let d_ba = graph_branch_distance(&b, &a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert!(d_ab <= n_a.max(n_b));
        prop_assert_eq!(graph_branch_distance(&a, &a), 0);
    }

    /// The full bound chain on random small graphs:
    /// label LB ≤ GED, ⌈GBD/2⌉ ≤ GED ≤ greedy UB, and LSAP ≤ GED.
    #[test]
    fn bounds_sandwich_the_exact_ged(seed_a in 0u64..300, seed_b in 300u64..600,
                                     n_a in 2usize..7, n_b in 2usize..7) {
        let a = graph_from_seed(seed_a, n_a, 1.8, 4);
        let b = graph_from_seed(seed_b, n_b, 1.8, 4);
        let (exact, _) = exact_ged(&a, &b);
        prop_assert!(gbda::ged::label_lower_bound(&a, &b) <= exact);
        prop_assert!(gbda::ged::branch_lower_bound(&a, &b) <= exact);
        prop_assert!(gbda::ged::greedy_upper_bound(&a, &b) >= exact);
        prop_assert!(LsapGed.estimate_ged(&a, &b) <= exact as f64 + 1e-9);
    }

    /// GED is a metric on small graphs: symmetry and triangle inequality.
    #[test]
    fn exact_ged_is_symmetric_and_triangular(seed in 0u64..200, n in 2usize..6) {
        let a = graph_from_seed(seed, n, 1.6, 3);
        let b = graph_from_seed(seed + 1000, n, 1.6, 3);
        let c = graph_from_seed(seed + 2000, n, 1.6, 3);
        let ab = exact_ged(&a, &b).0;
        let ba = exact_ged(&b, &a).0;
        let bc = exact_ged(&b, &c).0;
        let ac = exact_ged(&a, &c).0;
        prop_assert_eq!(ab, ba);
        prop_assert!(ac <= ab + bc);
    }

    /// Branch multisets round-trip through the text format.
    #[test]
    fn text_io_round_trips_random_graphs(seed in 0u64..400, n in 1usize..20) {
        let g = graph_from_seed(seed, n, 2.2, 6);
        let vocabulary = Vocabulary::new();
        let text = gbda::graph::io::write_graph(&g, &vocabulary);
        let mut vocabulary2 = Vocabulary::new();
        let parsed = gbda::graph::io::parse_graph(&text, &mut vocabulary2).unwrap();
        prop_assert_eq!(parsed.vertex_count(), g.vertex_count());
        prop_assert_eq!(parsed.edge_count(), g.edge_count());
        // Re-serialising the parsed graph is stable.
        let text2 = gbda::graph::io::write_graph(&parsed, &vocabulary2);
        let mut vocabulary3 = Vocabulary::new();
        let reparsed = gbda::graph::io::parse_graph(&text2, &mut vocabulary3).unwrap();
        prop_assert_eq!(graph_branch_distance(&parsed, &reparsed), 0);
    }

    /// Λ1(τ, ·) is a probability distribution for random model parameters.
    #[test]
    fn lambda1_rows_are_distributions(v in 2usize..20, lv in 1usize..10, le in 1usize..6,
                                      tau in 0u64..5) {
        let model = gbda::prob::BranchEditModel::new(v, LabelAlphabets::new(lv, le));
        let total: f64 = (0..=2 * tau).map(|phi| gbda::prob::lambda1(&model, tau, phi)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "Λ1 row sums to {}", total);
    }

    /// Flat interned branch sets compute exactly the multiset GBD — both
    /// when the catalog interned both graphs (database side) and when one
    /// side is a read-only lookup with possible unknowns (query side).
    #[test]
    fn flat_branch_sets_match_multiset_gbd(seed_a in 0u64..400, seed_b in 400u64..800,
                                           n_a in 1usize..16, n_b in 1usize..16) {
        let a = graph_from_seed(seed_a, n_a, 2.2, 5);
        let b = graph_from_seed(seed_b, n_b, 2.2, 5);
        let ma = BranchMultiset::from_graph(&a);
        let mb = BranchMultiset::from_graph(&b);

        // Database side: both sets fully interned.
        let mut catalog = BranchCatalog::new();
        let fa = catalog.flatten(&ma);
        let fb = catalog.flatten(&mb);
        prop_assert_eq!(fa.gbd(&fb), ma.gbd(&mb));
        prop_assert_eq!(fb.gbd(&fa), mb.gbd(&ma));
        prop_assert_eq!(fa.intersection_size(&fb), ma.intersection_size(&mb));
        for w in [0.0, 0.3, 1.0] {
            prop_assert_eq!(fa.weighted_gbd(&fb, w), ma.weighted_gbd(&mb, w));
        }

        // Query side: only `a` is catalogued, `b` is looked up read-only.
        let mut db_catalog = BranchCatalog::new();
        let db_side = db_catalog.flatten(&ma);
        let query_side = db_catalog.flatten_lookup(&mb);
        prop_assert_eq!(query_side.gbd(&db_side), mb.gbd(&ma));
    }

    /// The engine's posterior memo is bit-identical to evaluating the
    /// uncached `posterior_ged_at_most` on the same priors.
    #[test]
    fn posterior_cache_is_bit_identical_to_uncached(seed in 0u64..100, tau_hat in 1u64..6,
                                                    size in 2usize..20, phi in 0u64..15) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graphs = GeneratorConfig::new(10, 2.0)
            .with_alphabets(LabelAlphabets::new(5, 3))
            .generate_many(10, &mut rng)
            .unwrap();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(tau_hat, 0.8).with_sample_pairs(45);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let cache = PosteriorCache::new(tau_hat);
        let lambda1 = index.lambda1_table(size);
        let ged_prior = index.ged_prior().column(size);
        let gbd_prior = index.gbd_prior().probability(phi as usize);
        let direct = gbda::prob::posterior_ged_at_most(
            tau_hat, phi, &lambda1, &ged_prior, gbd_prior,
        );
        // First call computes, second call reads the memo; both must carry
        // the exact bits of the direct evaluation.
        prop_assert_eq!(cache.posterior(&index, size, phi).to_bits(), direct.to_bits());
        prop_assert_eq!(cache.posterior(&index, size, phi).to_bits(), direct.to_bits());
    }

    /// The Hungarian solver never exceeds the greedy solution.
    #[test]
    fn hungarian_is_optimal_relative_to_greedy(seed in 0u64..500, n in 1usize..9) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..9.0)).collect())
            .collect();
        let (_, optimal) = gbda::assignment::hungarian(&cost);
        let (_, greedy) = gbda::assignment::greedy_assignment(&cost);
        prop_assert!(optimal <= greedy + 1e-9);
    }
}
