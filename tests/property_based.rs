//! Property-based tests over the core invariants, spanning crates.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds a reproducible random graph from a seed and size.
fn graph_from_seed(seed: u64, vertices: usize, degree: f64, labels: usize) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GeneratorConfig::new(vertices, degree)
        .with_alphabets(LabelAlphabets::new(labels, labels.min(4)))
        .generate(&mut rng)
        .expect("generation succeeds for sane parameters")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GBD is symmetric and bounded by max(|V1|, |V2|).
    #[test]
    fn gbd_is_symmetric_and_bounded(seed_a in 0u64..500, seed_b in 500u64..1000,
                                    n_a in 2usize..14, n_b in 2usize..14) {
        let a = graph_from_seed(seed_a, n_a, 2.0, 5);
        let b = graph_from_seed(seed_b, n_b, 2.0, 5);
        let d_ab = graph_branch_distance(&a, &b);
        let d_ba = graph_branch_distance(&b, &a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert!(d_ab <= n_a.max(n_b));
        prop_assert_eq!(graph_branch_distance(&a, &a), 0);
    }

    /// The full bound chain on random small graphs:
    /// label LB ≤ GED, ⌈GBD/2⌉ ≤ GED ≤ greedy UB, and LSAP ≤ GED.
    #[test]
    fn bounds_sandwich_the_exact_ged(seed_a in 0u64..300, seed_b in 300u64..600,
                                     n_a in 2usize..7, n_b in 2usize..7) {
        let a = graph_from_seed(seed_a, n_a, 1.8, 4);
        let b = graph_from_seed(seed_b, n_b, 1.8, 4);
        let (exact, _) = exact_ged(&a, &b);
        prop_assert!(gbda::ged::label_lower_bound(&a, &b) <= exact);
        prop_assert!(gbda::ged::branch_lower_bound(&a, &b) <= exact);
        prop_assert!(gbda::ged::greedy_upper_bound(&a, &b) >= exact);
        prop_assert!(LsapGed.estimate_ged(&a, &b) <= exact as f64 + 1e-9);
    }

    /// GED is a metric on small graphs: symmetry and triangle inequality.
    #[test]
    fn exact_ged_is_symmetric_and_triangular(seed in 0u64..200, n in 2usize..6) {
        let a = graph_from_seed(seed, n, 1.6, 3);
        let b = graph_from_seed(seed + 1000, n, 1.6, 3);
        let c = graph_from_seed(seed + 2000, n, 1.6, 3);
        let ab = exact_ged(&a, &b).0;
        let ba = exact_ged(&b, &a).0;
        let bc = exact_ged(&b, &c).0;
        let ac = exact_ged(&a, &c).0;
        prop_assert_eq!(ab, ba);
        prop_assert!(ac <= ab + bc);
    }

    /// Branch multisets round-trip through the text format.
    #[test]
    fn text_io_round_trips_random_graphs(seed in 0u64..400, n in 1usize..20) {
        let g = graph_from_seed(seed, n, 2.2, 6);
        let vocabulary = Vocabulary::new();
        let text = gbda::graph::io::write_graph(&g, &vocabulary);
        let mut vocabulary2 = Vocabulary::new();
        let parsed = gbda::graph::io::parse_graph(&text, &mut vocabulary2).unwrap();
        prop_assert_eq!(parsed.vertex_count(), g.vertex_count());
        prop_assert_eq!(parsed.edge_count(), g.edge_count());
        // Re-serialising the parsed graph is stable.
        let text2 = gbda::graph::io::write_graph(&parsed, &vocabulary2);
        let mut vocabulary3 = Vocabulary::new();
        let reparsed = gbda::graph::io::parse_graph(&text2, &mut vocabulary3).unwrap();
        prop_assert_eq!(graph_branch_distance(&parsed, &reparsed), 0);
    }

    /// Λ1(τ, ·) is a probability distribution for random model parameters.
    #[test]
    fn lambda1_rows_are_distributions(v in 2usize..20, lv in 1usize..10, le in 1usize..6,
                                      tau in 0u64..5) {
        let model = gbda::prob::BranchEditModel::new(v, LabelAlphabets::new(lv, le));
        let total: f64 = (0..=2 * tau).map(|phi| gbda::prob::lambda1(&model, tau, phi)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "Λ1 row sums to {}", total);
    }

    /// The Hungarian solver never exceeds the greedy solution.
    #[test]
    fn hungarian_is_optimal_relative_to_greedy(seed in 0u64..500, n in 1usize..9) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..9.0)).collect())
            .collect();
        let (_, optimal) = gbda::assignment::hungarian(&cost);
        let (_, greedy) = gbda::assignment::greedy_assignment(&cost);
        prop_assert!(optimal <= greedy + 1e-9);
    }
}
