//! Property-based tests over the core invariants, spanning crates.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds a reproducible random graph from a seed and size.
fn graph_from_seed(seed: u64, vertices: usize, degree: f64, labels: usize) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GeneratorConfig::new(vertices, degree)
        .with_alphabets(LabelAlphabets::new(labels, labels.min(4)))
        .generate(&mut rng)
        .expect("generation succeeds for sane parameters")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GBD is symmetric and bounded by max(|V1|, |V2|).
    #[test]
    fn gbd_is_symmetric_and_bounded(seed_a in 0u64..500, seed_b in 500u64..1000,
                                    n_a in 2usize..14, n_b in 2usize..14) {
        let a = graph_from_seed(seed_a, n_a, 2.0, 5);
        let b = graph_from_seed(seed_b, n_b, 2.0, 5);
        let d_ab = graph_branch_distance(&a, &b);
        let d_ba = graph_branch_distance(&b, &a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert!(d_ab <= n_a.max(n_b));
        prop_assert_eq!(graph_branch_distance(&a, &a), 0);
    }

    /// The full bound chain on random small graphs:
    /// label LB ≤ GED, ⌈GBD/2⌉ ≤ GED ≤ greedy UB, and LSAP ≤ GED.
    #[test]
    fn bounds_sandwich_the_exact_ged(seed_a in 0u64..300, seed_b in 300u64..600,
                                     n_a in 2usize..7, n_b in 2usize..7) {
        let a = graph_from_seed(seed_a, n_a, 1.8, 4);
        let b = graph_from_seed(seed_b, n_b, 1.8, 4);
        let (exact, _) = exact_ged(&a, &b);
        prop_assert!(gbda::ged::label_lower_bound(&a, &b) <= exact);
        prop_assert!(gbda::ged::branch_lower_bound(&a, &b) <= exact);
        prop_assert!(gbda::ged::greedy_upper_bound(&a, &b) >= exact);
        prop_assert!(LsapGed.estimate_ged(&a, &b) <= exact as f64 + 1e-9);
    }

    /// GED is a metric on small graphs: symmetry and triangle inequality.
    #[test]
    fn exact_ged_is_symmetric_and_triangular(seed in 0u64..200, n in 2usize..6) {
        let a = graph_from_seed(seed, n, 1.6, 3);
        let b = graph_from_seed(seed + 1000, n, 1.6, 3);
        let c = graph_from_seed(seed + 2000, n, 1.6, 3);
        let ab = exact_ged(&a, &b).0;
        let ba = exact_ged(&b, &a).0;
        let bc = exact_ged(&b, &c).0;
        let ac = exact_ged(&a, &c).0;
        prop_assert_eq!(ab, ba);
        prop_assert!(ac <= ab + bc);
    }

    /// Branch multisets round-trip through the text format.
    #[test]
    fn text_io_round_trips_random_graphs(seed in 0u64..400, n in 1usize..20) {
        let g = graph_from_seed(seed, n, 2.2, 6);
        let vocabulary = Vocabulary::new();
        let text = gbda::graph::io::write_graph(&g, &vocabulary);
        let mut vocabulary2 = Vocabulary::new();
        let parsed = gbda::graph::io::parse_graph(&text, &mut vocabulary2).unwrap();
        prop_assert_eq!(parsed.vertex_count(), g.vertex_count());
        prop_assert_eq!(parsed.edge_count(), g.edge_count());
        // Re-serialising the parsed graph is stable.
        let text2 = gbda::graph::io::write_graph(&parsed, &vocabulary2);
        let mut vocabulary3 = Vocabulary::new();
        let reparsed = gbda::graph::io::parse_graph(&text2, &mut vocabulary3).unwrap();
        prop_assert_eq!(graph_branch_distance(&parsed, &reparsed), 0);
    }

    /// Λ1(τ, ·) is a probability distribution for random model parameters.
    #[test]
    fn lambda1_rows_are_distributions(v in 2usize..20, lv in 1usize..10, le in 1usize..6,
                                      tau in 0u64..5) {
        let model = gbda::prob::BranchEditModel::new(v, LabelAlphabets::new(lv, le));
        let total: f64 = (0..=2 * tau).map(|phi| gbda::prob::lambda1(&model, tau, phi)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "Λ1 row sums to {}", total);
    }

    /// Flat interned branch sets compute exactly the multiset GBD — both
    /// when the catalog interned both graphs (database side) and when one
    /// side is a read-only lookup with possible unknowns (query side).
    #[test]
    fn flat_branch_sets_match_multiset_gbd(seed_a in 0u64..400, seed_b in 400u64..800,
                                           n_a in 1usize..16, n_b in 1usize..16) {
        let a = graph_from_seed(seed_a, n_a, 2.2, 5);
        let b = graph_from_seed(seed_b, n_b, 2.2, 5);
        let ma = BranchMultiset::from_graph(&a);
        let mb = BranchMultiset::from_graph(&b);

        // Database side: both sets fully interned.
        let mut catalog = BranchCatalog::new();
        let fa = catalog.flatten(&ma);
        let fb = catalog.flatten(&mb);
        prop_assert_eq!(fa.gbd(&fb), ma.gbd(&mb));
        prop_assert_eq!(fb.gbd(&fa), mb.gbd(&ma));
        prop_assert_eq!(fa.intersection_size(&fb), ma.intersection_size(&mb));
        for w in [0.0, 0.3, 1.0] {
            prop_assert_eq!(fa.weighted_gbd(&fb, w), ma.weighted_gbd(&mb, w));
        }

        // Query side: only `a` is catalogued, `b` is looked up read-only.
        let mut db_catalog = BranchCatalog::new();
        let db_side = db_catalog.flatten(&ma);
        let query_side = db_catalog.flatten_lookup(&mb);
        prop_assert_eq!(query_side.gbd(&db_side), mb.gbd(&ma));
    }

    /// The engine's posterior memo is bit-identical to evaluating the
    /// uncached `posterior_ged_at_most` on the same priors.
    #[test]
    fn posterior_cache_is_bit_identical_to_uncached(seed in 0u64..100, tau_hat in 1u64..6,
                                                    size in 2usize..20, phi in 0u64..15) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graphs = GeneratorConfig::new(10, 2.0)
            .with_alphabets(LabelAlphabets::new(5, 3))
            .generate_many(10, &mut rng)
            .unwrap();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(tau_hat, 0.8).with_sample_pairs(45);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let cache = PosteriorCache::new(tau_hat);
        let lambda1 = index.lambda1_table(size);
        let ged_prior = index.ged_prior().column(size);
        let gbd_prior = index.gbd_prior().probability(phi as usize);
        let direct = gbda::prob::posterior_ged_at_most(
            tau_hat, phi, &lambda1, &ged_prior, gbd_prior,
        );
        // First call computes, second call reads the memo; both must carry
        // the exact bits of the direct evaluation.
        prop_assert_eq!(cache.posterior(&index, size, phi).to_bits(), direct.to_bits());
        prop_assert_eq!(cache.posterior(&index, size, phi).to_bits(), direct.to_bits());
    }

    /// Every filter-cascade bound is a true lower/upper bound on the exact
    /// observed branch distance, and the inverted-index count filter
    /// reproduces the merge's intersection exactly — for the plain GBD and
    /// the weighted V2 distance alike.
    #[test]
    fn filter_bounds_sandwich_the_exact_distance(seed in 0u64..120, q_seed in 1000u64..1120,
                                                 n_lo in 3usize..10, q_size in 3usize..18,
                                                 w_tenths in 0usize..11) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut graphs = Vec::new();
        for size in [n_lo, n_lo + 5, n_lo + 9] {
            let cfg = GeneratorConfig::new(size, 2.0)
                .with_alphabets(LabelAlphabets::new(5, 3));
            graphs.extend(cfg.generate_many(5, &mut rng).unwrap());
        }
        let database = GraphDatabase::from_graphs(graphs);
        let query = graph_from_seed(q_seed, q_size, 2.0, 5);
        let multiset = BranchMultiset::from_graph(&query);
        let flat = database.catalog().flatten_lookup(&multiset);
        let weight = (w_tenths > 0).then(|| w_tenths as f64 / 10.0);
        let cascade = FilterCascade::new(&database, &flat, weight);
        prop_assert!(cascade.bounds_usable());
        let acc = cascade.intersections(0..database.len());
        for (i, &acc_i) in acc.iter().enumerate() {
            let merged_inter = flat.as_view().intersection_size(database.flat(i));
            prop_assert_eq!(acc_i as usize, merged_inter, "count filter diverges on {}", i);
            let phi = cascade.phi_exact(i, acc_i);
            let expected = match weight {
                None => flat.as_view().gbd(database.flat(i)) as u64,
                Some(w) => flat.as_view().weighted_gbd(database.flat(i), w)
                    .round().max(0.0) as u64,
            };
            prop_assert_eq!(phi, expected, "exact ϕ diverges on {}", i);
            let (lb1, ub1) = cascade.size_bounds(database.size_of(i));
            let (lb2, ub2) = cascade.refined_bounds(i);
            prop_assert!(lb1 <= phi && phi <= ub1, "stage-1 bound violated on {}", i);
            prop_assert!(lb2 <= phi && phi <= ub2, "stage-2 bound violated on {}", i);
            prop_assert!(lb2 >= lb1 && ub2 <= ub1, "stage 2 must refine stage 1");
        }
    }

    /// The cascade-enabled engine is bit-identical to the seed-faithful
    /// `reference_search` across the standard, V1 and V2 modes, recording
    /// posteriors or not.
    #[test]
    fn cascade_search_matches_reference_search(seed in 0u64..40, variant_pick in 0usize..3,
                                               tau_hat in 2u64..5, record in 0usize..2) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut graphs = Vec::new();
        for size in [8usize, 12, 16] {
            let cfg = GeneratorConfig::new(size, 2.2)
                .with_alphabets(LabelAlphabets::new(6, 3));
            graphs.extend(cfg.generate_many(8, &mut rng).unwrap());
        }
        let queries: Vec<Graph> = vec![graphs[0].clone(), graphs[15].clone()];
        let database = GraphDatabase::from_graphs(graphs);
        let variant = match variant_pick {
            0 => GbdaVariant::Standard,
            1 => GbdaVariant::AverageExtendedSize { sample_graphs: 5 },
            _ => GbdaVariant::WeightedGbd { weight: 0.4 },
        };
        let config = GbdaConfig::new(tau_hat, 0.75)
            .with_sample_pairs(150)
            .with_variant(variant);
        prop_assert!(config.filter_cascade, "the cascade must default to on");
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(
            &database,
            &index,
            config.with_record_posteriors(record == 1),
        );
        for query in &queries {
            let cascade = engine.search(query);
            let reference = engine.reference_search(query);
            prop_assert_eq!(&cascade.matches, &reference.matches);
            prop_assert_eq!(cascade.stats.merged, 0);
            if record == 1 {
                prop_assert_eq!(cascade.posteriors.len(), reference.posteriors.len());
                for (x, y) in cascade.posteriors.iter().zip(&reference.posteriors) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "posterior bits diverge");
                }
            } else {
                prop_assert!(cascade.posteriors.is_empty());
            }
        }
    }

    /// The Hungarian solver never exceeds the greedy solution.
    #[test]
    fn hungarian_is_optimal_relative_to_greedy(seed in 0u64..500, n in 1usize..9) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..9.0)).collect())
            .collect();
        let (_, optimal) = gbda::assignment::hungarian(&cost);
        let (_, greedy) = gbda::assignment::greedy_assignment(&cost);
        prop_assert!(optimal <= greedy + 1e-9);
    }
}
