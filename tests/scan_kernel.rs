//! Property tests for the hardware-fast scan kernel, exercised through the
//! `gbda` facade.
//!
//! Two contracts:
//!
//! 1. **Adaptive ≡ linear** — the chunked/galloping postings kernel
//!    ([`FilterCascade::intersections`], [`PostingsCursors`]) accumulates
//!    exactly the intersection counts of the pre-adaptive linear reference
//!    walk ([`FilterCascade::intersections_linear`]), on adversarial
//!    postings shapes (dense and sparse runs, skewed sizes, unknown query
//!    branches) and for any ascending chunking of the scan range.
//!
//! 2. **Planner neutrality** — the stats-driven stage planner changes only
//!    the work schedule: threshold, top-k, streaming and dynamic searches
//!    return bit-identical results with the planner on vs.
//!    `force_fixed_pipeline`, at shard counts 1/2/4, from cold priors and
//!    from a warmed steady-state profile alike — and the stage partition
//!    (`SearchStats::stage_partition`) holds under every schedule.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A database whose postings shapes are steered adversarially: `labels = 1`
/// produces one giant dense run per graph (every posting list long),
/// `labels = 8` many short sparse runs, and mixing sizes skews how many
/// graphs each branch hits.
fn adversarial_graphs(seed: u64, count: usize, labels: u32, sizes: &[usize]) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    for (k, &size) in sizes.iter().enumerate() {
        let config = GeneratorConfig::new(size, 2.3)
            .with_alphabets(LabelAlphabets::new(labels.max(1) as usize, 2));
        graphs.extend(
            config
                .generate_many(count.div_ceil(sizes.len()) + (k == 0) as usize, &mut rng)
                .expect("generation succeeds"),
        );
    }
    graphs
}

/// Splits `0..n` into ascending, non-overlapping chunks with random widths —
/// the shape a sharded or superchunked scan feeds the cursors.
fn random_chunking(n: usize, rng: &mut StdRng) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < n {
        let width = rng.gen_range(1..=(n - start).min(97));
        ranges.push(start..start + width);
        start += width;
    }
    ranges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The adaptive postings kernel accumulates bit-identical counts to the
    /// linear reference walk — whole-range, per random chunking with reused
    /// cursors, and with a query holding branches the database never
    /// catalogued.
    #[test]
    fn adaptive_kernel_matches_linear_walk(
        seed in 0u64..10_000,
        labels in 1u32..9,
        query_labels in 1u32..9,
    ) {
        let graphs = adversarial_graphs(seed, 36, labels, &[6, 11, 19]);
        let database = GraphDatabase::from_graphs(graphs);
        let n = database.len();
        // A query drawn from a possibly different alphabet: runs the
        // catalog has never seen must contribute nothing, like in a merge.
        let query = adversarial_graphs(seed ^ 0xBEEF, 1, query_labels, &[13])
            .pop()
            .unwrap();
        let multiset = BranchMultiset::from_graph(&query);
        let flat = database.catalog().flatten_lookup(&multiset);
        let cascade = FilterCascade::new(&database, &flat, None);

        let linear = cascade.intersections_linear(0..n);
        prop_assert_eq!(&cascade.intersections(0..n), &linear, "whole-range accumulation diverges");

        // One cursor set fed ascending random chunks — the sharded /
        // superchunked access pattern.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        for _ in 0..3 {
            let mut cursors = cascade.cursors();
            for range in random_chunking(n, &mut rng) {
                let mut acc = vec![0u32; range.len()];
                cursors.accumulate(range.clone(), &mut acc);
                prop_assert_eq!(
                    &acc[..],
                    &linear[range.clone()],
                    "chunked accumulation diverges on {:?}",
                    range
                );
            }
        }
    }

    /// Planner-scheduled searches are bit-identical to the fixed pipeline on
    /// every path × shard count, and every schedule keeps the stage
    /// partition exact.
    #[test]
    fn planner_schedules_are_result_neutral(
        seed in 0u64..10_000,
        labels in 2u32..7,
    ) {
        let graphs = adversarial_graphs(seed, 45, labels, &[7, 12, 18]);
        let database = GraphDatabase::from_graphs(graphs.clone());
        let n = database.len();
        let config = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(seed);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let query = database.graph((seed % n as u64) as usize).clone();

        for shards in [1usize, 2, 4] {
            let planned = config.clone().with_shards(shards);
            let fixed = planned.clone().with_force_fixed_pipeline(true);
            let planner_engine = QueryEngine::new(&database, &index, planned);
            let fixed_engine = QueryEngine::new(&database, &index, fixed);
            // Warm the planner past its prior phase so both the cold and
            // steady-state schedules are compared against the fixed run.
            for round in 0..10 {
                let outcome = planner_engine.search(&query);
                let reference = fixed_engine.search(&query);
                prop_assert_eq!(
                    &outcome.matches, &reference.matches,
                    "threshold matches diverge (shards={}, round={})", shards, round
                );
                let bits = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(
                    bits(&outcome.posteriors),
                    bits(&reference.posteriors),
                    "threshold posteriors diverge (shards={}, round={})", shards, round
                );
                prop_assert_eq!(outcome.stats.evaluated, n);
                prop_assert_eq!(outcome.stats.stage_partition(), outcome.stats.evaluated);
                prop_assert_eq!(reference.stats.stage_partition(), reference.stats.evaluated);
            }

            for k in [1usize, 5, n + 3] {
                let ranked = planner_engine.search_top_k(&query, k);
                let reference = fixed_engine.search_top_k(&query, k);
                prop_assert_eq!(
                    ranked.hits.len(), reference.hits.len(),
                    "top-{} hit count diverges (shards={})", k, shards
                );
                for (a, b) in ranked.hits.iter().zip(&reference.hits) {
                    prop_assert_eq!(a.id, b.id, "top-{} ids diverge (shards={})", k, shards);
                    prop_assert_eq!(
                        a.posterior.to_bits(), b.posterior.to_bits(),
                        "top-{} posteriors diverge (shards={})", k, shards
                    );
                }
                prop_assert_eq!(ranked.stats.stage_partition(), ranked.stats.evaluated);
            }

            let mut streamed: Vec<usize> = Vec::new();
            let stream_stats = planner_engine.search_streaming(&query, |id, _| streamed.push(id));
            let reference = fixed_engine.search(&query);
            prop_assert_eq!(
                &streamed, &reference.matches,
                "streamed hits diverge (shards={})", shards
            );
            prop_assert_eq!(stream_stats.stage_partition(), stream_stats.evaluated);
        }

        // Dynamic base+delta under tombstones: the planner plans each
        // segment independently (tiny deltas skip the bound stages) and
        // must still match the fixed pipeline bit-for-bit.
        let mut dynamic = DynamicDatabase::new(database);
        for graph in adversarial_graphs(seed ^ 0xD1CE, 7, labels, &[9, 14]) {
            dynamic.insert(graph);
        }
        dynamic.remove(seed % n as u64).unwrap();
        let live = dynamic.live_ids().len();
        let planner_engine = DynamicEngine::new(&dynamic, &index, config.clone());
        let fixed_engine = DynamicEngine::new(
            &dynamic,
            &index,
            config.clone().with_force_fixed_pipeline(true),
        );
        for round in 0..10 {
            let outcome = planner_engine.search(&query);
            let reference = fixed_engine.search(&query);
            prop_assert_eq!(
                &outcome.matches, &reference.matches,
                "dynamic matches diverge (round={})", round
            );
            prop_assert_eq!(outcome.stats.evaluated, live);
            prop_assert_eq!(outcome.stats.stage_partition(), outcome.stats.evaluated);
        }
        let ranked = planner_engine.search_top_k(&query, 6);
        let reference = fixed_engine.search_top_k(&query, 6);
        prop_assert_eq!(ranked.hits.len(), reference.hits.len(), "dynamic top-k diverges");
        for (a, b) in ranked.hits.iter().zip(&reference.hits) {
            prop_assert_eq!(a.id, b.id, "dynamic top-k ids diverge");
            prop_assert_eq!(
                a.posterior.to_bits(), b.posterior.to_bits(),
                "dynamic top-k posteriors diverge"
            );
        }
        prop_assert_eq!(ranked.stats.stage_partition(), ranked.stats.evaluated);
    }
}
