//! Interleaving tests of the concurrent serving layer: under any randomly
//! generated interleaving of concurrent queries with `insert`/`remove`/
//! `compact`, every query answer must be **bit-consistent with some
//! published generation** — i.e. identical to what a fresh static
//! [`QueryEngine`] returns over that generation's live set — across all
//! three GBDA variants and all three query shapes (threshold, top-k,
//! streaming).
//!
//! The readers run on real threads racing the mutation stream; each reader
//! pins generations as they are published and records `(generation,
//! results)` pairs. Verification happens after the fact, once per distinct
//! observed epoch: rebuild that generation's live set as a static database,
//! run the same query through a fresh static engine sharing the same
//! offline index, and compare ids and posterior bits.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gbda::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn sample_graphs(count: usize, seed: u64, size: usize) -> Vec<Graph> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GeneratorConfig::new(size, 2.0)
        .with_alphabets(LabelAlphabets::new(4, 2))
        .generate_many(count, &mut rng)
        .unwrap()
}

/// One mutation of the generated interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Insert the next graph from the prepared pool.
    Insert,
    /// Remove `hint % next_id` (a no-op when already removed).
    Remove(u64),
    /// Fold the delta and tombstones.
    Compact,
}

/// Decodes one sampled word per op (the vendored proptest shim offers
/// range strategies, so the op mix is encoded arithmetically): insert-
/// leaning, with removes carrying their target hint in the high bits.
fn decode_ops(words: &[u64]) -> Vec<Op> {
    words
        .iter()
        .map(|&word| match word % 6 {
            0..=2 => Op::Insert,
            3 | 4 => Op::Remove(word / 6),
            _ => Op::Compact,
        })
        .collect()
}

fn variant_of(tag: u8) -> GbdaVariant {
    match tag % 3 {
        0 => GbdaVariant::Standard,
        1 => GbdaVariant::AverageExtendedSize { sample_graphs: 4 },
        _ => GbdaVariant::WeightedGbd { weight: 0.5 },
    }
}

/// Everything one reader observed for one pinned generation.
struct Observation {
    generation: Arc<Generation>,
    matches: Vec<u64>,
    posteriors: Vec<f64>,
    top_k: Vec<RankedHit<u64>>,
    streamed: Vec<u64>,
}

/// Pins the current generation and runs all three query shapes against it.
fn observe(reader: &SnapshotReader, query: &Graph) -> Observation {
    let generation = reader.pin();
    let outcome = reader.search_pinned(&generation, query);
    let top_k = reader.search_top_k_pinned(&generation, query, 5).hits;
    let mut streamed = Vec::new();
    reader.search_streaming_pinned(&generation, query, |id, _phi| streamed.push(id));
    Observation {
        generation,
        matches: outcome.matches,
        posteriors: outcome.posteriors,
        top_k,
        streamed,
    }
}

/// Verifies one observation against a fresh static engine over the
/// generation's live set (bit-consistency with *some* published state).
fn verify(observation: &Observation, reader: &SnapshotReader, query: &Graph, config: &GbdaConfig) {
    let generation = &observation.generation;
    let survivors: Vec<Graph> = generation.live_graphs().map(|(_, g)| g.clone()).collect();
    let ids = generation.live_ids();
    let fresh = GraphDatabase::with_alphabets(survivors, generation.alphabets());
    let static_engine = QueryEngine::new(&fresh, reader.index(), config.clone());
    let epoch = generation.epoch();

    let expected = static_engine.search(query);
    let expected_ids: Vec<u64> = expected.matches.iter().map(|&i| ids[i]).collect();
    assert_eq!(
        observation.matches, expected_ids,
        "threshold matches diverged from the static engine at epoch {epoch}"
    );
    assert_eq!(observation.streamed, observation.matches);
    for (a, b) in observation.posteriors.iter().zip(&expected.posteriors) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "posterior bits diverged at epoch {epoch}"
        );
    }

    let expected_top = static_engine.search_top_k(query, 5);
    assert_eq!(observation.top_k.len(), expected_top.hits.len());
    for (got, want) in observation.top_k.iter().zip(&expected_top.hits) {
        assert_eq!(got.id, ids[want.id], "top-k ids diverged at epoch {epoch}");
        assert_eq!(
            got.posterior.to_bits(),
            want.posterior.to_bits(),
            "top-k posterior bits diverged at epoch {epoch}"
        );
    }
}

/// Runs one generated interleaving: 2 reader threads race the mutation
/// stream, then every distinct observed generation is verified.
fn run_interleaving(variant_tag: u8, ops: &[Op]) {
    let base = sample_graphs(10, 0xA0 + variant_tag as u64, 8);
    let query = base[4].clone();
    let pool = sample_graphs(ops.len(), 0xB0 + variant_tag as u64, 8);
    let database = GraphDatabase::from_graphs(base);
    let config = GbdaConfig::new(2, 0.5)
        .with_sample_pairs(60)
        .with_variant(variant_of(variant_tag));
    let index = OfflineIndex::build(&database, &config).unwrap();
    let engine = ConcurrentEngine::new(DynamicDatabase::new(database), index, config.clone());

    let done = AtomicBool::new(false);
    let observations = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    let mut seen = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        seen.push(observe(engine.reader(), &query));
                    }
                    // One final observation so the fully-mutated state is
                    // always covered even if the mutator outran us.
                    seen.push(observe(engine.reader(), &query));
                    seen
                })
            })
            .collect();

        let mut pool = pool.into_iter();
        for op in ops {
            match op {
                Op::Insert => {
                    engine.insert(pool.next().unwrap());
                }
                Op::Remove(hint) => {
                    // Bounded by the ids handed out so far; removing an
                    // already-tombstoned id is a legitimate no-op error.
                    let bound = engine.pin().epoch() + 10;
                    let _ = engine.remove(hint % bound.max(1));
                }
                Op::Compact => {
                    engine.compact();
                }
            }
        }
        done.store(true, Ordering::Release);
        readers
            .into_iter()
            .flat_map(|reader| reader.join().unwrap())
            .collect::<Vec<_>>()
    });

    // Results are deterministic per generation; verify each epoch once but
    // require every observation of that epoch to agree bit-for-bit.
    let mut verified: HashSet<u64> = HashSet::new();
    let mut by_epoch: Vec<&Observation> = Vec::new();
    for observation in &observations {
        let epoch = observation.generation.epoch();
        if verified.insert(epoch) {
            verify(observation, engine.reader(), &query, &config);
            by_epoch.push(observation);
        } else {
            let first = by_epoch
                .iter()
                .find(|o| o.generation.epoch() == epoch)
                .unwrap();
            assert_eq!(first.matches, observation.matches);
            assert_eq!(first.streamed, observation.streamed);
        }
    }
    assert!(
        !verified.is_empty(),
        "at least one generation must have been observed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any interleaving of concurrent queries with insert/remove/compact,
    /// across all three variants, returns answers bit-consistent with some
    /// published generation.
    #[test]
    fn interleavings_are_snapshot_consistent(
        variant_tag in 0u8..3,
        words in proptest::collection::vec(0u64..1_000_000_000, 1..10),
    ) {
        run_interleaving(variant_tag, &decode_ops(&words));
    }
}

/// The deterministic exhaustive corner: every variant with a fixed
/// mutation stream that exercises insert, remove of base + delta graphs,
/// and explicit compaction.
#[test]
fn all_variants_survive_a_fixed_interleaving() {
    for variant_tag in 0..3u8 {
        let ops = [
            Op::Insert,
            Op::Insert,
            Op::Remove(2),
            Op::Insert,
            Op::Remove(10),
            Op::Compact,
            Op::Insert,
        ];
        run_interleaving(variant_tag, &ops);
    }
}
