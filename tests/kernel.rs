//! Kernel-level invariants shared by every scan instantiation, exercised
//! through the `gbda` facade.
//!
//! Two contracts from the scan-kernel refactor:
//!
//! 1. **Stage partition** — every evaluated graph is decided by exactly one
//!    stage of the kernel, so
//!    `bound_rejected + bound_accepted + rank_rejected + postings_resolved +
//!    merged == evaluated` ([`SearchStats::stage_partition`]) on every
//!    instantiation: threshold, top-k, batch, dynamic base+delta and
//!    streaming, at every shard count.
//!
//! 2. **Streaming ≡ collecting** — the `Subscriber` sink's callback sequence
//!    yields exactly the hit set (and, in record mode, the posterior bits) of
//!    a collecting scan over the same final database state, for any
//!    interleaving of inserts, removes and compactions.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graphs_from_seed(seed: u64, count: usize, size: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    GeneratorConfig::new(size, 2.2)
        .with_alphabets(LabelAlphabets::new(6, 3))
        .generate_many(count, &mut rng)
        .expect("generation succeeds")
}

fn mixed_graphs(seed: u64, per_size: usize) -> Vec<Graph> {
    let mut graphs = Vec::new();
    for (k, size) in [8usize, 12, 16].into_iter().enumerate() {
        graphs.extend(graphs_from_seed(seed ^ (k as u64) << 8, per_size, size));
    }
    graphs
}

/// Every (variant, cascade, record) combination the engine supports.
fn all_modes(config: &GbdaConfig) -> Vec<(String, GbdaConfig)> {
    let variants = [
        ("standard", GbdaVariant::Standard),
        ("v1", GbdaVariant::AverageExtendedSize { sample_graphs: 5 }),
        ("v2", GbdaVariant::WeightedGbd { weight: 0.4 }),
    ];
    let mut modes = Vec::new();
    for (name, variant) in variants {
        for cascade in [true, false] {
            for record in [true, false] {
                modes.push((
                    format!("{name}/cascade={cascade}/record={record}"),
                    config
                        .clone()
                        .with_variant(variant)
                        .with_filter_cascade(cascade)
                        .with_record_posteriors(record),
                ));
            }
        }
    }
    modes
}

fn assert_partition(stats: &SearchStats, expected_evaluated: usize, context: &str) {
    assert_eq!(
        stats.evaluated, expected_evaluated,
        "{context}: evaluated diverges from the live-set size"
    );
    assert_eq!(
        stats.stage_partition(),
        stats.evaluated,
        "{context}: stages do not partition the evaluated set \
         (bound_rejected={} bound_accepted={} rank_rejected={} \
          postings_resolved={} merged={} evaluated={})",
        stats.bound_rejected,
        stats.bound_accepted,
        stats.rank_rejected,
        stats.postings_resolved,
        stats.merged,
        stats.evaluated,
    );
}

/// Threshold scans: every mode × shard count partitions exactly.
#[test]
fn stage_partition_holds_for_threshold_scans() {
    let database = GraphDatabase::from_graphs(mixed_graphs(0xA0, 5));
    let n = database.len();
    let base = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(9);
    let index = OfflineIndex::build(&database, &base).unwrap();
    let query = database.graph(2).clone();
    for (context, mode) in all_modes(&base) {
        for shards in [1usize, 2, 4] {
            let engine = QueryEngine::new(&database, &index, mode.clone().with_shards(shards));
            let outcome = engine.search(&query);
            assert_partition(
                &outcome.stats,
                n,
                &format!("threshold {context} shards={shards}"),
            );
        }
    }
}

/// Ranked scans: every mode × shard count × k partitions exactly.
#[test]
fn stage_partition_holds_for_ranked_scans() {
    let database = GraphDatabase::from_graphs(mixed_graphs(0xB1, 5));
    let n = database.len();
    let base = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(11);
    let index = OfflineIndex::build(&database, &base).unwrap();
    let query = database.graph(0).clone();
    for (context, mode) in all_modes(&base) {
        for shards in [1usize, 2, 4] {
            let engine = QueryEngine::new(&database, &index, mode.clone().with_shards(shards));
            for k in [1usize, 5, n, n + 7] {
                let outcome = engine.search_top_k(&query, k);
                assert_partition(
                    &outcome.stats,
                    n,
                    &format!("top-{k} {context} shards={shards}"),
                );
            }
        }
    }
}

/// Batch scans: per-query stats and the absorbed batch totals both partition.
#[test]
fn stage_partition_holds_for_batch_scans() {
    let database = GraphDatabase::from_graphs(mixed_graphs(0xC2, 4));
    let n = database.len();
    let config = GbdaConfig::new(4, 0.7)
        .with_sample_pairs(150)
        .with_seed(13)
        .with_shards(3);
    let index = OfflineIndex::build(&database, &config).unwrap();
    let engine = QueryEngine::new(&database, &index, config);
    let queries: Vec<Graph> = (0..4).map(|i| database.graph(i * 2).clone()).collect();

    let (outcomes, totals) = engine.search_batch_with_stats(&queries);
    for (q, outcome) in outcomes.iter().enumerate() {
        assert_partition(&outcome.stats, n, &format!("batch threshold query {q}"));
    }
    assert_partition(&totals, n * queries.len(), "batch threshold totals");

    let (ranked, ranked_totals) = engine.search_top_k_batch_with_stats(&queries, 5);
    for (q, outcome) in ranked.iter().enumerate() {
        assert_partition(&outcome.stats, n, &format!("batch top-k query {q}"));
    }
    assert_partition(&ranked_totals, n * queries.len(), "batch top-k totals");
}

/// Dynamic base+delta scans under tombstone masks: the partition covers the
/// live set only, for both threshold and ranked paths.
#[test]
fn stage_partition_holds_for_dynamic_scans() {
    let base = GraphDatabase::from_graphs(mixed_graphs(0xD3, 4));
    let config = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(17);
    let index = OfflineIndex::build(&base, &config).unwrap();
    let query = base.graph(1).clone();
    let mut dynamic = DynamicDatabase::new(base);
    for graph in mixed_graphs(0xD3 ^ 0xFEED, 1) {
        dynamic.insert(graph);
    }
    dynamic.remove(0).unwrap();
    dynamic.remove(4).unwrap();
    let live = dynamic.live_ids().len();

    for (context, mode) in all_modes(&config) {
        let engine = DynamicEngine::new(&dynamic, &index, mode);
        let outcome = engine.search(&query);
        assert_partition(
            &outcome.stats,
            live,
            &format!("dynamic threshold {context}"),
        );
        for k in [1usize, 3, live + 2] {
            let ranked = engine.search_top_k(&query, k);
            assert_partition(&ranked.stats, live, &format!("dynamic top-{k} {context}"));
        }
    }
}

/// Streaming scans partition too, on both the static and dynamic engines.
#[test]
fn stage_partition_holds_for_streaming_scans() {
    let base = GraphDatabase::from_graphs(mixed_graphs(0xE4, 4));
    let n = base.len();
    let config = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(19);
    let index = OfflineIndex::build(&base, &config).unwrap();
    let query = base.graph(3).clone();

    for (context, mode) in all_modes(&config) {
        let engine = QueryEngine::new(&base, &index, mode.clone());
        let stats = engine.search_streaming(&query, |_, _| {});
        assert_partition(&stats, n, &format!("static streaming {context}"));
    }

    let mut dynamic = DynamicDatabase::new(base);
    dynamic.remove(2).unwrap();
    let live = dynamic.live_ids().len();
    for (context, mode) in all_modes(&config) {
        let engine = DynamicEngine::new(&dynamic, &index, mode);
        let stats = engine.search_streaming(&query, |_, _| {});
        assert_partition(&stats, live, &format!("dynamic streaming {context}"));
    }
}

/// Applies `ops` random insert/remove/compact operations.
fn random_interleaving(dynamic: &mut DynamicDatabase, rng: &mut StdRng, ops: usize, seed: u64) {
    let mut fresh_graphs = mixed_graphs(seed ^ 0xFEED, ops.div_ceil(3) + 1).into_iter();
    for _ in 0..ops {
        match rng.gen_range(0u32..5) {
            0 | 1 => {
                if let Some(graph) = fresh_graphs.next() {
                    dynamic.insert(graph);
                }
            }
            2 | 3 => {
                let live = dynamic.live_ids();
                if !live.is_empty() {
                    let victim = live[rng.gen_range(0..live.len())];
                    dynamic.remove(victim).expect("live id removes");
                }
            }
            _ => {
                dynamic.compact();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streaming over the final database state yields the same hit set —
    /// same ids in the same order — as the collecting scan, for any
    /// interleaving of inserts, removes and compactions, in every mode. In
    /// record mode the streamed posteriors are bit-identical too.
    #[test]
    fn streaming_equals_collecting_after_any_interleaving(
        seed in 0u64..10_000,
        ops in 3usize..14,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57BEA);
        let base = GraphDatabase::from_graphs(mixed_graphs(seed, 4));
        let config = GbdaConfig::new(4, 0.7).with_sample_pairs(150).with_seed(seed);
        let index = OfflineIndex::build(&base, &config).unwrap();
        let query = graphs_from_seed(seed ^ 0xABCD, 1, 10).pop().unwrap();
        let mut dynamic = DynamicDatabase::new(base);
        random_interleaving(&mut dynamic, &mut rng, ops, seed);

        for (context, mode) in all_modes(&config) {
            // Dynamic engine: stream over base+delta under tombstones.
            let engine = DynamicEngine::new(&dynamic, &index, mode.clone());
            let collected = engine.search(&query);
            let mut streamed: Vec<(u64, Option<f64>)> = Vec::new();
            let stats = engine.search_streaming(&query, |id, posterior| {
                streamed.push((id, posterior));
            });
            let streamed_ids: Vec<u64> = streamed.iter().map(|&(id, _)| id).collect();
            prop_assert_eq!(
                &streamed_ids, &collected.matches,
                "{}: dynamic streamed hit set diverges", context
            );
            prop_assert_eq!(
                stats.evaluated, collected.stats.evaluated,
                "{}: dynamic streaming scanned a different live set", context
            );
            if mode.record_posteriors {
                // Record mode resolves every posterior; the collecting scan
                // stores them parallel to the full live-id order, so index
                // each streamed hit through `ids` and compare bits.
                for (i, &(id, posterior)) in streamed.iter().enumerate() {
                    let streamed_value = posterior.expect("record mode streams posteriors");
                    let slot = collected
                        .ids
                        .iter()
                        .position(|&live| live == id)
                        .expect("hit id is live");
                    prop_assert_eq!(
                        streamed_value.to_bits(),
                        collected.posteriors[slot].to_bits(),
                        "{}: dynamic streamed posterior {} diverges", context, i
                    );
                }
            }

            // Static engine over the surviving graphs: same contract.
            let survivors: Vec<Graph> =
                dynamic.live_graphs().map(|(_, graph)| graph.clone()).collect();
            let fresh = GraphDatabase::with_alphabets(survivors, dynamic.alphabets());
            let static_engine = QueryEngine::new(&fresh, &index, mode.clone());
            let static_collected = static_engine.search(&query);
            let mut static_streamed: Vec<usize> = Vec::new();
            static_engine.search_streaming(&query, |id, _| static_streamed.push(id));
            prop_assert_eq!(
                &static_streamed, &static_collected.matches,
                "{}: static streamed hit set diverges", context
            );
        }
    }
}
