//! Integration tests of the telemetry layer through the facade: exposition
//! validity (a small Prometheus parser round-trips `render_prometheus`,
//! `gbd_bench`'s JSON parser round-trips `render_json`), the level knob's
//! gating of the engine flush, and the trace ring's accounting.
//!
//! Only [`global_level_gating_and_engine_flush`] touches the process-global
//! registry and level — every other test works on a fresh local
//! [`MetricsRegistry`], so the tests stay independent under the default
//! parallel test runner.

use gbda::prelude::*;
use gbda::telemetry;
use proptest::prelude::*;
use rand::SeedableRng;

/// One parsed Prometheus sample: metric name, `le` label (if any), value.
#[derive(Debug)]
struct Sample {
    name: String,
    le: Option<String>,
    value: f64,
}

/// A deliberately small parser of the text exposition format: `# HELP` /
/// `# TYPE` comments plus `name[{le="bound"}] value` samples. Anything it
/// cannot parse is a test failure — that is the point.
fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator in {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|e| format!("bad value in {line:?}: {e}"))?;
        let (name, le) = match series.split_once('{') {
            None => (series.to_owned(), None),
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated labels in {line:?}"))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|rest| rest.strip_suffix('"'))
                    .ok_or_else(|| format!("unsupported labels in {line:?}"))?;
                (name.to_owned(), Some(le.to_owned()))
            }
        };
        samples.push(Sample { name, le, value });
    }
    Ok(samples)
}

fn series<'a>(samples: &'a [Sample], name: &str) -> Vec<&'a Sample> {
    samples.iter().filter(|s| s.name == name).collect()
}

#[test]
fn prometheus_rendering_round_trips_through_a_small_parser() {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("test_ops_total", "Operations.");
    let gauge = registry.gauge("test_level", "A level.");
    let histogram = registry.histogram("test_seconds", "A latency.");
    counter.add(41);
    counter.inc();
    gauge.set(2.5);
    let values = [0.0, 1e-7, 3.3e-5, 0.5, 11.0];
    for value in values {
        histogram.record(value);
    }

    let text = registry.render_prometheus();
    assert!(text.contains("# TYPE test_ops_total counter"));
    assert!(text.contains("# TYPE test_level gauge"));
    assert!(text.contains("# TYPE test_seconds histogram"));
    assert!(text.contains("# HELP test_ops_total Operations."));
    let samples = parse_prometheus(&text).expect("every sample line parses");

    let counters = series(&samples, "test_ops_total");
    assert_eq!(counters.len(), 1);
    assert_eq!(counters[0].value, 42.0);
    assert_eq!(series(&samples, "test_level")[0].value, 2.5);

    let buckets = series(&samples, "test_seconds_bucket");
    assert_eq!(
        buckets.len(),
        telemetry::HISTOGRAM_BUCKETS,
        "one bucket per bound plus +Inf"
    );
    let mut previous = 0.0;
    let mut previous_bound = f64::NEG_INFINITY;
    for bucket in &buckets {
        let le = bucket.le.as_deref().expect("buckets carry le");
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().expect("finite bounds parse")
        };
        assert!(bound > previous_bound, "bounds ascend");
        assert!(bucket.value >= previous, "cumulative counts are monotone");
        previous = bucket.value;
        previous_bound = bound;
    }
    let count = series(&samples, "test_seconds_count")[0].value;
    assert_eq!(count, values.len() as f64);
    assert_eq!(buckets.last().unwrap().value, count, "+Inf equals _count");
    let sum = series(&samples, "test_seconds_sum")[0].value;
    let expected: f64 = values.iter().sum();
    assert!((sum - expected).abs() < 1e-6, "sum {sum} vs {expected}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `render_prometheus` round-trips arbitrary recorded data: the counter
    /// equals the sum of its increments, `_count` equals the number of
    /// recorded values, and the cumulative buckets are monotone and end at
    /// `_count` — for any mix of magnitudes across the bucket range.
    #[test]
    fn rendering_round_trips_arbitrary_recordings(
        increments in proptest::collection::vec(0u64..1000, 0..20),
        values in proptest::collection::vec(0.0f64..20.0, 0..24),
    ) {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("prop_ops_total", "Operations.");
        let histogram = registry.histogram("prop_seconds", "A latency.");
        for &n in &increments {
            counter.add(n);
        }
        for &value in &values {
            histogram.record(value);
        }
        let samples =
            parse_prometheus(&registry.render_prometheus()).expect("every sample line parses");
        let total: u64 = increments.iter().sum();
        prop_assert_eq!(series(&samples, "prop_ops_total")[0].value, total as f64);
        let buckets = series(&samples, "prop_seconds_bucket");
        prop_assert_eq!(buckets.len(), telemetry::HISTOGRAM_BUCKETS);
        let mut previous = 0.0;
        for bucket in &buckets {
            prop_assert!(bucket.value >= previous);
            previous = bucket.value;
        }
        let count = series(&samples, "prop_seconds_count")[0].value;
        prop_assert_eq!(count, values.len() as f64);
        prop_assert_eq!(buckets.last().unwrap().value, count);
    }
}

#[test]
fn trace_ring_accounts_for_every_event() {
    let ring = TraceBuffer::with_capacity(4);
    for value in 0..7u64 {
        ring.push(TraceEvent {
            name: "test.ring",
            kind: TraceKind::Event,
            key: "i",
            value,
            start_ns: telemetry::now_ns(),
            duration_ns: 0,
        });
    }
    assert_eq!(ring.recorded(), 7);
    assert_eq!(ring.len(), 4);
    assert_eq!(ring.dropped(), 3);
    let kept: Vec<u64> = ring.events().iter().map(|e| e.value).collect();
    assert_eq!(kept, vec![3, 4, 5, 6], "oldest events are overwritten");
}

/// Serializes the tests that manipulate the process-global telemetry level
/// or read the process-global gauges: the default runner is parallel, and
/// an `Off` window in one test must not swallow another's recordings.
static GLOBAL_TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The one test that touches process-global state (the level and the global
/// registry): `Off` suppresses the engine flush entirely, `Metrics` mirrors
/// the stage partition of [`SearchStats`] bit-exactly into counter deltas,
/// and the JSON rendering parses with the workspace's own JSON parser.
#[test]
fn global_level_gating_and_engine_flush() {
    let _guard = GLOBAL_TELEMETRY_LOCK.lock().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let graphs = GeneratorConfig::new(10, 2.0)
        .with_alphabets(LabelAlphabets::new(5, 3))
        .generate_many(40, &mut rng)
        .unwrap();
    let query = graphs[7].clone();
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(3, 0.8).with_sample_pairs(120);
    let index = OfflineIndex::build(&database, &config).unwrap();
    let engine = QueryEngine::new(&database, &index, config.clone());

    // Off: nothing reaches the registry.
    telemetry::set_level(TelemetryLevel::Off);
    let before = telemetry::global().snapshot();
    engine.search(&query);
    let delta = telemetry::global().snapshot().delta(&before);
    assert_eq!(delta.counter("gbda_queries_total"), 0, "Off must be silent");

    // Metrics (the default): one flush per search, partition bit-exact.
    telemetry::set_level(TelemetryLevel::Metrics);
    let before = telemetry::global().snapshot();
    let outcome = engine.search(&query);
    let delta = telemetry::global().snapshot().delta(&before);
    assert_eq!(delta.counter("gbda_queries_total"), 1);
    let stats = outcome.stats;
    assert_eq!(
        delta.counter("gbda_scan_evaluated_total"),
        stats.evaluated as u64
    );
    let partition = delta.counter("gbda_scan_bound_rejected_total")
        + delta.counter("gbda_scan_bound_accepted_total")
        + delta.counter("gbda_scan_rank_rejected_total")
        + delta.counter("gbda_scan_postings_resolved_total")
        + delta.counter("gbda_scan_merged_total");
    assert_eq!(partition, stats.evaluated as u64, "stage partition mirrors");
    assert_eq!(stats.stage_partition(), stats.evaluated);

    // MetricsAndTraces: spans land in the global ring.
    telemetry::set_level(TelemetryLevel::MetricsAndTraces);
    let traced_before = telemetry::traces().recorded();
    engine.search(&query);
    assert!(
        telemetry::traces().recorded() > traced_before,
        "armed spans must reach the trace ring"
    );

    // The JSON exposition parses with the workspace's own parser.
    let document = gbd_bench::json::parse(&telemetry::global().render_json())
        .expect("render_json output is valid JSON");
    let queries = document
        .get("counters")
        .and_then(|c| c.get("gbda_queries_total"))
        .and_then(gbd_bench::json::JsonValue::as_usize)
        .expect("the flushed counter is in the JSON rendering");
    assert!(queries >= 2);

    // Restore the default so no later global user sees a surprise level.
    telemetry::set_level(TelemetryLevel::Metrics);
}

/// The escalate-or-explicit-set contract of [`GbdaConfig::telemetry`]:
/// constructing a second engine with a *conflicting* (lower) level must not
/// silently reconfigure the process for the engines already running —
/// construction only ever raises the level; lowering takes an explicit
/// `set_level`.
#[test]
fn engine_construction_escalates_but_never_lowers_the_level() {
    let _guard = GLOBAL_TELEMETRY_LOCK.lock().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let graphs = GeneratorConfig::new(8, 2.0)
        .with_alphabets(LabelAlphabets::new(4, 2))
        .generate_many(12, &mut rng)
        .unwrap();
    let query = graphs[3].clone();
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(2, 0.7).with_sample_pairs(80);
    let index = OfflineIndex::build(&database, &config).unwrap();

    telemetry::set_level(TelemetryLevel::Off);
    let metered = QueryEngine::new(
        &database,
        &index,
        config.clone().with_telemetry(TelemetryLevel::Metrics),
    );
    assert_eq!(
        telemetry::level(),
        TelemetryLevel::Metrics,
        "construction escalates the process level to what the engine requires"
    );

    // The conflicting engine: a lower requested level must leave the
    // process level — and the first engine's flushes — untouched.
    let quiet = QueryEngine::new(
        &database,
        &index,
        config.clone().with_telemetry(TelemetryLevel::Off),
    );
    assert_eq!(
        telemetry::level(),
        TelemetryLevel::Metrics,
        "a second engine with a lower level must not reconfigure the process"
    );
    let before = telemetry::global().snapshot();
    metered.search(&query);
    quiet.search(&query);
    let delta = telemetry::global().snapshot().delta(&before);
    assert_eq!(
        delta.counter("gbda_queries_total"),
        2,
        "both engines flush at the escalated process level"
    );

    // Escalation past the current level still works…
    let _traced = QueryEngine::new(
        &database,
        &index,
        config.with_telemetry(TelemetryLevel::MetricsAndTraces),
    );
    assert_eq!(telemetry::level(), TelemetryLevel::MetricsAndTraces);

    // …and lowering is exactly the explicit override, nothing else.
    telemetry::set_level(TelemetryLevel::Metrics);
    assert_eq!(telemetry::level(), TelemetryLevel::Metrics);
}

/// Gauge/state agreement across an injected failure: the dynamic-layer
/// gauges must describe the *actual* database after a failed mutation
/// (log-then-apply means a failed WAL append changes nothing), and a
/// recovery replay must neither count historical mutations as fresh ones
/// nor leave gauges describing a discarded database object.
#[test]
fn dynamic_gauges_agree_with_state_across_an_injected_failure() {
    let _guard = GLOBAL_TELEMETRY_LOCK.lock().unwrap();
    telemetry::set_level(TelemetryLevel::Metrics);
    let gauges = || {
        let snapshot = telemetry::global().snapshot();
        (
            snapshot.gauge("gbda_dynamic_delta_graphs"),
            snapshot.gauge("gbda_dynamic_tombstones"),
        )
    };
    let agree = |db: &DurableDatabase<FaultVfs>, when: &str| {
        let state = (
            db.database().delta().len() as f64,
            db.database().tombstone_count() as f64,
        );
        assert_eq!(gauges(), state, "gauges diverged from state {when}");
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let graphs = GeneratorConfig::new(8, 2.0)
        .with_alphabets(LabelAlphabets::new(4, 2))
        .generate_many(8, &mut rng)
        .unwrap();
    let base = GraphDatabase::from_graphs(graphs[..5].to_vec());
    let vfs = FaultVfs::new();
    let mut db =
        DurableDatabase::create(vfs.clone(), "gauge-db", base, DurabilityConfig::default())
            .unwrap();
    db.insert(graphs[5].clone()).unwrap();
    db.insert(graphs[6].clone()).unwrap();
    db.remove(1).unwrap();
    agree(&db, "after acknowledged mutations");

    // The injected failure: the WAL append crashes, the mutation is never
    // applied — and the gauges must not have moved.
    let before = telemetry::global().snapshot();
    vfs.arm(FaultSchedule::crash_after(0));
    assert!(db.insert(graphs[7].clone()).is_err());
    agree(&db, "after a failed (unapplied) insert");
    let delta = telemetry::global().snapshot().delta(&before);
    assert_eq!(
        delta.counter("gbda_dynamic_inserts_total"),
        0,
        "a failed insert must not be counted"
    );

    // Recovery: the quiet replay must not re-count the historical
    // mutations, and the resynced gauges describe the recovered database.
    drop(db);
    vfs.arm(FaultSchedule::default());
    vfs.power_cycle();
    let before = telemetry::global().snapshot();
    let recovered = DurableDatabase::open(vfs, "gauge-db", DurabilityConfig::default()).unwrap();
    let delta = telemetry::global().snapshot().delta(&before);
    assert_eq!(
        delta.counter("gbda_dynamic_inserts_total"),
        0,
        "replay must not count historical inserts as fresh ones"
    );
    assert_eq!(
        delta.counter("gbda_dynamic_removes_total"),
        0,
        "replay must not count historical removes as fresh ones"
    );
    agree(&recovered, "after recovery resynced the gauges");
    assert_eq!(recovered.database().delta().len(), 2);
    assert_eq!(recovered.database().tombstone_count(), 1);
}
