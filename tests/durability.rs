//! Crash-consistency tests for the durable dynamic layer, exercised
//! through the `gbda` facade against the deterministic [`FaultVfs`].
//!
//! The contract under test: after **any** crash, `DurableDatabase::open`
//! never panics, and the recovered live set equals the state after some
//! *prefix* of the mutation history that contains every mutation whose
//! acknowledgment was synced. On top of that, scans over the recovered
//! database are bit-identical — matches *and* posteriors — to a fresh
//! rebuild over the recovered live set, across Standard / V1 / V2.

use gbda::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn graphs_from_seed(seed: u64, count: usize, size: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    GeneratorConfig::new(size, 2.0)
        .with_alphabets(LabelAlphabets::new(4, 2))
        .generate_many(count, &mut rng)
        .expect("generation succeeds")
}

fn dir() -> PathBuf {
    PathBuf::from("db")
}

/// One scripted mutation.
#[derive(Debug, Clone)]
enum Op {
    Insert(Graph),
    Remove(u64),
    Compact,
}

/// The small scripted schedule of the every-byte matrix: inserts, removes
/// and a compaction, so the sweep crosses log appends, snapshot rotation
/// and the manifest swap.
fn scripted_schedule(seed: u64) -> Vec<Op> {
    let graphs = graphs_from_seed(seed ^ 0x5EED, 3, 6);
    vec![
        Op::Insert(graphs[0].clone()),
        Op::Remove(1),
        Op::Insert(graphs[1].clone()),
        Op::Compact,
        Op::Insert(graphs[2].clone()),
        Op::Remove(4),
    ]
}

type GraphPrint = (u64, Vec<Label>, Vec<(gbda::graph::EdgeKey, Label)>);

fn fingerprint(database: &DynamicDatabase) -> Vec<GraphPrint> {
    database
        .live_graphs()
        .map(|(id, graph)| {
            (
                id,
                graph.vertex_labels().to_vec(),
                graph.edges().collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Fingerprints after every prefix of `ops` applied to a plain in-memory
/// [`DynamicDatabase`] — the ground truth the recovered state must be a
/// member of. `states[k]` is the state after the first `k` mutations.
fn prefix_states(base: &GraphDatabase, ops: &[Op]) -> Vec<Vec<GraphPrint>> {
    let mut shadow = DynamicDatabase::new(base.clone());
    let mut states = vec![fingerprint(&shadow)];
    for op in ops {
        match op {
            Op::Insert(graph) => {
                shadow.insert(graph.clone());
            }
            Op::Remove(id) => shadow.remove(*id).expect("scripted removes hit live ids"),
            Op::Compact => {
                shadow.compact();
            }
        }
        states.push(fingerprint(&shadow));
    }
    states
}

/// Applies `ops` to a durable database, stopping at the first error (the
/// injected crash). Returns how many mutations were acknowledged.
fn apply_until_crash(db: &mut DurableDatabase<FaultVfs>, ops: &[Op]) -> usize {
    let mut acked = 0;
    for op in ops {
        let result = match op {
            Op::Insert(graph) => db.insert(graph.clone()).map(|_| ()),
            Op::Remove(id) => db.remove(*id),
            Op::Compact => db.compact().map(|_| ()),
        };
        if result.is_err() {
            break;
        }
        acked += 1;
    }
    acked
}

fn fresh_db(seed: u64) -> (FaultVfs, DurableDatabase<FaultVfs>, GraphDatabase) {
    let vfs = FaultVfs::new();
    let base = GraphDatabase::from_graphs(graphs_from_seed(seed, 4, 6));
    let db = DurableDatabase::create(
        vfs.clone(),
        dir(),
        base.clone(),
        DurabilityConfig::default(),
    )
    .expect("create succeeds fault-free");
    (vfs, db, base)
}

/// The three paper variants the scan-identity checks run under.
fn variant_modes(config: &GbdaConfig) -> Vec<(&'static str, GbdaConfig)> {
    vec![
        (
            "standard",
            config.clone().with_variant(GbdaVariant::Standard),
        ),
        (
            "v1",
            config
                .clone()
                .with_variant(GbdaVariant::AverageExtendedSize { sample_graphs: 4 }),
        ),
        (
            "v2",
            config
                .clone()
                .with_variant(GbdaVariant::WeightedGbd { weight: 0.4 }),
        ),
    ]
}

/// Asserts a recovered dynamic database scans bit-identically to a fresh
/// rebuild over its live set, for every variant.
fn assert_scans_match_rebuild(
    recovered: &DynamicDatabase,
    index: &OfflineIndex,
    config: &GbdaConfig,
    query: &Graph,
    context: &str,
) {
    let (ids, survivors): (Vec<u64>, Vec<Graph>) = recovered
        .live_graphs()
        .map(|(id, graph)| (id, graph.clone()))
        .unzip();
    let fresh = GraphDatabase::with_alphabets(survivors, recovered.alphabets());
    for (name, mode) in variant_modes(config) {
        let static_engine = QueryEngine::new(&fresh, index, mode.clone());
        let dynamic_engine = DynamicEngine::new(recovered, index, mode);
        let expected = static_engine.search(query);
        let got = dynamic_engine.search(query);
        let expected_ids: Vec<u64> = expected.matches.iter().map(|&i| ids[i]).collect();
        assert_eq!(got.matches, expected_ids, "{context}/{name}: matches");
        assert_eq!(
            got.posteriors.len(),
            expected.posteriors.len(),
            "{context}/{name}"
        );
        for (i, (a, b)) in got.posteriors.iter().zip(&expected.posteriors).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{context}/{name}: posterior {i}");
        }
    }
}

/// The every-byte matrix: run the scripted schedule once fault-free to
/// measure the charged-byte budget, then crash at **every** byte offset,
/// power-cycle, reopen, and check the recovered state is a prefix that
/// keeps every synced acknowledgment. Scan bit-identity (Standard/V1/V2)
/// is asserted on a stride of crash points and at both ends.
#[test]
fn crash_at_every_byte_recovers_an_acknowledged_prefix() {
    let seed = 0x00D0_0DA5;
    let ops = scripted_schedule(seed);
    let (probe_vfs, mut probe, base) = fresh_db(seed);
    probe_vfs.arm(FaultSchedule::default());
    assert_eq!(apply_until_crash(&mut probe, &ops), ops.len());
    let budget = probe_vfs.bytes_charged();
    assert!(
        budget > 300,
        "schedule charged only {budget} bytes — the sweep would be vacuous"
    );
    let states = prefix_states(&base, &ops);
    assert_eq!(
        fingerprint(probe.database()),
        states[ops.len()],
        "shadow replay agrees with the durable run"
    );

    let config = GbdaConfig::new(3, 0.7)
        .with_sample_pairs(80)
        .with_seed(seed);
    let index = OfflineIndex::build(&base, &config).unwrap();
    let query = graphs_from_seed(seed ^ 0x9E, 1, 7).pop().unwrap();
    // Full scan identity is costly; spread ~12 checkpoints over the sweep.
    let scan_stride = (budget / 12).max(1);

    for crash_at in 0..=budget {
        let (vfs, mut db, _) = fresh_db(seed);
        vfs.arm(FaultSchedule::crash_after(crash_at));
        let acked = apply_until_crash(&mut db, &ops);
        drop(db);
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default())
            .unwrap_or_else(|e| panic!("crash at {crash_at}/{budget}: open failed: {e}"));
        let got = fingerprint(recovered.database());
        let matched = states
            .iter()
            .position(|state| *state == got)
            .unwrap_or_else(|| {
                panic!("crash at {crash_at}: recovered state is not any prefix state")
            });
        assert!(
            states[acked..].contains(&got),
            "crash at {crash_at}: prefix {matched} lost a synced ack (acked {acked})"
        );
        if crash_at % scan_stride == 0 || crash_at == budget {
            assert_scans_match_rebuild(
                recovered.database(),
                &index,
                &config,
                &query,
                &format!("crash at {crash_at}"),
            );
        }
    }
}

/// Flipping any single byte of the WAL or the manifest (after a real
/// workload) either recovers cleanly or fails with a typed error — never a
/// panic, and never a state that breaks the prefix contract.
#[test]
fn bit_flip_sweep_over_wal_and_manifest_never_panics() {
    let seed = 0x000F_11B5;
    let ops = scripted_schedule(seed);
    // Stop before the compaction so generation 1's WAL carries records.
    let ops = &ops[..3];
    let build = || {
        let (vfs, mut db, base) = fresh_db(seed);
        assert_eq!(apply_until_crash(&mut db, ops), ops.len());
        drop(db);
        (vfs, base)
    };
    let (vfs, base) = build();
    let states = prefix_states(&base, ops);
    let wal_path = dir().join("wal-00000001.log");
    let manifest_path = dir().join("MANIFEST");
    let wal_len = vfs.read(&wal_path).unwrap().len();
    let manifest_len = vfs.read(&manifest_path).unwrap().len();

    for (path, len) in [(&wal_path, wal_len), (&manifest_path, manifest_len)] {
        for offset in 0..len {
            let (vfs, _) = build();
            assert!(vfs.corrupt(path, offset, 0x08));
            vfs.power_cycle();
            match DurableDatabase::open(vfs, dir(), DurabilityConfig::default()) {
                Ok(recovered) => {
                    // A flip the decoder tolerates (e.g. inside the torn
                    // tail rules) must still land on a prefix state.
                    let got = fingerprint(recovered.database());
                    assert!(
                        states.contains(&got),
                        "flip {}@{offset}: recovered a non-prefix state",
                        path.display()
                    );
                }
                Err(
                    StoreError::CorruptAt { .. }
                    | StoreError::Corrupt(_)
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::BadMagic
                    | StoreError::UnsupportedVersion(_)
                    | StoreError::InvalidDatabase(_)
                    | StoreError::Io { .. },
                ) => {}
            }
        }
    }
}

/// A lying disk (syncs report success but persist nothing) can roll back
/// acknowledged mutations — but recovery still lands on a clean prefix.
#[test]
fn dropped_syncs_still_recover_a_consistent_prefix() {
    let seed = 0x000D_200D;
    let ops = scripted_schedule(seed);
    let (vfs, mut db, base) = fresh_db(seed);
    let states = prefix_states(&base, &ops);
    vfs.arm(FaultSchedule {
        drop_syncs: true,
        ..FaultSchedule::default()
    });
    assert_eq!(apply_until_crash(&mut db, &ops), ops.len());
    drop(db);
    vfs.power_cycle();
    let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default())
        .expect("recovery survives a lying disk");
    assert!(
        states.contains(&fingerprint(recovered.database())),
        "recovered state must still be a prefix"
    );
}

/// Generates a concrete random schedule (ops valid at the moment they run)
/// by scripting against a shadow database.
fn random_schedule(base: &GraphDatabase, seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow = DynamicDatabase::new(base.clone());
    let mut fresh = graphs_from_seed(seed ^ 0xF00D, ops, 6).into_iter();
    let mut schedule = Vec::new();
    for _ in 0..ops {
        let op = match rng.gen_range(0u32..6) {
            0..=2 => match fresh.next() {
                Some(graph) => Op::Insert(graph),
                None => Op::Compact,
            },
            3 | 4 => {
                let live = shadow.live_ids();
                if live.is_empty() {
                    Op::Compact
                } else {
                    Op::Remove(live[rng.gen_range(0..live.len())])
                }
            }
            _ => Op::Compact,
        };
        match &op {
            Op::Insert(graph) => {
                shadow.insert(graph.clone());
            }
            Op::Remove(id) => shadow.remove(*id).expect("picked from live ids"),
            Op::Compact => {
                shadow.compact();
            }
        }
        schedule.push(op);
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: a random mutation schedule, a crash at a
    /// random charged-byte offset, under both power-loss extremes
    /// (worst-case revert and persist-everything) and with/without torn
    /// garbage — recovery never fails, and the recovered state is a prefix
    /// of the history containing every synced acknowledgment.
    #[test]
    fn random_schedules_crash_anywhere_recover_a_prefix(
        seed in 0u64..10_000,
        ops in 3usize..9,
        budget_frac in 0.0f64..1.0,
        fault_mode in 0u32..4,
    ) {
        let persist_unsynced = fault_mode & 1 != 0;
        let torn_garbage = fault_mode & 2 != 0;
        let base = GraphDatabase::from_graphs(graphs_from_seed(seed, 4, 6));
        let schedule = random_schedule(&base, seed ^ 0x11, ops);
        let states = prefix_states(&base, &schedule);

        // Fault-free run measures the budget for this schedule.
        let probe = FaultVfs::new();
        let mut db = DurableDatabase::create(
            probe.clone(), dir(), base.clone(), DurabilityConfig::default(),
        ).unwrap();
        probe.arm(FaultSchedule::default());
        prop_assert_eq!(apply_until_crash(&mut db, &schedule), schedule.len());
        let budget = probe.bytes_charged();
        drop(db);

        let crash_at = (budget as f64 * budget_frac) as u64;
        let vfs = FaultVfs::new();
        let mut db = DurableDatabase::create(
            vfs.clone(), dir(), base, DurabilityConfig::default(),
        ).unwrap();
        vfs.arm(FaultSchedule {
            crash_after_bytes: Some(crash_at),
            torn_garbage,
            persist_unsynced,
            seed: seed ^ 0x7A47,
            ..FaultSchedule::default()
        });
        let acked = apply_until_crash(&mut db, &schedule);
        drop(db);
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default())
            .unwrap_or_else(|e| panic!("crash at {crash_at}/{budget}: open failed: {e}"));
        let got = fingerprint(recovered.database());
        prop_assert!(
            states[acked..].contains(&got),
            "crash at {crash_at}/{budget} (acked {acked}, persist={persist_unsynced}, garbage={torn_garbage}): recovered state is not an ack-preserving prefix"
        );
    }
}

/// The durability path reports into the workspace telemetry: WAL appends,
/// bytes and fsyncs move on acknowledged mutations, and recovery moves the
/// torn-truncation, replayed-record and snapshot-load counters across an
/// insert → crash → recover cycle. The registry is process-global and the
/// other tests in this binary mutate the same counters concurrently, so
/// every assertion is a `>=` on a snapshot delta — monotone counters can
/// only over-count, never under-count, what this test did itself.
#[test]
fn durability_counters_move_across_insert_crash_recover() {
    let registry = gbda::telemetry::global();
    let (vfs, mut db, _base) = fresh_db(0xCAFE);
    let before = registry.snapshot();
    let id = db
        .insert(graphs_from_seed(77, 1, 6).pop().expect("one graph"))
        .expect("insert is acknowledged");
    db.remove(id).expect("remove is acknowledged");
    let after_mutations = registry.snapshot();
    let mutation_delta = after_mutations.delta(&before);
    assert!(
        mutation_delta.counter("gbda_wal_appends_total") >= 2,
        "the insert and the remove each append a record"
    );
    assert!(mutation_delta.counter("gbda_wal_appended_bytes_total") > 0);
    assert!(
        mutation_delta.counter("gbda_wal_fsyncs_total") >= 2,
        "sync-on-ack is the default discipline"
    );
    drop(db);

    // A torn tail on the durable medium — garbage past the last synced
    // record — then a crash and a recovery.
    let wal_path = Manifest { generation: 1 }.wal_path(&dir());
    vfs.append(&wal_path, &[0x55; 7]).expect("append garbage");
    vfs.sync(&wal_path).expect("sync the garbage");
    vfs.power_cycle();
    let recovered =
        DurableDatabase::open(vfs, dir(), DurabilityConfig::default()).expect("recovery succeeds");
    assert_eq!(recovered.len(), 4, "insert + remove cancel over the base");
    let recovery_delta = registry.snapshot().delta(&after_mutations);
    assert!(
        recovery_delta.counter("gbda_wal_torn_truncations_total") >= 1,
        "the garbage tail was truncated in place"
    );
    assert!(
        recovery_delta.counter("gbda_recovery_replayed_records_total") >= 2,
        "the insert and the remove replay onto the snapshot"
    );
    assert!(recovery_delta.counter("gbda_snapshot_loads_total") >= 1);
    let replay = recovery_delta
        .histogram("gbda_recovery_replay_seconds")
        .expect("recovery is timed");
    assert!(replay.count >= 1);
}
