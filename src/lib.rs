//! # gbda — probabilistic graph similarity search via Graph Branch Distance
//!
//! A from-scratch Rust reproduction of *"An Efficient Probabilistic Approach
//! for Graph Similarity Search"* (Li, Jian, Lian, Chen — ICDE 2018). Given a
//! query graph, a database of labeled graphs, a GED threshold `τ̂` and a
//! probability threshold `γ`, GBDA returns every database graph whose Graph
//! Edit Distance to the query is — with probability at least `γ` — at most
//! `τ̂`, in `O(nd + τ̂³)` time per database graph.
//!
//! This facade crate re-exports the whole workspace through stable paths so a
//! downstream user only depends on `gbda`:
//!
//! * [`graph`] — labeled graphs, branches, GBD, generators, statistics, I/O,
//! * [`ged`] — exact GED (A\*), bounds and the estimator trait,
//! * [`assignment`] — the LSAP (Hungarian) and Greedy-Sort-GED baselines,
//! * [`seriation`] — the spectral-seriation baseline,
//! * [`prob`] — the probabilistic model (Ω/Λ factors, GMM, Jeffreys prior),
//! * [`engine`] — the GBDA search engine (offline priors + Algorithm 1),
//! * [`store`] — the storage engine: persistent snapshot files plus the
//!   crash-safe dynamic layer ([`prelude::DurableDatabase`]: checksummed
//!   write-ahead log, atomic generation rotation, deterministic
//!   fault-injection harness); in-memory inserts/removes/compaction live in
//!   [`engine`] as [`prelude::DynamicDatabase`],
//! * [`datasets`] — dataset substitutes with ground-truth GEDs,
//! * [`telemetry`] — the dependency-free observability layer every engine
//!   reports into: a lock-free [`prelude::MetricsRegistry`] of counters,
//!   gauges and latency histograms, per-query [`prelude::Span`] traces, and
//!   Prometheus/JSON exposition (see the README's "Observability" section).
//!
//! ## Quickstart
//!
//! ```
//! use gbda::prelude::*;
//! use rand::SeedableRng;
//!
//! // A small random database and one of its graphs as the query.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let graphs = GeneratorConfig::new(14, 2.2).generate_many(40, &mut rng).unwrap();
//! let query = graphs[3].clone();
//!
//! // Offline: pre-compute the priors; Online: run Algorithm 1.
//! let database = GraphDatabase::from_graphs(graphs);
//! let config = GbdaConfig::new(3, 0.8).with_sample_pairs(300);
//! let index = OfflineIndex::build(&database, &config).unwrap();
//! let searcher = GbdaSearcher::new(&database, &index, config);
//! let result = searcher.search(&query);
//! assert!(result.matches.contains(&3));
//!
//! // Ranked: the 5 most similar graphs, best first. Equal posteriors order
//! // by ascending graph id, so results are reproducible run-to-run.
//! let top = searcher.search_top_k(&query, 5);
//! assert_eq!(top.hits.len(), 5);
//! assert!(top.hits.iter().any(|hit| hit.id == 3));
//! ```
//!
//! For batch workloads, [`prelude::QueryEngine`] adds `search_batch` /
//! `search_top_k_batch` and shard-parallel scans (`GbdaConfig::with_shards`);
//! see the crate README's "Query engine architecture" and "Ranked queries"
//! sections.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use gbd_assignment as assignment;
pub use gbd_datasets as datasets;
pub use gbd_ged as ged;
pub use gbd_graph as graph;
pub use gbd_prob as prob;
pub use gbd_seriation as seriation;
pub use gbd_store as store;
pub use gbd_telemetry as telemetry;
pub use gbda_core as engine;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use gbd_assignment::{GreedyGed, LsapGed};
    pub use gbd_datasets::{
        generate_real_like, generate_synthetic, DatasetProfile, LabeledDataset, RealLikeConfig,
        SyntheticConfig,
    };
    pub use gbd_ged::{exact_ged, GedEstimate};
    pub use gbd_graph::{
        graph_branch_distance, Branch, BranchCatalog, BranchMultiset, FlatBranchSet,
        GeneratorConfig, Graph, Label, LabelAlphabets, Vocabulary,
    };
    pub use gbd_seriation::SeriationGed;
    pub use gbd_store::{
        load_database, save_database, ConcurrentDurable, DurableDatabase, FaultSchedule, FaultVfs,
        Manifest, Snapshot, StdVfs, StoreError, StoreResult, Vfs, WalRecord, WalReplay, WalWriter,
    };
    pub use gbd_telemetry::{
        Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot as MetricsSnapshot,
        Span, TelemetryLevel, TraceBuffer, TraceEvent, TraceKind,
    };
    pub use gbda_core::{
        rank_by_posterior, BoundClass, BucketPlan, BucketRun, CollectAll, ConcurrentEngine,
        Confusion, Cutoff, DatabaseParts, DurabilityConfig, DynamicDatabase, DynamicEngine,
        DynamicOutcome, DynamicTopKOutcome, DynamicView, EngineError, EngineResult,
        EstimatorSearcher, FilterCascade, GbdaConfig, GbdaEstimator, GbdaSearcher, GbdaVariant,
        Generation, GraphAggregate, GraphDatabase, OfflineIndex, Planner, PosteriorCache, Posting,
        PostingsCursors, QueryEngine, QueryPlan, RankDecision, RankedHit, ScanKernel,
        SearchOutcome, SearchStats, SegmentIndex, SimilaritySearcher, Sink, SizeDecision,
        SnapshotReader, StaticPhi, Subscriber, TighteningRank, TopKHeap, TopKOutcome, TopKSink,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable_together() {
        let (g1, _) = crate::graph::paper_examples::figure1_g1();
        let (g2, _) = crate::graph::paper_examples::figure1_g2();
        assert_eq!(graph_branch_distance(&g1, &g2), 3);
        assert_eq!(exact_ged(&g1, &g2).0, 3);
        assert!(LsapGed.estimate_ged(&g1, &g2) <= 3.0);
        assert!(GreedyGed.estimate_ged(&g1, &g2) > 0.0);
        assert!(SeriationGed::default().estimate_ged(&g1, &g2) > 0.0);
    }
}
