//! Offline vendored shim for `serde_derive`: emits empty marker-trait impls
//! for the shimmed `serde` crate, accepting (and ignoring) `#[serde(...)]`
//! helper attributes such as `#[serde(skip)]`.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name and generic parameter names from a derive input.
///
/// Handles the shapes this workspace uses: plain (optionally `pub`) structs
/// and enums, with at most simple generic parameters (lifetimes or type
/// idents without bounds beyond `:`-clauses, which are ignored for the
/// marker impl since the shim traits have no requirements).
fn parse_name_and_generics(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`# [...]`), doc comments and visibility up to the kind
    // keyword, then take the following identifier as the type name.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &tt {
            let kind = ident.to_string();
            if kind == "struct" || kind == "enum" || kind == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };

    // Collect top-level generic parameter names between `<` and the matching `>`.
    let mut generics = Vec::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut at_param_start = true;
        let mut lifetime = false;
        for tt in tokens {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                    lifetime = false;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && at_param_start => {
                    lifetime = true;
                }
                TokenTree::Ident(ident) if depth == 1 && at_param_start => {
                    let text = ident.to_string();
                    if text != "const" {
                        let prefix = if lifetime { "'" } else { "" };
                        generics.push(format!("{prefix}{text}"));
                        at_param_start = false;
                    }
                }
                _ => {
                    if depth == 1 {
                        at_param_start = false;
                    }
                }
            }
        }
    }
    (name, generics)
}

fn impl_header(generics: &[String], extra: Option<&str>) -> (String, String) {
    let mut params: Vec<String> = extra.map(|e| e.to_string()).into_iter().collect();
    params.extend(generics.iter().cloned());
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };
    (impl_generics, ty_generics)
}

/// No-op `Serialize` derive: `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_name_and_generics(input);
    let (impl_generics, ty_generics) = impl_header(&generics, None);
    format!("impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}

/// No-op `Deserialize` derive: `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_name_and_generics(input);
    let (impl_generics, ty_generics) = impl_header(&generics, Some("'de"));
    format!("impl{impl_generics} ::serde::Deserialize<'de> for {name}{ty_generics} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}
