//! Test-runner state: configuration and the per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;

/// Configuration mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trims that for CI budget
        // since there is no failure persistence to amortise reruns.
        ProptestConfig { cases: 64 }
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    test_seed: u64,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner for the named test. The name seeds the RNG so each
    /// property gets an independent but reproducible case stream.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            test_seed: seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of cases this runner executes.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Re-seeds the RNG for `case` so a failing case is reproducible in
    /// isolation from the cases before it.
    pub fn begin_case(&mut self, case: u32) {
        self.rng = StdRng::seed_from_u64(self.test_seed ^ (u64::from(case) << 32));
    }

    /// The RNG strategies sample from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Extracts a readable message from a `catch_unwind` payload.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
