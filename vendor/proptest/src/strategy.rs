//! Input strategies: plain ranges sample uniformly.

use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};

/// A source of sampled test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one input for the current test case.
    fn pick(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, runner: &mut TestRunner) -> f64 {
        use rand::Rng;
        runner.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn pick(&self, runner: &mut TestRunner) -> f32 {
        use rand::Rng;
        runner.rng().gen_range(self.clone())
    }
}

/// A strategy that always yields the same value (mirrors `proptest::prop::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}
