//! Offline vendored shim for `proptest`.
//!
//! Implements the slice of the proptest surface this workspace's
//! property-based tests use: the [`proptest!`] macro over `arg in range`
//! strategies, [`test_runner::ProptestConfig::with_cases`], and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking** and the case stream is
//! deterministic (seeded per test from the test body's address-independent
//! counter), so failures reproduce across runs.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// A strategy producing vectors of sampled length and elements — the
    /// return type of [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec`: a vector whose length is drawn
    /// from `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            use rand::Rng;
            let len = runner.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.element.pick(runner)).collect()
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                runner.begin_case(case);
                $(let $arg = $crate::strategy::Strategy::pick(&$strat, &mut runner);)+
                let describe = || {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!("{} = {:?}, ", stringify!($arg), &$arg));)+
                    s
                };
                let run = || $body;
                if let Err(message) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                    .map_err(|payload| $crate::test_runner::panic_message(payload))
                {
                    panic!(
                        "proptest case {}/{} failed with inputs [{}]: {}",
                        case + 1,
                        runner.cases(),
                        describe(),
                        message
                    );
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled values stay inside their strategy ranges.
        #[test]
        fn ranges_are_respected(a in 3u64..9, b in 0usize..=4, x in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((-1.0..1.0).contains(&x));
        }
    }

    proptest! {
        /// The default config also expands and runs.
        #[test]
        fn default_config_works(n in 1usize..5) {
            prop_assert_ne!(n, 0);
            prop_assert_eq!(n, n);
        }
    }

    // No `#[test]` inside this expansion: it is driven by the outer test so
    // the panic message can be asserted on.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        fn always_fails(n in 10u64..20) {
            prop_assert!(n < 10, "n was {}", n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        always_fails();
    }
}
