//! Offline vendored shim for `criterion`.
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! mean-of-samples timer instead of criterion's statistical machinery.
//! Results print as `name/param  time: <mean> ns/iter (±stddev, N samples)`.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards CLI args; honour a plain substring filter
        // and ignore criterion-specific flags (`--bench`, `--save-baseline x`…).
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--save-baseline" || arg == "--baseline" || arg == "--load-baseline" {
                let _ = args.next();
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.run(id, &mut f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|needle| full_name.contains(needle))
    }
}

/// Identifies one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id varying only by parameter within a group.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if !group.is_empty() {
            parts.push(group);
        }
        if !self.function.is_empty() {
            parts.push(&self.function);
        }
        let mut name = parts.join("/");
        if let Some(parameter) = &self.parameter {
            if !name.is_empty() {
                name.push('/');
            }
            name.push_str(parameter);
        }
        name
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget for each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets throughput reporting (accepted, not reported by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |bencher: &mut Bencher| f(bencher, input));
        self
    }

    /// Ends the group (kept for API parity; dropping works too).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let full_name = id.render(&self.name);
        if !self.criterion.matches(&full_name) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(m) => println!(
                "{full_name:<52} time: {:>12} /iter (±{}, {} samples)",
                format_ns(m.mean_ns),
                format_ns(m.stddev_ns),
                m.samples,
            ),
            None => println!("{full_name:<52} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Accepted for API parity with criterion's throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    stddev_ns: f64,
    samples: usize,
}

/// Times a closure, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Benchmarks `f`, timing batches sized so one batch fits the per-sample
    /// budget derived from `measurement_time / sample_size`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate the per-batch iteration count together.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut iters_per_batch: u64 = 1;
        let mut last_batch_ns: f64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            last_batch_ns = start.elapsed().as_nanos() as f64;
            let sample_budget_ns =
                self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
            if Instant::now() >= warm_deadline && last_batch_ns >= sample_budget_ns * 0.5 {
                break;
            }
            if last_batch_ns < sample_budget_ns * 0.5 {
                // Grow toward the per-sample budget, at most 8x per step so a
                // mis-calibrated growth can't overshoot the time budget badly.
                let growth = if last_batch_ns > 0.0 {
                    (sample_budget_ns / last_batch_ns).clamp(1.5, 8.0)
                } else {
                    8.0
                };
                iters_per_batch =
                    ((iters_per_batch as f64 * growth) as u64).max(iters_per_batch + 1);
            } else if Instant::now() >= warm_deadline {
                break;
            }
        }

        let mut sample_means = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time * 2;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            sample_means.push(start.elapsed().as_nanos() as f64 / iters_per_batch as f64);
            if Instant::now() >= deadline {
                break; // Never exceed twice the configured budget.
            }
        }
        let n = sample_means.len() as f64;
        let mean = sample_means.iter().sum::<f64>() / n;
        let variance = sample_means.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        self.result = Some(Measurement {
            mean_ns: mean,
            stddev_ns: variance.sqrt(),
            samples: sample_means.len(),
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut criterion = Criterion { filter: None };
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(ran > 0, "closure should have been driven by the bencher");
    }

    #[test]
    fn benchmark_ids_render_hierarchically() {
        assert_eq!(BenchmarkId::new("f", 10).render("g"), "g/f/10");
        assert_eq!(BenchmarkId::from("plain").render(""), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).render("g"), "g/7");
    }
}
