//! Offline vendored shim for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types so a
//! future PR can persist indexes and datasets, but nothing in-tree serializes
//! yet and the build environment has no crates.io access. This shim keeps the
//! derive sites compiling by providing marker traits and no-op derive macros;
//! swapping in the real `serde` later requires no source changes outside
//! `Cargo.toml`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    &'static str,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

macro_rules! impl_tuples {
    ($(($($n:ident),+)),* $(,)?) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )*};
}

impl_tuples!((A), (A, B), (A, B, C), (A, B, C, D));

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    S: Default,
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
