//! Slice helpers, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 5];
        let pool = [0usize, 1, 2, 3, 4];
        for _ in 0..200 {
            seen[*pool.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
