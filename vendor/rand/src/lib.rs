//! Offline vendored shim for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation. `StdRng` here is xoshiro256++
//! seeded through SplitMix64 — deterministic for a given seed (which is all
//! the tests and experiments rely on), but **not** the same stream as the real
//! `rand::rngs::StdRng`, and not cryptographically secure.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T` (floats land in
    /// `[0, 1)`), mirroring `Rng::gen` of rand 0.8.
    fn gen<T: distributions::StandardSample>(&mut self) -> T {
        T::standard_sample(self.next_u64())
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        distributions::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        let mut c = rngs::StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: usize = rng.gen_range(5..=5);
            assert_eq!(z, 5);
            let w: i64 = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
