//! Uniform range sampling, mirroring `rand::distributions::uniform`.

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from 64 random bits via the standard distribution,
/// backing `Rng::gen`.
pub trait StandardSample {
    /// Produces one standard-distributed value from uniform bits.
    fn standard_sample(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample(bits: u64) -> f64 {
        unit_f64(bits)
    }
}

impl StandardSample for f32 {
    fn standard_sample(bits: u64) -> f32 {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample(bits: u64) -> u64 {
        bits
    }
}

impl StandardSample for u32 {
    fn standard_sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

/// Uniform sampling from range types, mirroring `SampleRange` of rand 0.8.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniformly distributed samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range. Panics if it is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_sample_range {
        ($($t:ty => $wide:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                    // Multiply-shift bounded sampling; bias is < 2^-64 per draw.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                    self.start.wrapping_add(hi as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                    start.wrapping_add(hi as $t)
                }
            }
        )*};
    }

    int_sample_range!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    );

    macro_rules! float_sample_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u = super::unit_f64(rng.next_u64()) as $t;
                    let sampled = self.start + (self.end - self.start) * u;
                    // Floating rounding can land exactly on `end`; stay half-open.
                    if sampled < self.end { sampled } else { self.start }
                }
            }
        )*};
    }

    float_sample_range!(f32, f64);
}
