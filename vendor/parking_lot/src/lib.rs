//! Offline vendored shim for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `read()` / `write()` / `lock()` API the
//! workspace uses. Poisoned std locks are transparently recovered, matching
//! parking_lot's behaviour of not propagating panics through locks.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// Shared-data read guard (std's guard, re-exported under parking_lot's name).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-data write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
