//! Molecule-style similarity search on an AIDS-like dataset.
//!
//! The paper's motivating scenario is searching chemical / protein structure
//! collections where exact GED is hopeless. This example builds the AIDS-like
//! dataset substitute (Table III profile, ground truth by construction),
//! answers every query with GBDA and with the three baselines, and prints
//! precision / recall / F1 for each method — a miniature of Figures 10, 14
//! and 18.
//!
//! ```bash
//! cargo run --release --example molecule_search
//! ```

use gbda::prelude::*;

fn evaluate(
    name: &str,
    dataset: &LabeledDataset,
    tau_hat: usize,
    outcomes: &[(usize, SearchOutcome)],
) {
    let mut confusions = Vec::new();
    for (query_idx, outcome) in outcomes {
        let positives =
            dataset
                .ground_truth
                .positives(*query_idx, tau_hat, dataset.database_size());
        confusions.push(Confusion::from_sets(&outcome.matches, &positives));
    }
    let total = gbda::engine::aggregate(confusions.iter());
    println!(
        "{name:>12}: precision {:.3}  recall {:.3}  F1 {:.3}",
        total.precision(),
        total.recall(),
        total.f1()
    );
}

fn main() {
    let tau_hat = 5u64;
    let gamma = 0.8;

    // A scaled-down AIDS-like dataset (about 95 database graphs, 5 queries).
    let config = RealLikeConfig::new(DatasetProfile::aids(), 0.05);
    let dataset = generate_real_like(&config).expect("dataset generation succeeds");
    println!(
        "dataset {}: {} graphs, {} queries, max |V| = {}",
        dataset.name,
        dataset.database_size(),
        dataset.query_count(),
        dataset.max_vertices()
    );

    let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);
    let gbda_config = GbdaConfig::new(tau_hat, gamma).with_sample_pairs(2000);
    let index = OfflineIndex::build(&database, &gbda_config).expect("offline stage builds");
    let gbda = QueryEngine::new(&database, &index, gbda_config);
    let lsap = EstimatorSearcher::new(&database, LsapGed, tau_hat as f64);
    let greedy = EstimatorSearcher::new(&database, GreedyGed, tau_hat as f64);
    let seriation = EstimatorSearcher::new(&database, SeriationGed::default(), tau_hat as f64);

    let run = |searcher: &dyn SimilaritySearcher| -> Vec<(usize, SearchOutcome)> {
        dataset
            .queries
            .iter()
            .enumerate()
            .map(|(qi, q)| (qi, searcher.search(q)))
            .collect()
    };

    println!("similarity search with τ̂ = {tau_hat}, γ = {gamma}:");
    evaluate("GBDA", &dataset, tau_hat as usize, &run(&gbda));
    evaluate("LSAP", &dataset, tau_hat as usize, &run(&lsap));
    evaluate("greedysort", &dataset, tau_hat as usize, &run(&greedy));
    evaluate("seriation", &dataset, tau_hat as usize, &run(&seriation));
}
