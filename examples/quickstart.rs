//! Quickstart: index a small graph database and answer one similarity query.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gbda::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. Build a small database of labeled graphs (a stand-in for loading a
    //    real collection through `gbda::graph::io`).
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let generator = GeneratorConfig::new(16, 2.2).with_alphabets(LabelAlphabets::new(8, 3));
    let graphs = generator
        .generate_many(60, &mut rng)
        .expect("generation succeeds");
    let query = graphs[10].clone();
    println!(
        "database: {} graphs, query: {} vertices / {} edges",
        graphs.len(),
        query.vertex_count(),
        query.edge_count()
    );

    // 2. Offline stage: pre-compute the GBD and GED priors.
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(4, 0.8).with_sample_pairs(1000);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
    let stats = index.stats();
    println!(
        "offline stage: GBD prior {:.3}s over {} pairs, GED prior {:.3}s",
        stats.gbd_prior_seconds, stats.sampled_pairs, stats.ged_prior_seconds
    );

    // 3. Online stage: Algorithm 1, served by the query engine.
    let searcher = QueryEngine::new(&database, &index, config);
    let outcome = searcher.search(&query);
    println!(
        "GBDA returned {} graphs with Pr[GED ≤ 4 | GBD] ≥ 0.8 in {:.4}s \
         ({} posterior evaluations, {} memo hits):",
        outcome.matches.len(),
        outcome.seconds,
        outcome.stats.cache_misses,
        outcome.stats.cache_hits
    );
    for &i in &outcome.matches {
        println!(
            "  graph #{i:3}  GBD = {:2}  posterior = {:.3}",
            graph_branch_distance(&query, database.graph(i)),
            outcome.posteriors[i]
        );
    }

    // 4. Cross-check the top hit with the exact (NP-hard) GED — feasible here
    //    because the graphs are small.
    if let Some(&best) = outcome.matches.first() {
        let (exact, _) = exact_ged(&query, database.graph(best));
        println!("exact GED to the first returned graph: {exact}");
    }
}
