//! Scalability of the online stage on large scale-free graphs (Syn-1 style).
//!
//! GBDA's selling point is the `O(nd + τ̂³)` online cost: the per-pair work is
//! one branch-multiset merge plus `O(τ̂)` table lookups, so query time grows
//! roughly linearly with the graph size while the LSAP baseline grows
//! cubically. This example sweeps the graph size (a laptop-scale version of
//! Figure 8) and prints the average per-query time of the GBDA query engine
//! (sequential and with a 4-shard scan) and of the Greedy-Sort baseline
//! (the cheapest competitor).
//!
//! ```bash
//! cargo run --release --example scalability
//! ```

use std::time::Instant;

use gbda::prelude::*;

fn main() {
    let sizes = [200usize, 400, 800, 1600];
    let tau_hat = 10u64;

    println!("graph size | GBDA (s/query) | GBDA 4 shards (s/query) | greedysort (s/query)");
    for &n in &sizes {
        let config = SyntheticConfig {
            graphs_per_subset: 6,
            queries_per_subset: 2,
            ..SyntheticConfig::syn1(vec![n])
        };
        let synthetic = generate_synthetic(&config).expect("generation succeeds");
        let subset = &synthetic.subsets[0];
        let database =
            GraphDatabase::with_alphabets(subset.dataset.graphs.clone(), subset.dataset.alphabets);

        let gbda_config = GbdaConfig::new(tau_hat, 0.7).with_sample_pairs(30);
        let index = OfflineIndex::build(&database, &gbda_config).expect("offline stage builds");
        let gbda = QueryEngine::new(&database, &index, gbda_config.clone());
        let sharded = QueryEngine::new(&database, &index, gbda_config.with_shards(4));
        let greedy = EstimatorSearcher::new(&database, GreedyGed, tau_hat as f64);

        let time_per_query = |searcher: &dyn SimilaritySearcher| -> f64 {
            let started = Instant::now();
            for q in &subset.dataset.queries {
                let _ = searcher.search(q);
            }
            started.elapsed().as_secs_f64() / subset.dataset.queries.len() as f64
        };

        let gbda_time = time_per_query(&gbda);
        let sharded_time = time_per_query(&sharded);
        let greedy_time = time_per_query(&greedy);
        println!("{n:10} | {gbda_time:14.4} | {sharded_time:23.4} | {greedy_time:19.4}");
    }
    println!(
        "(GBDA should scale close to linearly; the assignment baseline degrades much faster.)"
    );
}
