//! Estimation accuracy of every GED estimator against known ground truth.
//!
//! The paper argues GBD-driven estimation is both cheaper and more faithful
//! than the LSAP / greedy / seriation estimates. This example generates one
//! Appendix-I known-GED family (so the exact GED of every pair is known by
//! construction and cross-checked against A\* for the small sizes used here),
//! and reports the mean absolute estimation error of each method.
//!
//! ```bash
//! cargo run --release --example baseline_comparison
//! ```

use gbda::graph::known_ged::ModificationMode;
use gbda::graph::{GeneratorConfig, KnownGedConfig, KnownGedFamily};
use gbda::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let base = GeneratorConfig::new(18, 2.4).with_alphabets(LabelAlphabets::new(10, 4));
    let family_cfg = KnownGedConfig::new(base, 8, 25, 8).with_mode(ModificationMode::RelabelEdges);
    let family = KnownGedFamily::generate(&family_cfg, &mut rng).expect("family generation");

    let estimators: Vec<Box<dyn GedEstimate>> = vec![
        Box::new(LsapGed),
        Box::new(GreedyGed),
        Box::new(SeriationGed::default()),
        Box::new(GbdaEstimator::new(LabelAlphabets::new(10, 4), 10)),
    ];

    println!(
        "family of {} graphs ({} vertices each), known pairwise GEDs up to {}",
        family.len(),
        family.template().vertex_count(),
        family.max_possible_ged()
    );
    println!("{:>12} | mean abs error | mean signed error", "method");
    for estimator in &estimators {
        let mut absolute = 0.0f64;
        let mut signed = 0.0f64;
        let mut pairs = 0usize;
        for i in 0..family.len() {
            for j in (i + 1)..family.len() {
                let truth = family.known_ged(i, j) as f64;
                let estimate =
                    estimator.estimate_ged(family.member_graph(i), family.member_graph(j));
                absolute += (estimate - truth).abs();
                signed += estimate - truth;
                pairs += 1;
            }
        }
        println!(
            "{:>12} | {:14.3} | {:17.3}",
            estimator.name(),
            absolute / pairs as f64,
            signed / pairs as f64
        );
    }
    println!("(LSAP and greedysort under-estimate by construction; seriation has no bound; GBDA is capped at its τ̂ budget.)");

    // As a sanity check, run the actual similarity search over the same
    // family through the query engine: the template (member 0) must retrieve
    // itself.
    let graphs: Vec<_> = (0..family.len())
        .map(|i| family.member_graph(i).clone())
        .collect();
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(5, 0.8).with_sample_pairs(200);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
    let engine = QueryEngine::new(&database, &index, config);
    let outcome = engine.search(family.member_graph(0));
    println!(
        "engine search on the family: {} of {} members within τ̂ = 5 at γ = 0.8 \
         (template retrieved: {})",
        outcome.matches.len(),
        database.len(),
        outcome.matches.contains(&0)
    );
}
