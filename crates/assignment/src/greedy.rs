//! Greedy assignment (Greedy-Sort-GED, Riesen, Ferrer & Bunke \[12\]).
//!
//! Instead of solving the LSAP exactly, the greedy variant repeatedly picks
//! the globally cheapest remaining `(row, column)` pair. Sorting all entries
//! once costs `O(n² log n²)`, after which a single sweep builds the
//! assignment — the quadratic-time approximation evaluated by the paper.
//! The result is feasible but not necessarily optimal, so the induced GED
//! estimate carries no bound guarantee.

/// Solves the square assignment problem greedily.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = column`.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn greedy_assignment(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }
    // Sort all (cost, row, col) triples ascending — the "Sort" in
    // Greedy-Sort-GED.
    let mut entries: Vec<(f64, usize, usize)> = Vec::with_capacity(n * n);
    for (i, row) in cost.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            entries.push((c, i, j));
        }
    }
    entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut row_used = vec![false; n];
    let mut col_used = vec![false; n];
    let mut assignment = vec![usize::MAX; n];
    let mut total = 0.0;
    let mut assigned = 0usize;
    for (c, i, j) in entries {
        if assigned == n {
            break;
        }
        if row_used[i] || col_used[j] {
            continue;
        }
        row_used[i] = true;
        col_used[j] = true;
        assignment[i] = j;
        total += c;
        assigned += 1;
    }
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::hungarian;

    #[test]
    fn greedy_produces_a_feasible_assignment() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (assignment, total) = greedy_assignment(&cost);
        let mut seen = assignment.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(total >= 5.0, "greedy can never beat the optimum");
    }

    #[test]
    fn greedy_is_never_better_than_hungarian() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for n in 2..=8 {
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let (_, greedy) = greedy_assignment(&cost);
            let (_, optimal) = hungarian(&cost);
            assert!(greedy + 1e-9 >= optimal);
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let (a, c) = greedy_assignment(&[]);
        assert!(a.is_empty());
        assert_eq!(c, 0.0);
    }

    #[test]
    fn greedy_picks_the_global_minimum_first() {
        let cost = vec![vec![9.0, 1.0], vec![1.0, 9.0]];
        let (assignment, total) = greedy_assignment(&cost);
        assert_eq!(assignment, vec![1, 0]);
        assert_eq!(total, 2.0);
    }
}
