//! The LSAP and Greedy-Sort-GED estimators.
//!
//! Both build the Riesen–Bunke cost matrix and read the total assignment cost
//! as a GED estimate. The exact LSAP value is a lower bound on the GED
//! (each forced operation is counted at most once, shared edges are halved);
//! the greedy value has no guarantee but is usually tighter in practice —
//! exactly the behaviour the paper's effectiveness experiments exercise.

use gbd_ged::GedEstimate;
use gbd_graph::Graph;

use crate::cost_matrix::bipartite_cost_matrix;
use crate::greedy::greedy_assignment;
use crate::hungarian::hungarian;

/// The LSAP baseline \[11\]: exact bipartite assignment via the Hungarian
/// algorithm, `O((n1 + n2)³)` per pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct LsapGed;

impl GedEstimate for LsapGed {
    fn name(&self) -> &str {
        "LSAP"
    }

    fn estimate_ged(&self, g1: &Graph, g2: &Graph) -> f64 {
        let m = bipartite_cost_matrix(g1, g2);
        let (_, total) = hungarian(&m.costs);
        total
    }

    fn is_lower_bound(&self) -> bool {
        true
    }
}

/// The Greedy-Sort-GED baseline \[12\]: greedy bipartite assignment,
/// `O((n1 + n2)² log (n1 + n2))` per pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyGed;

impl GedEstimate for GreedyGed {
    fn name(&self) -> &str {
        "greedysort"
    }

    fn estimate_ged(&self, g1: &Graph, g2: &Graph) -> f64 {
        let m = bipartite_cost_matrix(g1, g2);
        let (_, total) = greedy_assignment(&m.costs);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_ged::exact_ged;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2, figure4_g1, figure4_g2};
    use gbd_graph::GeneratorConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lsap_lower_bounds_exact_ged_on_examples() {
        for (g1, g2) in [
            (figure1_g1().0, figure1_g2().0),
            (figure4_g1().0, figure4_g2().0),
        ] {
            let (exact, _) = exact_ged(&g1, &g2);
            let est = LsapGed.estimate_ged(&g1, &g2);
            assert!(
                est <= exact as f64 + 1e-9,
                "LSAP estimate {est} exceeds exact {exact}"
            );
        }
    }

    #[test]
    fn lsap_lower_bounds_exact_ged_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = GeneratorConfig::new(6, 2.0);
        for _ in 0..10 {
            let a = cfg.generate(&mut rng).unwrap();
            let b = cfg.generate(&mut rng).unwrap();
            let (exact, _) = exact_ged(&a, &b);
            let est = LsapGed.estimate_ged(&a, &b);
            assert!(est <= exact as f64 + 1e-9, "LSAP {est} > exact {exact}");
        }
    }

    #[test]
    fn greedy_never_beats_lsap() {
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = GeneratorConfig::new(7, 2.2);
        for _ in 0..8 {
            let a = cfg.generate(&mut rng).unwrap();
            let b = cfg.generate(&mut rng).unwrap();
            assert!(GreedyGed.estimate_ged(&a, &b) + 1e-9 >= LsapGed.estimate_ged(&a, &b));
        }
    }

    #[test]
    fn estimates_vanish_for_identical_graphs() {
        let (g1, _) = figure1_g1();
        assert_eq!(LsapGed.estimate_ged(&g1, &g1), 0.0);
        assert_eq!(GreedyGed.estimate_ged(&g1, &g1), 0.0);
    }

    #[test]
    fn estimator_metadata() {
        assert_eq!(LsapGed.name(), "LSAP");
        assert!(LsapGed.is_lower_bound());
        assert_eq!(GreedyGed.name(), "greedysort");
        assert!(!GreedyGed.is_lower_bound());
    }

    #[test]
    fn estimates_are_positive_for_different_graphs() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        assert!(LsapGed.estimate_ged(&g1, &g2) > 0.0);
        assert!(GreedyGed.estimate_ged(&g1, &g2) > 0.0);
    }
}
