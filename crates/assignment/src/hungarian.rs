//! Hungarian (Kuhn–Munkres) algorithm for the linear sum assignment problem.
//!
//! The implementation is the standard `O(n³)` shortest-augmenting-path
//! formulation with dual potentials, operating on a dense square matrix of
//! `f64` costs. It is used by the LSAP baseline \[11\] to compute the exact
//! minimum-cost bipartite vertex assignment.

/// Solves the square LSAP `min Σ cost[i][assignment[i]]`.
///
/// Returns the assignment (`assignment[row] = column`) and its total cost.
/// `cost` must be square; entries may be any finite non-negative numbers.
///
/// # Panics
/// Panics if the matrix is not square or contains non-finite values.
pub fn hungarian(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
        assert!(row.iter().all(|c| c.is_finite()), "costs must be finite");
    }

    // Potentials and matching arrays are 1-indexed as in the classical
    // e-maxx formulation; index 0 is a sentinel column.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut perm, 0, &mut |p: &[usize]| {
            let total: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
        if k == perm.len() {
            visit(perm);
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            permute(perm, k + 1, visit);
            perm.swap(k, i);
        }
    }

    #[test]
    fn solves_a_textbook_instance() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (assignment, total) = hungarian(&cost);
        assert_eq!(total, 5.0);
        // Assignment must be a permutation.
        let mut seen = assignment.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn empty_instance_costs_zero() {
        let (assignment, total) = hungarian(&[]);
        assert!(assignment.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn single_entry_instance() {
        let (assignment, total) = hungarian(&[vec![7.5]]);
        assert_eq!(assignment, vec![0]);
        assert_eq!(total, 7.5);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for n in 2..=6 {
            for _ in 0..10 {
                let cost: Vec<Vec<f64>> = (0..n)
                    .map(|_| {
                        (0..n)
                            .map(|_| (rng.gen_range(0..100) as f64) / 10.0)
                            .collect()
                    })
                    .collect();
                let (_, total) = hungarian(&cost);
                let best = brute_force(&cost);
                assert!(
                    (total - best).abs() < 1e-9,
                    "hungarian {total} != brute force {best} for n={n}"
                );
            }
        }
    }

    #[test]
    fn handles_ties_and_zero_costs() {
        let cost = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let (_, total) = hungarian(&cost);
        assert_eq!(total, 0.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square_matrices() {
        hungarian(&[vec![1.0, 2.0], vec![3.0]]);
    }
}
