//! # gbd-assignment — linear-sum-assignment GED baselines
//!
//! The paper's first two competitors estimate GED by solving a linear sum
//! assignment problem (LSAP) over a *bipartite* cost matrix that assigns each
//! vertex of `G1` (plus deletion slots) to a vertex of `G2` (plus insertion
//! slots), with local edge structure folded into the entry costs
//! (Riesen & Bunke \[11\], \[12\]):
//!
//! * **LSAP** — the exact assignment found with the Hungarian algorithm in
//!   `O(n³)`. Its optimal value lower-bounds the exact GED, so LSAP-based
//!   similarity search always has 100% recall (as the paper observes).
//! * **Greedy-Sort-GED** — a greedy `O(n² log n)` approximation of the same
//!   assignment. No bound guarantee, but usually tighter estimates and higher
//!   precision.
//!
//! Both share the cost-matrix construction in [`cost_matrix`] and implement
//! the workspace-wide [`GedEstimate`] trait.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost_matrix;
pub mod estimator;
pub mod greedy;
pub mod hungarian;

pub use cost_matrix::{bipartite_cost_matrix, CostMatrix};
pub use estimator::{GreedyGed, LsapGed};
pub use greedy::greedy_assignment;
pub use hungarian::hungarian;

pub use gbd_ged::GedEstimate;
