//! The Riesen–Bunke bipartite cost matrix.
//!
//! GED estimation via LSAP \[11\] builds an `(n1 + n2) × (n1 + n2)` matrix:
//!
//! ```text
//!         ┌                         ┐
//!         │  C_sub      C_del       │   rows    = vertices of G1 + deletion slots
//!         │  C_ins      0           │   columns = vertices of G2 + insertion slots
//!         └                         ┘
//! ```
//!
//! * `C_sub[i][j]` — cost of substituting vertex `i` of `G1` by vertex `j` of
//!   `G2`: the vertex-label mismatch plus the multiset difference of the
//!   incident edge labels (a lower bound on the edge operations this
//!   substitution forces).
//! * `C_del[i][i]` — cost of deleting vertex `i`: `1 + degree(i)`.
//! * `C_ins[j][j]` — cost of inserting vertex `j`: `1 + degree(j)`.
//! * Off-diagonal deletion/insertion entries are forbidden (large constant).
//!
//! With the halved edge terms used here the optimal LSAP value lower-bounds
//! the exact GED, which is what gives the LSAP baseline its 100% recall.

use gbd_graph::{Branch, Graph, Label};

/// A dense square cost matrix plus its dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    /// Number of vertices of the first graph.
    pub n1: usize,
    /// Number of vertices of the second graph.
    pub n2: usize,
    /// Row-major `(n1 + n2) × (n1 + n2)` costs.
    pub costs: Vec<Vec<f64>>,
}

/// A large-but-finite cost used to forbid meaningless assignments
/// (deleting vertex `i` into the deletion slot of vertex `k ≠ i`).
pub const FORBIDDEN: f64 = 1.0e7;

fn multiset_difference(mut a: Vec<Label>, mut b: Vec<Label>) -> usize {
    a.sort_unstable();
    b.sort_unstable();
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    a.len().max(b.len()) - common
}

/// Builds the bipartite cost matrix for the pair `(g1, g2)`.
///
/// Each edge-related term is halved because every edge is shared by two
/// vertices and would otherwise be double counted, which would break the
/// lower-bound property of the exact LSAP value.
pub fn bipartite_cost_matrix(g1: &Graph, g2: &Graph) -> CostMatrix {
    let n1 = g1.vertex_count();
    let n2 = g2.vertex_count();
    let size = n1 + n2;
    let mut costs = vec![vec![0.0f64; size]; size];

    let b1: Vec<Branch> = g1.vertices().map(|v| Branch::of_vertex(g1, v)).collect();
    let b2: Vec<Branch> = g2.vertices().map(|v| Branch::of_vertex(g2, v)).collect();

    // Substitution block.
    for (i, bi) in b1.iter().enumerate() {
        for (j, bj) in b2.iter().enumerate() {
            let vertex_cost = f64::from(bi.vertex_label() != bj.vertex_label());
            let edge_cost =
                multiset_difference(bi.edge_labels().to_vec(), bj.edge_labels().to_vec()) as f64;
            costs[i][j] = vertex_cost + edge_cost / 2.0;
        }
    }
    // Deletion block (rows of G1, columns n2..): only the diagonal is allowed.
    for (i, bi) in b1.iter().enumerate() {
        for k in 0..n1 {
            costs[i][n2 + k] = if i == k {
                1.0 + bi.degree() as f64 / 2.0
            } else {
                FORBIDDEN
            };
        }
    }
    // Insertion block (rows n1.., columns of G2): only the diagonal is allowed.
    for (j, bj) in b2.iter().enumerate() {
        for k in 0..n2 {
            costs[n1 + k][j] = if j == k {
                1.0 + bj.degree() as f64 / 2.0
            } else {
                FORBIDDEN
            };
        }
    }
    // The ε→ε block stays zero.
    CostMatrix { n1, n2, costs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    #[test]
    fn matrix_has_the_expected_shape() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m = bipartite_cost_matrix(&g1, &g2);
        assert_eq!(m.n1, 3);
        assert_eq!(m.n2, 4);
        assert_eq!(m.costs.len(), 7);
        assert!(m.costs.iter().all(|row| row.len() == 7));
    }

    #[test]
    fn substitution_costs_are_zero_for_identical_branches() {
        let (g1, _) = figure1_g1();
        let m = bipartite_cost_matrix(&g1, &g1);
        for i in 0..3 {
            assert_eq!(m.costs[i][i], 0.0);
        }
    }

    #[test]
    fn deletion_and_insertion_blocks_are_diagonal() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m = bipartite_cost_matrix(&g1, &g2);
        // off-diagonal deletion entries are forbidden
        assert_eq!(m.costs[0][m.n2 + 1], FORBIDDEN);
        assert_eq!(m.costs[1][m.n2], FORBIDDEN);
        // diagonal deletion cost = 1 + degree/2
        assert_eq!(m.costs[0][m.n2], 1.0 + 1.0);
        // insertion block
        assert_eq!(m.costs[m.n1][1], FORBIDDEN);
        assert!(m.costs[m.n1][0] >= 1.0);
        // ε→ε block is free
        assert_eq!(m.costs[m.n1 + 1][m.n2 + 1], 0.0);
    }

    #[test]
    fn substitution_cost_counts_vertex_and_halved_edge_terms() {
        let (g1, voc) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m = bipartite_cost_matrix(&g1, &g2);
        // v1 = {A; y,y}, u2 = {A; y}: same vertex label, edge multiset diff 1.
        let _ = voc;
        assert!((m.costs[0][1] - 0.5).abs() < 1e-12);
        // v1 = {A; y,y}, u1 = {B; x,z}: label mismatch + edge diff 2.
        assert!((m.costs[0][0] - 2.0).abs() < 1e-12);
    }
}
