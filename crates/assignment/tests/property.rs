//! Property tests for the assignment solvers: the Hungarian algorithm must
//! be exactly optimal (equal to the brute-force permutation minimum on small
//! matrices) and the greedy approximation can never beat it.

use gbd_assignment::{greedy_assignment, hungarian};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cost(seed: u64, n: usize, scale: u32) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| rng.gen_range(0..scale) as f64 / 10.0)
                .collect()
        })
        .collect()
}

/// Exhaustive minimum over all n! assignments.
fn brute_force_minimum(cost: &[Vec<f64>]) -> f64 {
    fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
        if k == perm.len() {
            visit(perm);
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            permute(perm, k + 1, visit);
            perm.swap(k, i);
        }
    }
    let n = cost.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |p| {
        let total: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        if total < best {
            best = total;
        }
    });
    best
}

fn assert_permutation(assignment: &[usize]) {
    let mut seen = assignment.to_vec();
    seen.sort_unstable();
    let expected: Vec<usize> = (0..assignment.len()).collect();
    assert_eq!(seen, expected, "assignment must be a permutation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Optimality: on every random ≤ 5×5 matrix the Hungarian cost equals
    /// the brute-force permutation minimum and its assignment is a
    /// permutation achieving that cost.
    #[test]
    fn hungarian_equals_the_brute_force_minimum(
        seed in 0u64..1_000_000,
        n in 1usize..=5,
        scale in 2u32..=200,
    ) {
        let cost = random_cost(seed, n, scale);
        let (assignment, total) = hungarian(&cost);
        assert_permutation(&assignment);
        let achieved: f64 = assignment.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        prop_assert!((achieved - total).abs() < 1e-9, "reported cost must match the assignment");
        let best = brute_force_minimum(&cost);
        prop_assert!(
            (total - best).abs() < 1e-9,
            "hungarian {} != brute-force minimum {} (n = {})", total, best, n
        );
    }

    /// The greedy approximation is feasible and never beats the optimum.
    #[test]
    fn greedy_never_beats_hungarian(
        seed in 0u64..1_000_000,
        n in 1usize..=7,
        scale in 2u32..=200,
    ) {
        let cost = random_cost(seed, n, scale);
        let (greedy_assign, greedy_total) = greedy_assignment(&cost);
        assert_permutation(&greedy_assign);
        let (_, optimal) = hungarian(&cost);
        prop_assert!(
            greedy_total + 1e-9 >= optimal,
            "greedy {} beat the optimum {}", greedy_total, optimal
        );
    }

    /// Duplicating a constant onto every entry shifts the optimal cost by
    /// exactly n·c and leaves an optimal assignment optimal (the classic
    /// potential-invariance property the dual formulation relies on).
    #[test]
    fn constant_shifts_move_the_optimum_linearly(
        seed in 0u64..1_000_000,
        n in 1usize..=5,
        shift_tenths in 0u32..=50,
    ) {
        let cost = random_cost(seed, n, 100);
        let shift = shift_tenths as f64 / 10.0;
        let shifted: Vec<Vec<f64>> = cost
            .iter()
            .map(|row| row.iter().map(|c| c + shift).collect())
            .collect();
        let (_, base) = hungarian(&cost);
        let (_, moved) = hungarian(&shifted);
        prop_assert!(
            (moved - (base + shift * n as f64)).abs() < 1e-9,
            "shifted optimum {} != base {} + n·c {}", moved, base, shift * n as f64
        );
    }
}
