//! One-dimensional Gaussian Mixture Models fitted with EM (Section V-B).
//!
//! The GBD prior `Λ2` is estimated by fitting a `K`-component mixture of
//! normals to the GBDs of sampled graph pairs (the paper cites the classical
//! EM treatment of Day 1969). The implementation is a plain 1-D EM with
//! quantile initialisation, a variance floor, and early stopping on the
//! log-likelihood.

use crate::special::normal_pdf;

/// One mixture component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Mixing weight `π_i` (the weights of all components sum to 1).
    pub weight: f64,
    /// Mean `μ_i`.
    pub mean: f64,
    /// Standard deviation `σ_i`.
    pub std_dev: f64,
}

/// Configuration of the EM fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmConfig {
    /// Number of components `K` (user-defined in the paper).
    pub components: usize,
    /// Maximum EM iterations `ℓ`.
    pub max_iterations: usize,
    /// Stop when the mean log-likelihood improves by less than this.
    pub tolerance: f64,
    /// Lower bound on component standard deviations (avoids collapse onto a
    /// single sample).
    pub variance_floor: f64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            components: 3,
            max_iterations: 200,
            tolerance: 1e-7,
            variance_floor: 0.25,
        }
    }
}

/// A fitted 1-D Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    components: Vec<Component>,
    log_likelihood: f64,
    iterations: usize,
}

impl GaussianMixture {
    /// Fits a mixture to `samples` with the EM algorithm.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `config.components == 0`.
    pub fn fit(samples: &[f64], config: &GmmConfig) -> Self {
        assert!(!samples.is_empty(), "cannot fit a GMM to zero samples");
        assert!(config.components > 0, "need at least one component");
        let k = config.components.min(samples.len());

        // Quantile initialisation over the sorted samples.
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let overall_std = std_dev(&sorted).max(config.variance_floor);
        let mut components: Vec<Component> = (0..k)
            .map(|i| {
                let lo = i * sorted.len() / k;
                let hi = ((i + 1) * sorted.len() / k).max(lo + 1);
                let chunk = &sorted[lo..hi.min(sorted.len())];
                Component {
                    weight: 1.0 / k as f64,
                    mean: mean(chunk),
                    std_dev: std_dev(chunk)
                        .max(config.variance_floor)
                        .min(overall_std * 4.0),
                }
            })
            .collect();

        let n = samples.len();
        let mut responsibilities = vec![0.0f64; n * k];
        let mut previous_ll = f64::NEG_INFINITY;
        let mut iterations = 0usize;
        let mut log_likelihood = f64::NEG_INFINITY;

        for iteration in 0..config.max_iterations {
            iterations = iteration + 1;
            // E step.
            let mut ll = 0.0f64;
            for (i, &x) in samples.iter().enumerate() {
                let mut total = 0.0f64;
                for (j, c) in components.iter().enumerate() {
                    let p = c.weight * normal_pdf(x, c.mean, c.std_dev);
                    responsibilities[i * k + j] = p;
                    total += p;
                }
                let total = total.max(1e-300);
                for j in 0..k {
                    responsibilities[i * k + j] /= total;
                }
                ll += total.ln();
            }
            log_likelihood = ll;
            // M step.
            for (j, c) in components.iter_mut().enumerate() {
                let resp_sum: f64 = (0..n).map(|i| responsibilities[i * k + j]).sum();
                if resp_sum < 1e-12 {
                    // Dead component: re-seed it on the global statistics.
                    c.weight = 1e-6;
                    c.mean = mean(&sorted);
                    c.std_dev = overall_std;
                    continue;
                }
                c.weight = resp_sum / n as f64;
                c.mean = (0..n)
                    .map(|i| responsibilities[i * k + j] * samples[i])
                    .sum::<f64>()
                    / resp_sum;
                let variance = (0..n)
                    .map(|i| responsibilities[i * k + j] * (samples[i] - c.mean).powi(2))
                    .sum::<f64>()
                    / resp_sum;
                c.std_dev = variance.sqrt().max(config.variance_floor);
            }
            // Renormalise the weights (dead-component re-seeding can disturb
            // them slightly).
            let weight_sum: f64 = components.iter().map(|c| c.weight).sum();
            for c in &mut components {
                c.weight /= weight_sum;
            }
            if (log_likelihood - previous_ll).abs() < config.tolerance * n as f64 {
                break;
            }
            previous_ll = log_likelihood;
        }

        GaussianMixture {
            components,
            log_likelihood,
            iterations,
        }
    }

    /// The fitted components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Final log-likelihood of the training samples.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Number of EM iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Probability density function of the mixture (Equation 13).
    pub fn pdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * normal_pdf(x, c.mean, c.std_dev))
            .sum()
    }

    /// Cumulative distribution function of the mixture.
    pub fn cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * crate::special::normal_cdf(x, c.mean, c.std_dev))
            .sum()
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_mixture(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    2.0 + rng.gen::<f64>() * 1.0 // component around 2.5
                } else {
                    9.0 + rng.gen::<f64>() * 2.0 // component around 10
                }
            })
            .collect()
    }

    #[test]
    fn recovers_two_well_separated_components() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples = sample_mixture(&mut rng, 3000);
        let gmm = GaussianMixture::fit(
            &samples,
            &GmmConfig {
                components: 2,
                ..GmmConfig::default()
            },
        );
        let mut means: Vec<f64> = gmm.components().iter().map(|c| c.mean).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 2.5).abs() < 0.5, "low mean {means:?}");
        assert!((means[1] - 10.0).abs() < 0.5, "high mean {means:?}");
        let weights: f64 = gmm.components().iter().map(|c| c.weight).sum();
        assert!((weights - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sample_mixture(&mut rng, 500);
        let gmm = GaussianMixture::fit(&samples, &GmmConfig::default());
        let mut integral = 0.0;
        let mut x = -20.0;
        while x < 40.0 {
            integral += gmm.pdf(x) * 0.01;
            x += 0.01;
        }
        assert!((integral - 1.0).abs() < 1e-2, "integral {integral}");
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples = sample_mixture(&mut rng, 400);
        let gmm = GaussianMixture::fit(&samples, &GmmConfig::default());
        let mut previous = 0.0;
        for i in 0..100 {
            let x = -5.0 + i as f64 * 0.3;
            let c = gmm.cdf(x);
            assert!(c >= previous - 1e-12);
            assert!((0.0..=1.0 + 1e-9).contains(&c));
            previous = c;
        }
    }

    #[test]
    fn single_component_matches_sample_moments() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let gmm = GaussianMixture::fit(
            &samples,
            &GmmConfig {
                components: 1,
                ..GmmConfig::default()
            },
        );
        let c = gmm.components()[0];
        assert!((c.mean - 4.5).abs() < 1e-6);
        assert!((c.std_dev - 2.872).abs() < 0.01);
        assert!((c.weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn handles_constant_samples_via_variance_floor() {
        let samples = vec![5.0; 100];
        let gmm = GaussianMixture::fit(&samples, &GmmConfig::default());
        for c in gmm.components() {
            assert!(c.std_dev >= GmmConfig::default().variance_floor);
            assert!(c.mean.is_finite());
        }
        assert!(gmm.pdf(5.0) > gmm.pdf(20.0));
    }

    #[test]
    fn more_components_than_samples_is_clamped() {
        let samples = vec![1.0, 2.0, 3.0];
        let gmm = GaussianMixture::fit(
            &samples,
            &GmmConfig {
                components: 10,
                ..GmmConfig::default()
            },
        );
        assert!(gmm.components().len() <= 3);
        assert!(gmm.iterations() >= 1);
        assert!(gmm.log_likelihood().is_finite());
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        GaussianMixture::fit(&[], &GmmConfig::default());
    }
}
