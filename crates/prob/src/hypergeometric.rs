//! The hypergeometric probability mass function (Equation 32).
//!
//! `H(x; M, K, N) = C(K, x) · C(M − K, N − x) / C(M, N)` — the probability of
//! drawing exactly `x` marked items when drawing `N` items without
//! replacement from a population of `M` items of which `K` are marked. It
//! appears twice in the model: `Ω1` (how many of the `τ` operations are
//! vertex relabellings) and `Ω4` (how many relabelled vertices are also
//! covered by relabelled edges).

use crate::special::ln_binomial;

/// Evaluates `H(x; M, K, N)`. Returns `0.0` outside the support.
pub fn hypergeometric_pmf(x: i64, m: u64, k: u64, n: u64) -> f64 {
    if x < 0 || n > m {
        return 0.0;
    }
    let x = x as u64;
    if x > k || x > n || (n - x) > (m - k) {
        return 0.0;
    }
    let ln = ln_binomial(k as f64, x as f64) + ln_binomial((m - k) as f64, (n - x) as f64)
        - ln_binomial(m as f64, n as f64);
    ln.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::binomial;

    #[test]
    fn matches_direct_binomial_computation() {
        for (x, m, k, n) in [
            (2i64, 10u64, 4u64, 5u64),
            (0, 10, 4, 5),
            (4, 10, 4, 5),
            (1, 7, 3, 2),
        ] {
            let direct = binomial(k, x as u64) * binomial(m - k, n - x as u64) / binomial(m, n);
            assert!(
                (hypergeometric_pmf(x, m, k, n) - direct).abs() < 1e-12,
                "H({x};{m},{k},{n})"
            );
        }
    }

    #[test]
    fn sums_to_one_over_the_support() {
        for (m, k, n) in [(12u64, 5u64, 6u64), (30, 10, 7), (8, 8, 3), (9, 0, 4)] {
            let total: f64 = (0..=n as i64).map(|x| hypergeometric_pmf(x, m, k, n)).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "support sum for ({m},{k},{n}) = {total}"
            );
        }
    }

    #[test]
    fn zero_outside_support() {
        assert_eq!(hypergeometric_pmf(-1, 10, 4, 5), 0.0);
        assert_eq!(hypergeometric_pmf(5, 10, 4, 5), 0.0); // x > K
        assert_eq!(hypergeometric_pmf(0, 10, 8, 5), 0.0); // N − x > M − K
        assert_eq!(hypergeometric_pmf(2, 5, 3, 9), 0.0); // N > M
    }

    #[test]
    fn degenerate_cases() {
        // Drawing nothing.
        assert_eq!(hypergeometric_pmf(0, 10, 3, 0), 1.0);
        // Drawing everything.
        assert_eq!(hypergeometric_pmf(3, 3, 3, 3), 1.0);
        // No marked items at all.
        assert_eq!(hypergeometric_pmf(0, 6, 0, 4), 1.0);
    }

    #[test]
    fn mean_matches_n_k_over_m() {
        let (m, k, n) = (40u64, 15u64, 12u64);
        let mean: f64 = (0..=n as i64)
            .map(|x| x as f64 * hypergeometric_pmf(x, m, k, n))
            .sum();
        assert!((mean - n as f64 * k as f64 / m as f64).abs() < 1e-9);
    }
}
