//! The likelihood `Λ1(τ, ϕ) = Pr[GBD = ϕ | GED = τ]` (Equation 8) and its
//! τ-derivative (used by the Jeffreys prior).
//!
//! ```text
//! Λ1(τ, ϕ) = Σ_x Ω1(x, τ) Σ_m Ω2(m, x, τ) Σ_r Ω3(r, ϕ) Ω4(x, r, m)
//! ```
//!
//! with `x ∈ [0, τ]`, `m ∈ [0, min(2(τ − x), v)]` and `r` in the feasible
//! range of Lemma 4. The complexity analysis of Section VI-B shows the sum is
//! `O(τ³)` per (τ, ϕ) and that the partial sums for τ < τ̂ are sub-sums of the
//! τ̂ computation (Equation 22); [`Lambda1Table`] exploits exactly that by
//! computing, in one sweep, the whole `(τ, ϕ)` table needed by Algorithm 1.

use crate::model::BranchEditModel;

/// The ϕ-independent part of Equation (8), aggregated over `r`:
/// `W(r) = Σ_x Ω1(x, τ) Σ_m Ω2(m, x, τ) Ω4(x, r, m)`, so that
/// `Λ1(τ, ϕ) = Σ_r W(r) · Ω3(r, ϕ)`.
///
/// This is the computational form of the paper's reuse argument
/// (Equation 22): the inner `O(τ³)` work is shared by every `ϕ` and by every
/// `τ' < τ` inspected by Algorithm 1, so a whole likelihood table costs
/// `O(τ̂⁴)` instead of `O(τ̂⁶)`.
pub fn branch_touch_weights(model: &BranchEditModel, tau: u64) -> Vec<f64> {
    let v = model.v();
    let r_cap = (3 * tau).min(v) as usize;
    let mut weights = vec![0.0f64; r_cap + 1];
    for x in 0..=tau {
        let w1 = model.omega1(x, tau);
        if w1 == 0.0 {
            continue;
        }
        let m_max = (2 * (tau - x)).min(v);
        for m in 0..=m_max {
            let w2 = model.omega2(m, x, tau);
            if w2 == 0.0 {
                continue;
            }
            for r in model.r_range(x, m) {
                let w4 = model.omega4(x, r, m);
                if w4 != 0.0 && (r as usize) < weights.len() {
                    weights[r as usize] += w1 * w2 * w4;
                }
            }
        }
    }
    weights
}

/// τ-derivative counterpart of [`branch_touch_weights`]:
/// `W'(r) = Σ_x [Ω1' Σ_m Ω2 Ω4 + Ω1 Σ_m Ω2' Ω4]`.
pub fn branch_touch_weight_derivatives(model: &BranchEditModel, tau: u64) -> Vec<f64> {
    let v = model.v();
    let r_cap = (3 * tau).min(v) as usize;
    let mut weights = vec![0.0f64; r_cap + 1];
    for x in 0..=tau {
        let w1 = model.omega1(x, tau);
        let dw1 = model.omega1_dtau(x, tau);
        let m_max = (2 * (tau - x)).min(v);
        for m in 0..=m_max {
            let w2 = model.omega2(m, x, tau);
            let dw2 = model.omega2_dtau(m, x, tau);
            if w2 == 0.0 && dw2 == 0.0 {
                continue;
            }
            for r in model.r_range(x, m) {
                let w4 = model.omega4(x, r, m);
                if w4 != 0.0 && (r as usize) < weights.len() {
                    weights[r as usize] += (dw1 * w2 + w1 * dw2) * w4;
                }
            }
        }
    }
    weights
}

/// Contracts a weight vector over `r` with `Ω3(r, ϕ)`.
pub fn contract_with_omega3(model: &BranchEditModel, weights: &[f64], phi: u64) -> f64 {
    weights
        .iter()
        .enumerate()
        .filter(|(_, &w)| w != 0.0)
        .map(|(r, &w)| w * model.omega3(r as u64, phi))
        .sum()
}

/// Direct evaluation of `Λ1(τ, ϕ)`.
pub fn lambda1(model: &BranchEditModel, tau: u64, phi: u64) -> f64 {
    let v = model.v();
    let mut total = 0.0f64;
    for x in 0..=tau {
        let w1 = model.omega1(x, tau);
        if w1 == 0.0 {
            continue;
        }
        let m_max = (2 * (tau - x)).min(v);
        let mut inner = 0.0f64;
        for m in 0..=m_max {
            let w2 = model.omega2(m, x, tau);
            if w2 == 0.0 {
                continue;
            }
            let mut r_sum = 0.0f64;
            for r in model.r_range(x, m) {
                r_sum += model.omega3(r, phi) * model.omega4(x, r, m);
            }
            inner += w2 * r_sum;
        }
        total += w1 * inner;
    }
    total
}

/// `∂Λ1/∂τ` at integer `(τ, ϕ)` (Equation 35 without the `1/Λ1` factor):
/// `Σ_x [dΩ1/dτ · Σ_m Ω2 Σ_r Ω3Ω4 + Ω1 · Σ_m dΩ2/dτ Σ_r Ω3Ω4]`.
pub fn lambda1_derivative(model: &BranchEditModel, tau: u64, phi: u64) -> f64 {
    let v = model.v();
    let mut total = 0.0f64;
    for x in 0..=tau {
        let w1 = model.omega1(x, tau);
        let dw1 = model.omega1_dtau(x, tau);
        let m_max = (2 * (tau - x)).min(v);
        let mut inner = 0.0f64;
        let mut inner_derivative = 0.0f64;
        for m in 0..=m_max {
            let w2 = model.omega2(m, x, tau);
            let dw2 = model.omega2_dtau(m, x, tau);
            if w2 == 0.0 && dw2 == 0.0 {
                continue;
            }
            let mut r_sum = 0.0f64;
            for r in model.r_range(x, m) {
                r_sum += model.omega3(r, phi) * model.omega4(x, r, m);
            }
            inner += w2 * r_sum;
            inner_derivative += dw2 * r_sum;
        }
        total += dw1 * inner + w1 * inner_derivative;
    }
    total
}

/// Pre-computed table of `Λ1(τ, ϕ)` for `τ ∈ [0, τ̂]` and `ϕ ∈ [0, 2τ̂]`.
///
/// Algorithm 1 needs every `τ ≤ τ̂` for the observed `ϕ`; the online stage
/// therefore builds (or reuses) one table per distinct `|V'1|` and reads the
/// column for the observed GBD. Values of `ϕ` above `2τ` are impossible
/// (`GBD ≤ 2·GED`) and stored as zero.
#[derive(Debug, Clone)]
pub struct Lambda1Table {
    tau_max: u64,
    phi_max: u64,
    /// Row-major `(τ̂ + 1) × (ϕ_max + 1)` values.
    values: Vec<f64>,
}

impl Lambda1Table {
    /// Builds the table for thresholds up to `tau_max`, sharing the
    /// ϕ-independent inner sums across all `ϕ` (Equation 22 reuse).
    pub fn build(model: &BranchEditModel, tau_max: u64) -> Self {
        let phi_max = 2 * tau_max;
        let mut values = vec![0.0f64; ((tau_max + 1) * (phi_max + 1)) as usize];
        for tau in 0..=tau_max {
            let weights = branch_touch_weights(model, tau);
            for phi in 0..=(2 * tau).min(phi_max) {
                values[(tau * (phi_max + 1) + phi) as usize] =
                    contract_with_omega3(model, &weights, phi);
            }
        }
        Lambda1Table {
            tau_max,
            phi_max,
            values,
        }
    }

    /// Largest `τ` stored in the table.
    pub fn tau_max(&self) -> u64 {
        self.tau_max
    }

    /// Largest `ϕ` stored in the table.
    pub fn phi_max(&self) -> u64 {
        self.phi_max
    }

    /// Reads `Λ1(τ, ϕ)`; out-of-range arguments return 0.
    pub fn get(&self, tau: u64, phi: u64) -> f64 {
        if tau > self.tau_max || phi > self.phi_max {
            return 0.0;
        }
        self.values[(tau * (self.phi_max + 1) + phi) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::LabelAlphabets;

    fn model(v: usize, lv: usize, le: usize) -> BranchEditModel {
        BranchEditModel::new(v, LabelAlphabets::new(lv, le))
    }

    #[test]
    fn tau_zero_is_a_point_mass_at_phi_zero() {
        let m = model(6, 4, 3);
        assert!((lambda1(&m, 0, 0) - 1.0).abs() < 1e-9);
        assert_eq!(lambda1(&m, 0, 1), 0.0);
        assert_eq!(lambda1(&m, 0, 5), 0.0);
    }

    #[test]
    fn lambda1_vanishes_beyond_two_tau() {
        // One edit operation changes at most two branches, so Pr[GBD > 2τ] = 0.
        let m = model(8, 4, 3);
        for tau in 1..4u64 {
            for phi in (2 * tau + 1)..(2 * tau + 4) {
                assert!(
                    lambda1(&m, tau, phi).abs() < 1e-12,
                    "Λ1({tau},{phi}) should be 0"
                );
            }
        }
    }

    #[test]
    fn lambda1_is_a_distribution_over_phi() {
        let m = model(7, 4, 3);
        for tau in 0..5u64 {
            let total: f64 = (0..=2 * tau).map(|phi| lambda1(&m, tau, phi)).sum();
            assert!((total - 1.0).abs() < 1e-6, "Λ1(τ={tau}, ·) sums to {total}");
        }
    }

    #[test]
    fn larger_ged_shifts_mass_towards_larger_gbd() {
        let m = model(20, 8, 4);
        let mean = |tau: u64| -> f64 {
            (0..=2 * tau)
                .map(|phi| phi as f64 * lambda1(&m, tau, phi))
                .sum()
        };
        assert!(mean(1) < mean(3));
        assert!(mean(3) < mean(6));
    }

    #[test]
    fn rich_alphabets_concentrate_gbd_near_its_maximum() {
        // With many branch types, τ edits almost always produce a large GBD;
        // the distribution's mode should sit in the upper half of [0, 2τ].
        let m = model(30, 20, 10);
        let tau = 4u64;
        let mode = (0..=2 * tau)
            .max_by(|&a, &b| {
                lambda1(&m, tau, a)
                    .partial_cmp(&lambda1(&m, tau, b))
                    .unwrap()
            })
            .unwrap();
        assert!(mode >= tau, "mode {mode} should be at least τ={tau}");
    }

    #[test]
    fn table_matches_direct_evaluation() {
        let m = model(9, 5, 3);
        let table = Lambda1Table::build(&m, 4);
        for tau in 0..=4u64 {
            for phi in 0..=8u64 {
                assert!(
                    (table.get(tau, phi) - lambda1(&m, tau, phi)).abs() < 1e-12,
                    "table mismatch at ({tau},{phi})"
                );
            }
        }
        assert_eq!(table.get(9, 0), 0.0);
        assert_eq!(table.get(0, 99), 0.0);
        assert_eq!(table.tau_max(), 4);
        assert_eq!(table.phi_max(), 8);
    }

    #[test]
    fn derivative_is_finite_and_informative() {
        // The analytic derivative follows the paper's digamma closed forms
        // (Appendix C-B). The continuous extension is much steeper than the
        // discrete finite differences near the support boundary, so we only
        // assert structural properties: finiteness everywhere, zero outside
        // the support, and a non-degenerate response inside it.
        let m = model(10, 5, 3);
        let mut any_nonzero = false;
        for tau in 1..5u64 {
            for phi in 0..=(2 * tau + 2) {
                let d = lambda1_derivative(&m, tau, phi);
                assert!(d.is_finite(), "dΛ1/dτ not finite at ({tau},{phi})");
                if phi > 2 * tau {
                    assert_eq!(d, 0.0, "derivative must vanish outside the support");
                } else if d != 0.0 {
                    any_nonzero = true;
                }
            }
        }
        assert!(any_nonzero, "the derivative should not be identically zero");
    }

    #[test]
    fn derivative_sign_tracks_growth_at_the_support_boundary() {
        // Λ1(τ, 2τ) jumps from 0 (at τ−1, where 2τ is outside the support)
        // to a positive value, so the derivative there must be positive.
        let m = model(12, 6, 3);
        for tau in 2..5u64 {
            let phi = 2 * tau;
            let d = lambda1_derivative(&m, tau, phi);
            assert!(
                d > 0.0,
                "expected positive derivative at ({tau},{phi}), got {d}"
            );
        }
    }

    #[test]
    fn weight_vector_form_matches_direct_evaluation() {
        let m = model(11, 5, 3);
        for tau in 0..=5u64 {
            let weights = branch_touch_weights(&m, tau);
            let derivatives = branch_touch_weight_derivatives(&m, tau);
            for phi in 0..=(2 * tau) {
                let via_weights = contract_with_omega3(&m, &weights, phi);
                assert!(
                    (via_weights - lambda1(&m, tau, phi)).abs() < 1e-12,
                    "Λ1 mismatch at ({tau},{phi})"
                );
                let via_derivatives = contract_with_omega3(&m, &derivatives, phi);
                assert!(
                    (via_derivatives - lambda1_derivative(&m, tau, phi)).abs() < 1e-9,
                    "∂Λ1/∂τ mismatch at ({tau},{phi})"
                );
            }
        }
    }

    #[test]
    fn lambda1_handles_the_smallest_graphs() {
        let m = model(1, 2, 2);
        // A single-vertex extended graph has no edge slots; all τ operations
        // are vertex relabellings of that one vertex.
        let total: f64 = (0..=2u64).map(|phi| lambda1(&m, 1, phi)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
