//! The posterior `Pr[GED ≤ τ̂ | GBD = ϕ]` (Equations 3–4).
//!
//! Combining the three quantities computed elsewhere in this crate,
//!
//! ```text
//! Pr[GED ≤ τ̂ | GBD = ϕ] = Σ_{τ=0}^{τ̂} Λ1(τ, ϕ) · Λ3(τ) / Λ2(ϕ),
//! ```
//!
//! which is exactly Step 3 of Algorithm 1. The function is deliberately tiny:
//! all the heavy lifting happened when `Λ1`, `Λ2` and `Λ3` were prepared, so
//! the online cost per database graph is `O(τ̂)` table lookups on top of the
//! `O(τ̂³)` table construction shared across graphs of equal extended size.

use crate::lambda1::Lambda1Table;

/// Evaluates the posterior probability `Pr[GED ≤ τ̂ | GBD = ϕ]`.
///
/// * `lambda1` — the likelihood table for the pair's extended size,
/// * `ged_prior_column` — `Λ3(τ)` for `τ = 0..=τ̂` (same extended size),
/// * `gbd_prior_probability` — `Λ2(ϕ)` for the observed GBD.
///
/// The result is clamped to `[0, 1]`: the model's factors are estimates, so
/// rounding can push the raw sum slightly above one.
pub fn posterior_ged_at_most(
    tau_hat: u64,
    phi: u64,
    lambda1: &Lambda1Table,
    ged_prior_column: &[f64],
    gbd_prior_probability: f64,
) -> f64 {
    assert!(
        gbd_prior_probability > 0.0,
        "Λ2 must be positive (it is floored)"
    );
    let mut total = 0.0f64;
    for tau in 0..=tau_hat {
        let prior = ged_prior_column.get(tau as usize).copied().unwrap_or(0.0);
        if prior == 0.0 {
            continue;
        }
        total += lambda1.get(tau, phi) * prior / gbd_prior_probability;
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jeffreys::jeffreys_column;
    use crate::model::BranchEditModel;
    use gbd_graph::LabelAlphabets;

    fn setup(v: usize, tau_max: u64) -> (Lambda1Table, Vec<f64>) {
        let model = BranchEditModel::new(v, LabelAlphabets::new(6, 3));
        (
            Lambda1Table::build(&model, tau_max),
            jeffreys_column(&model, tau_max),
        )
    }

    #[test]
    fn posterior_is_a_probability() {
        let (table, prior) = setup(12, 6);
        for phi in 0..=12u64 {
            let p = posterior_ged_at_most(6, phi, &table, &prior, 0.05);
            assert!((0.0..=1.0).contains(&p), "posterior {p} for ϕ={phi}");
        }
    }

    #[test]
    fn posterior_is_monotone_in_tau_hat() {
        let (table, prior) = setup(10, 8);
        for phi in 0..=8u64 {
            let mut previous = 0.0;
            for tau_hat in 0..=8u64 {
                let p = posterior_ged_at_most(tau_hat, phi, &table, &prior, 0.1);
                assert!(
                    p + 1e-12 >= previous,
                    "not monotone at τ̂={tau_hat}, ϕ={phi}"
                );
                previous = p;
            }
        }
    }

    #[test]
    fn small_gbd_yields_higher_posterior_than_large_gbd() {
        let (table, prior) = setup(15, 5);
        let near = posterior_ged_at_most(5, 1, &table, &prior, 0.08);
        let far = posterior_ged_at_most(5, 10, &table, &prior, 0.08);
        assert!(
            near > far,
            "a GBD of 1 ({near}) should make small GED more plausible than a GBD of 10 ({far})"
        );
    }

    #[test]
    fn zero_gbd_posterior_scales_with_how_rare_a_zero_gbd_is() {
        // A GBD of 0 between two database graphs is rare in practice, which is
        // what makes the posterior large for near-identical graphs: with the
        // same likelihood and prior, a smaller Λ2(0) gives a larger Φ.
        let (table, prior) = setup(15, 5);
        let common = posterior_ged_at_most(5, 0, &table, &prior, 0.2);
        let rare = posterior_ged_at_most(5, 0, &table, &prior, 0.002);
        assert!(rare > common);
        assert!(
            rare > 0.5,
            "rare-GBD posterior should be decisive, got {rare}"
        );
        assert!(common > 0.0);
    }

    #[test]
    fn rare_gbd_prior_scales_the_posterior_up() {
        let (table, prior) = setup(12, 4);
        let common = posterior_ged_at_most(4, 3, &table, &prior, 0.5);
        let rare = posterior_ged_at_most(4, 3, &table, &prior, 0.05);
        assert!(rare >= common);
    }

    #[test]
    #[should_panic(expected = "Λ2 must be positive")]
    fn zero_gbd_prior_is_rejected() {
        let (table, prior) = setup(8, 3);
        posterior_ged_at_most(3, 1, &table, &prior, 0.0);
    }
}
