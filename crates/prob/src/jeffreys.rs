//! The Jeffreys prior over GED values, `Λ3 = Pr[GED = τ]` (Section V-C).
//!
//! Sampling graph pairs to estimate the GED prior would require exact GED
//! computations (NP-hard), so the paper falls back to the non-informative
//! Jeffreys prior
//!
//! ```text
//! Pr[GED = τ] ∝ √( Σ_{ϕ=0}^{2τ} Λ1(τ, ϕ) · Z(τ, ϕ)² ),
//! Z(τ, ϕ)     = ∂ log Pr[GBD | GED] / ∂ GED |_{GED=τ, GBD=ϕ}
//! ```
//!
//! (Equations 15–17). The value depends only on `τ` and `|V'1|`, so it is
//! pre-computed into a `(τ, |V'1|)` matrix offline — here one normalised
//! column per distinct `|V'1|`, cached behind a mutex so that the online
//! stage can fill in missing columns lazily.

use std::collections::HashMap;
use std::sync::Mutex;

use gbd_graph::LabelAlphabets;

use crate::model::BranchEditModel;

/// Unnormalised Jeffreys weight for one `(τ, |V'1|)` cell:
/// `√(Σ_ϕ Λ1 · Z²)` with `Z = (∂Λ1/∂τ) / Λ1`, i.e. `√(Σ_ϕ (∂Λ1/∂τ)² / Λ1)`.
pub fn jeffreys_unnormalized(model: &BranchEditModel, tau: u64) -> f64 {
    // Share the ϕ-independent inner sums across all ϕ (Equation 22 reuse).
    let weights = crate::lambda1::branch_touch_weights(model, tau);
    let weight_derivatives = crate::lambda1::branch_touch_weight_derivatives(model, tau);
    let mut total = 0.0f64;
    for phi in 0..=(2 * tau) {
        let value = crate::lambda1::contract_with_omega3(model, &weights, phi);
        if value <= 1e-300 {
            continue;
        }
        let derivative = crate::lambda1::contract_with_omega3(model, &weight_derivatives, phi);
        total += derivative * derivative / value;
    }
    total.sqrt()
}

/// Normalised prior column `Pr[GED = τ]` for `τ ∈ [0, tau_max]` at a fixed
/// `|V'1|`. Normalising per column keeps the posterior of Algorithm 1
/// comparable across database graphs of different sizes; the paper's global
/// constant `C = 1/(k1·k2)` would only rescale every `Φ` identically.
pub fn jeffreys_column(model: &BranchEditModel, tau_max: u64) -> Vec<f64> {
    let raw: Vec<f64> = (0..=tau_max)
        .map(|tau| jeffreys_unnormalized(model, tau))
        .collect();
    let total: f64 = raw.iter().sum();
    if total <= 0.0 {
        // Degenerate fall-back: uniform prior.
        return vec![1.0 / (tau_max + 1) as f64; (tau_max + 1) as usize];
    }
    raw.into_iter().map(|x| x / total).collect()
}

/// The pre-computed GED prior: one normalised column per `|V'1|`.
#[derive(Debug)]
pub struct GedPrior {
    alphabets: LabelAlphabets,
    tau_max: u64,
    columns: Mutex<HashMap<usize, Vec<f64>>>,
}

impl GedPrior {
    /// Creates an empty prior for the given alphabets and maximal threshold;
    /// columns are computed on first use (offline pre-computation simply
    /// calls [`GedPrior::prepare`] for every expected `|V'1|`).
    pub fn new(alphabets: LabelAlphabets, tau_max: u64) -> Self {
        GedPrior {
            alphabets,
            tau_max,
            columns: Mutex::new(HashMap::new()),
        }
    }

    /// The maximal `τ` stored per column.
    pub fn tau_max(&self) -> u64 {
        self.tau_max
    }

    /// Pre-computes the columns for the given extended sizes (offline stage).
    pub fn prepare(&self, extended_sizes: impl IntoIterator<Item = usize>) {
        for v in extended_sizes {
            self.column(v);
        }
    }

    /// Number of columns currently materialised.
    pub fn prepared_columns(&self) -> usize {
        self.columns.lock().expect("ged prior mutex poisoned").len()
    }

    /// `Pr[GED = τ]` for extended size `v = |V'1|`.
    pub fn probability(&self, v: usize, tau: u64) -> f64 {
        if tau > self.tau_max {
            return 0.0;
        }
        self.column(v)[tau as usize]
    }

    /// Returns (computing and caching if necessary) the whole column for `v`.
    pub fn column(&self, v: usize) -> Vec<f64> {
        {
            let cache = self.columns.lock().expect("ged prior mutex poisoned");
            if let Some(column) = cache.get(&v) {
                return column.clone();
            }
        }
        let model = BranchEditModel::new(v, self.alphabets);
        let column = jeffreys_column(&model, self.tau_max);
        self.columns
            .lock()
            .expect("ged prior mutex poisoned")
            .insert(v, column.clone());
        column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabets() -> LabelAlphabets {
        LabelAlphabets::new(6, 3)
    }

    #[test]
    fn columns_are_normalised_distributions() {
        let model = BranchEditModel::new(12, alphabets());
        let column = jeffreys_column(&model, 8);
        assert_eq!(column.len(), 9);
        let total: f64 = column.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(column.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn unnormalized_weights_are_finite_and_nonnegative() {
        let model = BranchEditModel::new(10, alphabets());
        for tau in 0..=6u64 {
            let w = jeffreys_unnormalized(&model, tau);
            assert!(w.is_finite() && w >= 0.0, "weight {w} at τ={tau}");
        }
    }

    #[test]
    fn prior_depends_only_on_tau_and_extended_size() {
        // Same v and alphabets → identical columns (the property the paper
        // uses to pre-compute a (τ, |V'1|) matrix).
        let prior = GedPrior::new(alphabets(), 6);
        let a = prior.column(15);
        let b = prior.column(15);
        assert_eq!(a, b);
        let c = prior.column(30);
        assert_ne!(a, c);
        assert_eq!(prior.prepared_columns(), 2);
    }

    #[test]
    fn probability_is_zero_beyond_tau_max() {
        let prior = GedPrior::new(alphabets(), 5);
        assert_eq!(prior.probability(10, 6), 0.0);
        assert!(prior.probability(10, 5) > 0.0);
    }

    #[test]
    fn prepare_materialises_columns() {
        let prior = GedPrior::new(alphabets(), 4);
        prior.prepare([8usize, 12, 16]);
        assert_eq!(prior.prepared_columns(), 3);
        // Reading a prepared column does not add a new one.
        let _ = prior.probability(12, 2);
        assert_eq!(prior.prepared_columns(), 3);
        // Reading an unprepared column computes it lazily.
        let _ = prior.probability(20, 2);
        assert_eq!(prior.prepared_columns(), 4);
    }

    #[test]
    fn larger_graphs_do_not_produce_nan_columns() {
        // Exercises the log-space Ω3 path (large D, large v).
        let prior = GedPrior::new(LabelAlphabets::new(12, 4), 6);
        let column = prior.column(500);
        assert!(column.iter().all(|p| p.is_finite()));
        let total: f64 = column.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }
}
