//! Model parameters and the conditional factors `Ω1..Ω4`.
//!
//! The model reasons about the extended graph `G'1` of the query: a complete
//! graph with `v = |V'1|` vertices and `C(v, 2)` edge slots, over label
//! alphabets of sizes `|LV|` and `|LE|`. The four factors are (Appendix C):
//!
//! * `Ω1(x, τ) = H(x; v + C(v,2), v, τ)` — probability that a uniformly random
//!   relabelling sequence of length `τ` contains exactly `x` vertex
//!   relabellings (Lemma 1),
//! * `Ω2(m, x, τ)` — probability that the `τ − x` relabelled edges cover
//!   exactly `m` vertices (inclusion–exclusion, Lemma 2),
//! * `Ω3(r, ϕ) = C(r, r−ϕ)·(D−1)^ϕ / D^r` — probability of observing branch
//!   distance `ϕ` given `r` touched branches, where `D` is the number of
//!   possible branch types (Lemma 3),
//! * `Ω4(x, r, m) = H(x + m − r; v, m, x)` — probability that exactly
//!   `x + m − r` relabelled vertices are also covered by relabelled edges
//!   (Lemma 4).
//!
//! The τ-derivatives of `Ω1` and `Ω2` (needed by the Jeffreys prior, Appendix
//! C-B) use the digamma function as the continuous extension of the harmonic
//! numbers appearing in the paper's `F1..F4`.

use gbd_graph::LabelAlphabets;

use crate::hypergeometric::hypergeometric_pmf;
use crate::special::{binomial, digamma, ln_binomial};

/// Parameters of the branch-edit model for one (query, database-graph) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchEditModel {
    /// `v = |V'1|`: number of vertices of the extended graphs of the pair,
    /// i.e. `max(|V_Q|, |V_G|)`.
    pub extended_vertices: usize,
    /// Label alphabet sizes `|LV|`, `|LE|`.
    pub alphabets: LabelAlphabets,
}

impl BranchEditModel {
    /// Creates a model for extended graphs with `extended_vertices` vertices.
    pub fn new(extended_vertices: usize, alphabets: LabelAlphabets) -> Self {
        BranchEditModel {
            extended_vertices: extended_vertices.max(1),
            alphabets,
        }
    }

    /// `v = |V'1|`.
    pub fn v(&self) -> u64 {
        self.extended_vertices as u64
    }

    /// Number of edge slots of the extended graph, `C(v, 2)`.
    pub fn edge_slots(&self) -> u64 {
        let v = self.v();
        v * (v - 1) / 2
    }

    /// Natural logarithm of the number of possible branch types
    /// `D = |LV| · C(v + |LE| − 1, |LE|)` (Equation 33). Computed in log space
    /// because `D^r` overflows `f64` for the largest graphs of the evaluation.
    pub fn ln_branch_types(&self) -> f64 {
        let lv = self.alphabets.vertex_labels as f64;
        let le = self.alphabets.edge_labels as f64;
        let v = self.extended_vertices as f64;
        lv.ln() + ln_binomial(v + le - 1.0, le)
    }

    /// `Ω1(x, τ)` — Lemma 1 / Equation (28).
    pub fn omega1(&self, x: u64, tau: u64) -> f64 {
        let v = self.v();
        hypergeometric_pmf(x as i64, v + self.edge_slots(), v, tau)
    }

    /// `∂Ω1/∂τ` at integer `(x, τ)` via digamma (Equation 36).
    pub fn omega1_dtau(&self, x: u64, tau: u64) -> f64 {
        let value = self.omega1(x, tau);
        if value == 0.0 {
            return 0.0;
        }
        let v = self.v() as f64;
        let e = self.edge_slots() as f64;
        let tau = tau as f64;
        let x = x as f64;
        // d/dτ ln C(E, τ−x) − d/dτ ln C(v+E, τ)
        let d = -digamma(tau - x + 1.0) + digamma(e - (tau - x) + 1.0) + digamma(tau + 1.0)
            - digamma(v + e - tau + 1.0);
        value * d
    }

    /// `Ω2(m, x, τ)` — Lemma 2 / Equation (29): probability that `τ − x`
    /// uniformly chosen distinct edge slots of the complete extended graph
    /// cover exactly `m` vertices.
    pub fn omega2(&self, m: u64, x: u64, tau: u64) -> f64 {
        let v = self.v();
        if x > tau || m > v {
            return 0.0;
        }
        let y = tau - x; // number of relabelled edges
        let slots = self.edge_slots();
        if y > slots {
            return 0.0;
        }
        if y == 0 {
            return if m == 0 { 1.0 } else { 0.0 };
        }
        // Exactly-m coverage needs at least enough vertices to host y edges
        // and at most 2y endpoints.
        if m > 2 * y || binomial(m, 2) < y as f64 {
            return 0.0;
        }
        let denominator = binomial(slots, y);
        let choose_vertices = binomial(v, m);
        let mut inner = 0.0f64;
        for t in 0..=m {
            let ways = binomial(t * t.saturating_sub(1) / 2, y);
            if ways == 0.0 {
                continue;
            }
            let sign = if (m - t).is_multiple_of(2) { 1.0 } else { -1.0 };
            inner += sign * binomial(m, t) * ways;
        }
        // Inclusion–exclusion counts; clamp tiny negative round-off.
        (choose_vertices * inner / denominator).max(0.0)
    }

    /// `∂Ω2/∂τ` at integer `(m, x, τ)` via digamma (Equation 37).
    pub fn omega2_dtau(&self, m: u64, x: u64, tau: u64) -> f64 {
        let v = self.v();
        if x > tau || m > v {
            return 0.0;
        }
        let y = tau - x;
        let slots = self.edge_slots();
        if y == 0 || y > slots || m > 2 * y || binomial(m, 2) < y as f64 {
            return 0.0;
        }
        let yf = y as f64;
        let denominator = binomial(slots, y);
        let choose_vertices = binomial(v, m);
        // d/dτ of ln C(slots, y)⁻¹ term.
        let d_prefactor = -(-digamma(yf + 1.0) + digamma(slots as f64 - yf + 1.0));
        let mut inner = 0.0f64;
        let mut inner_derivative = 0.0f64;
        for t in 0..=m {
            let pairs = t * t.saturating_sub(1) / 2;
            let ways = binomial(pairs, y);
            if ways == 0.0 {
                continue;
            }
            let sign = if (m - t).is_multiple_of(2) { 1.0 } else { -1.0 };
            let term = sign * binomial(m, t) * ways;
            inner += term;
            // d/dτ ln C(pairs, y) = −ψ(y+1) + ψ(pairs − y + 1).
            let d_term = -digamma(yf + 1.0) + digamma(pairs as f64 - yf + 1.0);
            inner_derivative += term * d_term;
        }
        choose_vertices * (inner_derivative + inner * d_prefactor) / denominator
    }

    /// `Ω3(r, ϕ)` — Lemma 3 / Equation (30), evaluated in log space.
    pub fn omega3(&self, r: u64, phi: u64) -> f64 {
        if phi > r {
            return 0.0;
        }
        let ln_d = self.ln_branch_types();
        // D ≥ 1; ln(D−1) needs D > 1. With a single possible branch type every
        // relabelling is invisible, so GBD must be zero.
        let d = ln_d.exp();
        if d <= 1.0 + 1e-12 {
            return if phi == 0 { 1.0 } else { 0.0 };
        }
        let ln_dm1 = (d - 1.0).ln();
        let ln_choose = ln_binomial(r as f64, (r - phi) as f64);
        (ln_choose + phi as f64 * ln_dm1 - r as f64 * ln_d).exp()
    }

    /// `Ω4(x, r, m)` — Lemma 4 / Equation (31).
    pub fn omega4(&self, x: u64, r: u64, m: u64) -> f64 {
        let overlap = x as i64 + m as i64 - r as i64;
        hypergeometric_pmf(overlap, self.v(), m, x)
    }

    /// Valid range of `r` given `x` and `m`: `r = x + m − t` with the overlap
    /// `t` between `max(0, x + m − v)` and `min(x, m)`.
    pub fn r_range(&self, x: u64, m: u64) -> std::ops::RangeInclusive<u64> {
        let v = self.v();
        let t_min = (x + m).saturating_sub(v);
        let t_max = x.min(m);
        // r decreases as t increases.
        (x + m - t_max)..=(x + m - t_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::LabelAlphabets;

    fn model(v: usize, lv: usize, le: usize) -> BranchEditModel {
        BranchEditModel::new(v, LabelAlphabets::new(lv, le))
    }

    #[test]
    fn omega1_is_a_distribution_over_x() {
        let m = model(5, 3, 2);
        for tau in 0..6u64 {
            let total: f64 = (0..=tau).map(|x| m.omega1(x, tau)).sum();
            assert!((total - 1.0).abs() < 1e-9, "Ω1 sums to {total} for τ={tau}");
        }
    }

    #[test]
    fn omega1_at_tau_zero_is_point_mass() {
        let m = model(4, 3, 2);
        assert_eq!(m.omega1(0, 0), 1.0);
        assert_eq!(m.omega1(1, 0), 0.0);
    }

    #[test]
    fn omega2_is_a_distribution_over_m() {
        let m = model(6, 3, 2);
        for tau in 0..5u64 {
            for x in 0..=tau {
                let total: f64 = (0..=m.v()).map(|mm| m.omega2(mm, x, tau)).sum();
                assert!(
                    (total - 1.0).abs() < 1e-8,
                    "Ω2 sums to {total} for τ={tau}, x={x}"
                );
            }
        }
    }

    #[test]
    fn omega2_matches_direct_enumeration() {
        // v = 4 vertices, C(4,2) = 6 edge slots; choose y = 2 edges uniformly
        // and count how many vertices they cover. Enumerate all C(6,2) = 15
        // pairs directly and compare against the closed form.
        let m = model(4, 3, 2);
        let edges: Vec<(usize, usize)> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i, j)))
            .collect();
        let mut counts = [0usize; 5];
        for a in 0..edges.len() {
            for b in (a + 1)..edges.len() {
                let mut vs = vec![edges[a].0, edges[a].1, edges[b].0, edges[b].1];
                vs.sort_unstable();
                vs.dedup();
                counts[vs.len()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for covered in 0..=4u64 {
            let expected = counts[covered as usize] as f64 / total as f64;
            let got = m.omega2(covered, 0, 2);
            assert!(
                (got - expected).abs() < 1e-9,
                "Ω2({covered}, 0, 2) = {got}, enumeration gives {expected}"
            );
        }
    }

    #[test]
    fn omega2_zero_edges_covers_zero_vertices() {
        let m = model(5, 3, 2);
        assert_eq!(m.omega2(0, 2, 2), 1.0);
        assert_eq!(m.omega2(1, 2, 2), 0.0);
    }

    #[test]
    fn omega3_is_a_distribution_over_phi() {
        let m = model(5, 3, 2);
        for r in 0..6u64 {
            let total: f64 = (0..=r).map(|phi| m.omega3(r, phi)).sum();
            assert!((total - 1.0).abs() < 1e-9, "Ω3 sums to {total} for r={r}");
        }
    }

    #[test]
    fn omega3_prefers_large_phi_when_many_branch_types_exist() {
        // With a rich label alphabet, touching r branches almost surely
        // changes all of them: Pr[GBD = r | R = r] should dominate.
        let m = model(30, 20, 10);
        let r = 5;
        let at_r = m.omega3(r, r);
        let below: f64 = (0..r).map(|phi| m.omega3(r, phi)).sum();
        assert!(at_r > below, "Ω3({r},{r}) = {at_r} should dominate {below}");
    }

    #[test]
    fn omega3_degenerate_single_branch_type() {
        let m = BranchEditModel::new(1, LabelAlphabets::new(1, 1));
        // Only one possible branch type: the distance must be zero.
        assert_eq!(m.omega3(3, 0), 1.0);
        assert_eq!(m.omega3(3, 2), 0.0);
    }

    #[test]
    fn omega4_is_a_distribution_over_r() {
        let m = model(6, 3, 2);
        for x in 0..4u64 {
            for mm in 0..5u64 {
                let total: f64 = m.r_range(x, mm).map(|r| m.omega4(x, r, mm)).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "Ω4 sums to {total} for x={x}, m={mm}"
                );
            }
        }
    }

    #[test]
    fn omega1_derivative_matches_finite_differences() {
        let m = model(8, 4, 3);
        for tau in 2..6u64 {
            for x in 0..=tau.min(3) {
                let analytic = m.omega1_dtau(x, tau);
                let numeric = (m.omega1(x, tau + 1) - m.omega1(x, tau - 1)) / 2.0;
                // The discrete finite difference is only an approximation of
                // the continuous derivative; they must agree in sign and
                // rough magnitude.
                assert!(
                    (analytic - numeric).abs() < 0.12 + 0.5 * numeric.abs(),
                    "dΩ1/dτ mismatch at x={x}, τ={tau}: analytic {analytic}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn omega2_derivative_is_finite_and_reasonable() {
        let m = model(8, 4, 3);
        for tau in 2..6u64 {
            for x in 0..tau {
                for mm in 0..=(2 * (tau - x)).min(8) {
                    let d = m.omega2_dtau(mm, x, tau);
                    assert!(d.is_finite(), "dΩ2/dτ not finite at m={mm}, x={x}, τ={tau}");
                }
            }
        }
    }

    #[test]
    fn r_range_respects_bounds() {
        let m = model(5, 3, 2);
        assert_eq!(m.r_range(2, 3), 3..=5);
        assert_eq!(m.r_range(0, 0), 0..=0);
        // x + m exceeds v: overlap is forced.
        assert_eq!(m.r_range(4, 4), 4..=5);
    }

    #[test]
    fn ln_branch_types_grows_with_alphabets_and_size() {
        let small = model(5, 2, 2).ln_branch_types();
        let bigger_alphabet = model(5, 10, 2).ln_branch_types();
        let bigger_graph = model(50, 2, 2).ln_branch_types();
        assert!(bigger_alphabet > small);
        assert!(bigger_graph > small);
    }
}
