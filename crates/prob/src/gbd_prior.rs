//! The GBD prior `Λ2 = Pr[GBD = ϕ]` (Section V-B).
//!
//! Offline, GBDs of sampled database graph pairs are collected, a Gaussian
//! mixture is fitted to them, and the discrete prior is recovered with the
//! continuity correction of Equation (14):
//!
//! ```text
//! Pr[GBD = ϕ] = ∫_{ϕ−0.5}^{ϕ+0.5} Σ_i π_i N(φ; μ_i, σ_i) dφ
//! ```
//!
//! The integral is evaluated exactly through the mixture CDF. Probabilities
//! are floored by a small epsilon so that Algorithm 1 never divides by zero
//! when a query produces a GBD that was never seen among the samples.

use crate::gmm::{GaussianMixture, GmmConfig};

/// Minimum probability returned for any `ϕ` in range; prevents division by
/// zero in the posterior of Algorithm 1.
pub const PROBABILITY_FLOOR: f64 = 1e-12;

/// The pre-computed prior distribution of GBD values.
#[derive(Debug, Clone)]
pub struct GbdPrior {
    mixture: GaussianMixture,
    /// `table[ϕ]` = Pr[GBD = ϕ] for ϕ ∈ [0, phi_max].
    table: Vec<f64>,
}

impl GbdPrior {
    /// Fits the prior from sampled GBD values.
    ///
    /// `phi_max` is the largest GBD value that will ever be queried — the
    /// paper uses the maximal number of vertices among the graphs involved.
    ///
    /// # Panics
    /// Panics if `samples` is empty (delegated to the GMM fit).
    pub fn fit(samples: &[f64], phi_max: usize, config: &GmmConfig) -> Self {
        let mixture = GaussianMixture::fit(samples, config);
        let table = (0..=phi_max)
            .map(|phi| {
                let phi = phi as f64;
                (mixture.cdf(phi + 0.5) - mixture.cdf(phi - 0.5)).max(PROBABILITY_FLOOR)
            })
            .collect();
        GbdPrior { mixture, table }
    }

    /// `Pr[GBD = ϕ]` — table lookup with the floor applied; values of `ϕ`
    /// beyond the table fall back to the continuity-correction integral.
    pub fn probability(&self, phi: usize) -> f64 {
        match self.table.get(phi) {
            Some(&p) => p,
            None => {
                let phi = phi as f64;
                (self.mixture.cdf(phi + 0.5) - self.mixture.cdf(phi - 0.5)).max(PROBABILITY_FLOOR)
            }
        }
    }

    /// Largest `ϕ` stored in the table.
    pub fn phi_max(&self) -> usize {
        self.table.len().saturating_sub(1)
    }

    /// The underlying fitted mixture (inspected by the Figure-5 experiment).
    pub fn mixture(&self) -> &GaussianMixture {
        &self.mixture
    }

    /// The whole table `Pr[GBD = 0..=phi_max]`.
    pub fn table(&self) -> &[f64] {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bimodal_samples(n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(5);
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.4) {
                    (3.0 + rng.gen::<f64>() * 2.0).round()
                } else {
                    (10.0 + rng.gen::<f64>() * 4.0).round()
                }
            })
            .collect()
    }

    #[test]
    fn table_is_close_to_the_empirical_histogram() {
        let samples = bimodal_samples(5000);
        let prior = GbdPrior::fit(&samples, 20, &GmmConfig::default());
        // Empirical frequencies.
        let mut histogram = [0usize; 21];
        for &s in &samples {
            histogram[s as usize] += 1;
        }
        for (phi, &count) in histogram.iter().enumerate() {
            let empirical = count as f64 / samples.len() as f64;
            let fitted = prior.probability(phi);
            assert!(
                (empirical - fitted).abs() < 0.08,
                "ϕ={phi}: empirical {empirical:.3} vs fitted {fitted:.3}"
            );
        }
    }

    #[test]
    fn probabilities_are_floored_and_positive() {
        let samples = bimodal_samples(500);
        let prior = GbdPrior::fit(&samples, 30, &GmmConfig::default());
        for phi in 0..=30usize {
            assert!(prior.probability(phi) >= PROBABILITY_FLOOR);
        }
        // Far outside the observed range the probability is tiny but still
        // positive.
        assert!(prior.probability(200) >= PROBABILITY_FLOOR);
        assert!(prior.probability(200) < 1e-3);
    }

    #[test]
    fn table_roughly_sums_to_one() {
        let samples = bimodal_samples(2000);
        let prior = GbdPrior::fit(&samples, 40, &GmmConfig::default());
        let total: f64 = prior.table().iter().sum();
        assert!((total - 1.0).abs() < 0.05, "total {total}");
    }

    #[test]
    fn phi_max_reflects_the_requested_range() {
        let samples = bimodal_samples(200);
        let prior = GbdPrior::fit(&samples, 15, &GmmConfig::default());
        assert_eq!(prior.phi_max(), 15);
        assert_eq!(prior.table().len(), 16);
        assert!(prior.mixture().components().len() <= 3);
    }
}
