//! Special functions used by the probabilistic model.
//!
//! Everything is implemented from scratch on `f64`: the log-gamma function
//! (Lanczos approximation), the digamma function `ψ` (recurrence plus
//! asymptotic series — the continuous generalisation of the harmonic numbers
//! appearing in the paper's closed forms, Appendix C), harmonic numbers,
//! binomial coefficients evaluated stably in both linear and log space, and
//! the error function used by the continuity-correction integral.

/// Euler–Mascheroni constant `γ`.
pub const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;

/// Natural logarithm of the gamma function, Lanczos approximation (g = 7,
/// n = 9), accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFICIENTS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFICIENTS[0];
    for (i, &c) in COEFFICIENTS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The digamma function `ψ(x) = d/dx ln Γ(x)` for positive arguments.
///
/// Uses the recurrence `ψ(x) = ψ(x + 1) − 1/x` to push the argument above 6,
/// then the asymptotic expansion.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma implemented for positive arguments only");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

/// The `n`-th harmonic number `H(n) = Σ_{k=1}^{n} 1/k` (`H(0) = 0`).
pub fn harmonic(n: usize) -> f64 {
    if n < 64 {
        (1..=n).map(|k| 1.0 / k as f64).sum()
    } else {
        // H(n) = ψ(n + 1) + γ.
        digamma(n as f64 + 1.0) + EULER_MASCHERONI
    }
}

/// `ln C(n, k)` evaluated through log-gamma. Returns `f64::NEG_INFINITY` when
/// the coefficient is zero (`k > n` or negative arguments).
pub fn ln_binomial(n: f64, k: f64) -> f64 {
    if k < 0.0 || n < 0.0 || k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0.0 || k == n {
        return 0.0;
    }
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// Binomial coefficient `C(n, k)` as `f64`, evaluated with a multiplicative
/// loop for small `k` (exact to machine precision) and through
/// [`ln_binomial`] otherwise. Returns `0.0` outside the support.
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 1.0;
    }
    if k <= 64 {
        let mut acc = 1.0f64;
        for i in 0..k {
            acc = acc * (n - i) as f64 / (i + 1) as f64;
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    } else {
        ln_binomial(n as f64, k as f64).exp()
    }
}

/// The error function `erf(x)`, Abramowitz & Stegun 7.1.26, absolute error
/// below `1.5e-7` — ample for the continuity-correction integral.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    0.5 * (1.0 + erf((x - mean) / (std_dev * std::f64::consts::SQRT_2)))
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    let z = (x - mean) / std_dev;
    (-0.5 * z * z).exp() / (std_dev * (2.0 * std::f64::consts::PI).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..15 {
            let expected: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert!(
                (ln_gamma(n as f64) - expected).abs() < 1e-9,
                "lnΓ({n}) mismatch"
            );
        }
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-9);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ.
        assert!((digamma(1.0) + EULER_MASCHERONI).abs() < 1e-9);
        // ψ(0.5) = −γ − 2 ln 2.
        assert!((digamma(0.5) + EULER_MASCHERONI + 2.0 * 2.0_f64.ln()).abs() < 1e-8);
        // ψ(n + 1) = H(n) − γ.
        for n in 1usize..30 {
            assert!(
                (digamma(n as f64 + 1.0) - (harmonic(n) - EULER_MASCHERONI)).abs() < 1e-8,
                "ψ({n}+1) vs harmonic mismatch"
            );
        }
    }

    #[test]
    fn digamma_is_the_derivative_of_ln_gamma() {
        for &x in &[0.7, 1.3, 2.5, 7.0, 42.0] {
            let h = 1e-5;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!(
                (digamma(x) - numeric).abs() < 1e-5,
                "digamma({x}) != d/dx lnΓ"
            );
        }
    }

    #[test]
    fn harmonic_numbers() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // Large-n branch agrees with direct summation.
        let direct: f64 = (1..=200u64).map(|k| 1.0 / k as f64).sum();
        assert!((harmonic(200) - direct).abs() < 1e-9);
    }

    #[test]
    fn binomial_small_and_large() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(4, 7), 0.0);
        assert!((binomial(50, 25) - 126_410_606_437_752.0).abs() / 126_410_606_437_752.0 < 1e-10);
        // Pascal identity on larger values.
        let lhs = binomial(200, 80);
        let rhs = binomial(199, 79) + binomial(199, 80);
        assert!((lhs - rhs).abs() / lhs < 1e-9);
    }

    #[test]
    fn ln_binomial_consistent_with_binomial() {
        for n in 1u64..40 {
            for k in 0..=n {
                let a = ln_binomial(n as f64, k as f64);
                let b = binomial(n, k).ln();
                assert!((a - b).abs() < 1e-8, "ln C({n},{k})");
            }
        }
        assert_eq!(ln_binomial(3.0, 5.0), f64::NEG_INFINITY);
    }

    #[test]
    fn erf_and_normal_cdf_known_values() {
        // The A&S 7.1.26 approximation has ~1.5e-7 absolute error.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96, 0.0, 1.0) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        let mut sum = 0.0;
        let step = 0.01;
        let mut x = -8.0;
        while x < 8.0 {
            sum += normal_pdf(x, 0.0, 1.0) * step;
            x += step;
        }
        assert!((sum - 1.0).abs() < 1e-3);
    }
}
