//! # gbd-prob — the probabilistic model connecting GBD and GED
//!
//! Section V of the paper models the formation of the Graph Branch Distance
//! (GBD) as the outcome of a random graph-editing process of known length
//! (the GED), through the Bayesian network
//!
//! ```text
//! GED → S → (X, Y) → Z → R → GBD
//! ```
//!
//! with closed-form conditional factors `Ω1..Ω4` (Appendices E–H), the
//! likelihood `Λ1 = Pr[GBD = ϕ | GED = τ]` (Equation 8), the GMM-based GBD
//! prior `Λ2` (Section V-B), and the Jeffreys GED prior `Λ3` (Section V-C).
//! The posterior `Pr[GED ≤ τ̂ | GBD = ϕ]` (Equation 4) drives the GBDA search
//! in `gbda-core`.
//!
//! Module map:
//!
//! * [`special`] — `ln Γ`, digamma, harmonic numbers, `erf`, stable binomials,
//! * [`hypergeometric`] — the hypergeometric pmf `H(x; M, K, N)` (Equation 32),
//! * [`model`] — the model parameters and the factors `Ω1..Ω4` with their
//!   τ-derivatives,
//! * [`mod@lambda1`] — `Λ1(τ, ϕ)` and `∂Λ1/∂τ` with the prefix-reuse optimisation
//!   of Equation (22),
//! * [`gmm`] — 1-D Gaussian mixture fitting by EM (Section V-B),
//! * [`gbd_prior`] — the prior `Pr[GBD = ϕ]` via continuity correction
//!   (Equation 14),
//! * [`jeffreys`] — the Jeffreys prior `Pr[GED = τ]` (Equation 16),
//! * [`posterior`] — the posterior of Equation (4) used by Algorithm 1.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gbd_prior;
pub mod gmm;
pub mod hypergeometric;
pub mod jeffreys;
pub mod lambda1;
pub mod model;
pub mod posterior;
pub mod special;

pub use gbd_prior::GbdPrior;
pub use gmm::{GaussianMixture, GmmConfig};
pub use hypergeometric::hypergeometric_pmf;
pub use jeffreys::GedPrior;
pub use lambda1::{lambda1, lambda1_derivative, Lambda1Table};
pub use model::BranchEditModel;
pub use posterior::posterior_ged_at_most;
