//! Extended graphs (Definition 5).
//!
//! The extended graph `G^{k}` of `G` is obtained by inserting `k` isolated
//! *virtual* vertices (label `ε`) and then inserting a *virtual* edge (label
//! `ε`) between every pair of non-adjacent vertices. For a pair `(G1, G2)`
//! with `|V1| ≤ |V2|` the paper sets `G'1 = G1^{|V2|−|V1|}` and `G'2 = G2^{0}`
//! so both extended graphs are complete graphs over the same number of
//! vertices, and every minimal edit sequence between them consists of
//! relabelling operations only.
//!
//! The paper stresses (Section IV) that the extension is purely conceptual:
//! Theorems 1 and 2 show GED and GBD are unchanged, so no extended graph is
//! ever materialised in the search path. We still materialise them here for
//! testing those theorems and for the model's bookkeeping (`|V'1|`,
//! `|E'1| = C(|V'1|, 2)`).

use crate::graph::Graph;
use crate::label::Label;

/// Returns the extension factor `k = max(|V1|, |V2|) − |V1|` that the model
/// applies to the *smaller* graph of a pair (the larger one gets factor 0).
pub fn extension_factor(own_vertices: usize, other_vertices: usize) -> usize {
    other_vertices.saturating_sub(own_vertices)
}

/// Builds the extended graph `G^{k}` (Definition 5).
///
/// Virtual vertices and virtual edges carry [`Label::EPSILON`]. The result is
/// a complete graph over `|V| + k` vertices.
///
/// This constructor bypasses the "no virtual labels" guard of [`Graph`]
/// deliberately — extended graphs are the one place where `ε` is legal.
pub fn extend_graph(graph: &Graph, k: usize) -> ExtendedGraph {
    let n = graph.vertex_count() + k;
    let mut vertex_labels = Vec::with_capacity(n);
    for v in graph.vertices() {
        vertex_labels.push(graph.vertex_label(v).expect("vertex from same graph"));
    }
    vertex_labels.extend(std::iter::repeat_n(Label::EPSILON, k));

    let mut edge_labels = vec![vec![Label::EPSILON; n]; n];
    for (key, label) in graph.edges() {
        edge_labels[key.u.index()][key.v.index()] = label;
        edge_labels[key.v.index()][key.u.index()] = label;
    }
    ExtendedGraph {
        vertex_labels,
        edge_labels,
    }
}

/// A materialised extended graph: a complete graph where missing vertices and
/// edges carry the virtual label `ε`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGraph {
    vertex_labels: Vec<Label>,
    /// `edge_labels[i][j]` is the label of edge `{i, j}` (`ε` when virtual);
    /// the diagonal is unused and stays `ε`.
    edge_labels: Vec<Vec<Label>>,
}

impl ExtendedGraph {
    /// Number of vertices `|V'|` (original plus virtual).
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edge *slots* `C(|V'|, 2)` — the extended graph is complete.
    pub fn edge_slots(&self) -> usize {
        let n = self.vertex_count();
        n * (n - 1) / 2
    }

    /// Label of vertex `i` (may be `ε`).
    pub fn vertex_label(&self, i: usize) -> Label {
        self.vertex_labels[i]
    }

    /// Label of edge `{i, j}` (may be `ε`).
    pub fn edge_label(&self, i: usize, j: usize) -> Label {
        self.edge_labels[i][j]
    }

    /// Branch of vertex `i` in the extended graph, **ignoring virtual edges**.
    ///
    /// Branches rooted at virtual vertices consist of the `ε` root label and
    /// no concrete incident edges; they are never isomorphic to a concrete
    /// branch, which is exactly the argument of Theorem 2.
    pub fn concrete_branch(&self, i: usize) -> (Label, Vec<Label>) {
        let mut labels: Vec<Label> = (0..self.vertex_count())
            .filter(|&j| j != i)
            .map(|j| self.edge_labels[i][j])
            .filter(|l| !l.is_virtual())
            .collect();
        labels.sort_unstable();
        (self.vertex_labels[i], labels)
    }

    /// Cost of transforming this extended graph into `other` under a given
    /// vertex permutation, counting only relabelling operations (each
    /// vertex-label mismatch and each edge-label mismatch costs 1).
    ///
    /// Minimising this over all permutations gives the extended-graph GED,
    /// which by Theorem 1 equals the original GED. Only used on tiny graphs
    /// (tests), where brute force over permutations is feasible.
    pub fn relabel_cost_under_permutation(&self, other: &ExtendedGraph, perm: &[usize]) -> usize {
        assert_eq!(self.vertex_count(), other.vertex_count());
        assert_eq!(perm.len(), self.vertex_count());
        let n = self.vertex_count();
        let mut cost = 0;
        for (label, &p) in self.vertex_labels.iter().zip(perm) {
            if *label != other.vertex_labels[p] {
                cost += 1;
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.edge_labels[i][j] != other.edge_labels[perm[i]][perm[j]] {
                    cost += 1;
                }
            }
        }
        cost
    }

    /// Exact extended-graph GED by brute force over all vertex permutations.
    ///
    /// Exponential — intended for graphs with at most ~8 vertices in tests.
    pub fn brute_force_ged(&self, other: &ExtendedGraph) -> usize {
        assert_eq!(
            self.vertex_count(),
            other.vertex_count(),
            "extended graphs of a pair always have equal vertex counts"
        );
        let n = self.vertex_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = usize::MAX;
        permute(&mut perm, 0, &mut |p| {
            let c = self.relabel_cost_under_permutation(other, p);
            if c < best {
                best = c;
            }
        });
        best
    }
}

fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        visit(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, visit);
        perm.swap(k, i);
    }
}

/// Computes GBD between two extended graphs using only concrete branches,
/// mirroring Definition 4 applied to `G'1`, `G'2`.
pub fn extended_gbd(a: &ExtendedGraph, b: &ExtendedGraph) -> usize {
    let mut ba: Vec<(Label, Vec<Label>)> = (0..a.vertex_count())
        .map(|i| a.concrete_branch(i))
        .collect();
    let mut bb: Vec<(Label, Vec<Label>)> = (0..b.vertex_count())
        .map(|i| b.concrete_branch(i))
        .collect();
    ba.sort();
    bb.sort();
    let mut i = 0;
    let mut j = 0;
    let mut common = 0;
    while i < ba.len() && j < bb.len() {
        match ba[i].cmp(&bb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    ba.len().max(bb.len()) - common
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::graph_branch_distance;
    use crate::paper_examples::{figure1_g1, figure1_g2, figure4_g1, figure4_g2};

    #[test]
    fn example_3_extension_of_figure_1() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let k = extension_factor(g1.vertex_count(), g2.vertex_count());
        assert_eq!(k, 1);
        let e1 = extend_graph(&g1, k);
        let e2 = extend_graph(&g2, 0);
        assert_eq!(e1.vertex_count(), 4);
        assert_eq!(e2.vertex_count(), 4);
        assert_eq!(e1.edge_slots(), 6);
        // v4 is virtual, all its incident edges are virtual.
        assert!(e1.vertex_label(3).is_virtual());
        assert!(e1.edge_label(3, 0).is_virtual());
        // Original edges keep their labels.
        assert!(!e1.edge_label(0, 1).is_virtual());
    }

    #[test]
    fn theorem_2_gbd_is_preserved_by_extension() {
        let pairs = [
            (figure1_g1().0, figure1_g2().0),
            (figure4_g1().0, figure4_g2().0),
            (figure1_g1().0, figure1_g1().0),
        ];
        for (g1, g2) in pairs {
            let (small, large) = if g1.vertex_count() <= g2.vertex_count() {
                (&g1, &g2)
            } else {
                (&g2, &g1)
            };
            let k = extension_factor(small.vertex_count(), large.vertex_count());
            let e1 = extend_graph(small, k);
            let e2 = extend_graph(large, 0);
            assert_eq!(
                extended_gbd(&e1, &e2),
                graph_branch_distance(small, large),
                "GBD must be identical on extended graphs (Theorem 2)"
            );
        }
    }

    #[test]
    fn theorem_1_extended_ged_matches_example_1() {
        // GED(G1, G2) = 3 in Example 1; the extended graphs must agree.
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let e1 = extend_graph(&g1, 1);
        let e2 = extend_graph(&g2, 0);
        assert_eq!(e1.brute_force_ged(&e2), 3);
    }

    #[test]
    fn extended_ged_of_figure_4_is_two() {
        let (g1, _) = figure4_g1();
        let (g2, _) = figure4_g2();
        let e1 = extend_graph(&g1, 0);
        let e2 = extend_graph(&g2, 0);
        assert_eq!(e1.brute_force_ged(&e2), 2);
    }

    #[test]
    fn extension_factor_is_zero_for_the_larger_graph() {
        assert_eq!(extension_factor(5, 3), 0);
        assert_eq!(extension_factor(3, 5), 2);
        assert_eq!(extension_factor(4, 4), 0);
    }

    #[test]
    fn identity_permutation_cost_counts_mismatches() {
        let (g1, _) = figure4_g1();
        let (g2, _) = figure4_g2();
        let e1 = extend_graph(&g1, 0);
        let e2 = extend_graph(&g2, 0);
        let id: Vec<usize> = (0..3).collect();
        // Identity mapping mismatches both concrete edge labels.
        assert_eq!(e1.relabel_cost_under_permutation(&e2, &id), 2);
    }
}
