//! Graph edit operations and edit paths (Definition 1).
//!
//! The six operation types are: add isolated vertex (AV), delete isolated
//! vertex (DV), relabel vertex (RV), add edge (AE), delete edge (DE) and
//! relabel edge (RE). The Graph Edit Distance between two graphs is the
//! minimal length of a sequence of these operations transforming one graph
//! into the other; computing it exactly lives in the `gbd-ged` crate, while
//! this module provides the operation vocabulary, application semantics and
//! edit-path bookkeeping shared by generators and tests.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::graph::{Graph, VertexId};
use crate::label::Label;

/// A single graph edit operation (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EditOp {
    /// AV — add one isolated vertex with a non-virtual label.
    AddVertex {
        /// Label of the new vertex.
        label: Label,
    },
    /// DV — delete one isolated vertex.
    DeleteVertex {
        /// Vertex to delete (must be isolated).
        vertex: VertexId,
    },
    /// RV — relabel one vertex.
    RelabelVertex {
        /// Vertex to relabel.
        vertex: VertexId,
        /// New label.
        label: Label,
    },
    /// AE — add one edge with a non-virtual label.
    AddEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Label of the new edge.
        label: Label,
    },
    /// DE — delete one edge.
    DeleteEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// RE — relabel one edge.
    RelabelEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// New label.
        label: Label,
    },
}

impl EditOp {
    /// Applies the operation to `graph` in place.
    pub fn apply(&self, graph: &mut Graph) -> Result<()> {
        match *self {
            EditOp::AddVertex { label } => {
                graph.add_vertex(label);
                Ok(())
            }
            EditOp::DeleteVertex { vertex } => graph.delete_isolated_vertex(vertex).map(|_| ()),
            EditOp::RelabelVertex { vertex, label } => graph.relabel_vertex(vertex, label),
            EditOp::AddEdge { u, v, label } => graph.add_edge(u, v, label).map(|_| ()),
            EditOp::DeleteEdge { u, v } => graph.delete_edge(u, v),
            EditOp::RelabelEdge { u, v, label } => graph.relabel_edge(u, v, label),
        }
    }

    /// Returns `true` for the two relabelling operation types (RV, RE).
    ///
    /// After graphs are extended (Definition 5), every operation of a minimal
    /// edit sequence is equivalent to a relabelling, which is what the
    /// probabilistic model exploits.
    pub fn is_relabel(&self) -> bool {
        matches!(
            self,
            EditOp::RelabelVertex { .. } | EditOp::RelabelEdge { .. }
        )
    }

    /// Returns `true` for vertex operations (AV, DV, RV).
    pub fn is_vertex_op(&self) -> bool {
        matches!(
            self,
            EditOp::AddVertex { .. } | EditOp::DeleteVertex { .. } | EditOp::RelabelVertex { .. }
        )
    }
}

/// A sequence of graph edit operations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EditPath {
    ops: Vec<EditOp>,
}

impl EditPath {
    /// Creates an empty edit path.
    pub fn new() -> Self {
        EditPath::default()
    }

    /// Creates an edit path from operations.
    pub fn from_ops(ops: Vec<EditOp>) -> Self {
        EditPath { ops }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Length of the sequence, i.e. its edit cost under unit costs.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the path contains no operation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Applies all operations to a copy of `graph`, returning the edited
    /// graph.
    pub fn apply_to(&self, graph: &Graph) -> Result<Graph> {
        let mut g = graph.clone();
        for op in &self.ops {
            op.apply(&mut g)?;
        }
        Ok(g)
    }

    /// Number of vertex-relabelling operations (the random variable `X` of
    /// the probabilistic model).
    pub fn relabel_vertex_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, EditOp::RelabelVertex { .. }))
            .count()
    }

    /// Number of edge-relabelling operations (the random variable `Y`).
    pub fn relabel_edge_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, EditOp::RelabelEdge { .. }))
            .count()
    }

    /// Number of distinct vertices covered by relabelled edges (the random
    /// variable `Z` of the model).
    pub fn vertices_covered_by_relabelled_edges(&self) -> usize {
        let mut covered: Vec<VertexId> = Vec::new();
        for op in &self.ops {
            if let EditOp::RelabelEdge { u, v, .. } = op {
                covered.push(*u);
                covered.push(*v);
            }
        }
        covered.sort_unstable();
        covered.dedup();
        covered.len()
    }

    /// Number of distinct vertices either relabelled or covered by relabelled
    /// edges (the random variable `R` of the model).
    pub fn vertices_touched_by_relabels(&self) -> usize {
        let mut touched: Vec<VertexId> = Vec::new();
        for op in &self.ops {
            match op {
                EditOp::RelabelEdge { u, v, .. } => {
                    touched.push(*u);
                    touched.push(*v);
                }
                EditOp::RelabelVertex { vertex, .. } => touched.push(*vertex),
                _ => {}
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched.len()
    }
}

impl FromIterator<EditOp> for EditPath {
    fn from_iter<T: IntoIterator<Item = EditOp>>(iter: T) -> Self {
        EditPath {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::graph_branch_distance;
    use crate::paper_examples::{
        example_vocabulary, figure1_g1, figure1_g2, figure4_g1, figure4_g2,
    };

    /// Example 1: transforming G1 into G2 with three operations — delete edge
    /// (v1, v3), add vertex labelled A, add edge (v3, v4) labelled x.
    #[test]
    fn example_1_edit_sequence_transforms_g1_into_g2() {
        let (g1, voc) = figure1_g1();
        let (g2, _) = figure1_g2();
        let path = EditPath::from_ops(vec![
            EditOp::DeleteEdge {
                u: VertexId::new(0),
                v: VertexId::new(2),
            },
            EditOp::AddVertex {
                label: voc.get("A").unwrap(),
            },
            EditOp::AddEdge {
                u: VertexId::new(2),
                v: VertexId::new(3),
                label: voc.get("x").unwrap(),
            },
        ]);
        assert_eq!(path.len(), 3);
        let edited = path.apply_to(&g1).unwrap();
        // The edited graph must be branch-identical to G2 (it is in fact
        // isomorphic; branch equality is the cheap certificate we use here).
        assert_eq!(graph_branch_distance(&edited, &g2), 0);
        assert_eq!(edited.vertex_count(), g2.vertex_count());
        assert_eq!(edited.edge_count(), g2.edge_count());
    }

    /// Example 4: two relabelling sequences of length 2 both transform the
    /// Figure 4 graphs into each other, and the model counts X, Y, Z, R as in
    /// the paper.
    #[test]
    fn example_4_random_variable_counts() {
        let (g1, voc) = figure4_g1();
        let (g2, _) = figure4_g2();
        // seq2 = {op2, op1}: relabel (v1,v3) to x, relabel (v1,v2) to y.
        let seq2 = EditPath::from_ops(vec![
            EditOp::RelabelEdge {
                u: VertexId::new(0),
                v: VertexId::new(2),
                label: voc.get("x").unwrap(),
            },
            EditOp::RelabelEdge {
                u: VertexId::new(0),
                v: VertexId::new(1),
                label: voc.get("y").unwrap(),
            },
        ]);
        let edited = seq2.apply_to(&g1).unwrap();
        assert_eq!(graph_branch_distance(&edited, &g2), 0);
        assert_eq!(seq2.relabel_vertex_count(), 0); // X = 0
        assert_eq!(seq2.relabel_edge_count(), 2); // Y = 2
        assert_eq!(seq2.vertices_covered_by_relabelled_edges(), 3); // Z = 3
        assert_eq!(seq2.vertices_touched_by_relabels(), 3); // R = 3
        assert_eq!(graph_branch_distance(&g1, &g2), 2); // GBD = 2

        // seq3 = {op3, op4}: relabel v2 to C, relabel v3 to B.
        let seq3 = EditPath::from_ops(vec![
            EditOp::RelabelVertex {
                vertex: VertexId::new(1),
                label: voc.get("C").unwrap(),
            },
            EditOp::RelabelVertex {
                vertex: VertexId::new(2),
                label: voc.get("B").unwrap(),
            },
        ]);
        assert_eq!(seq3.relabel_vertex_count(), 2); // X = 2
        assert_eq!(seq3.relabel_edge_count(), 0); // Y = 0
        assert_eq!(seq3.vertices_covered_by_relabelled_edges(), 0); // Z = 0
        assert_eq!(seq3.vertices_touched_by_relabels(), 2); // R = 2
    }

    #[test]
    fn apply_reports_errors_from_invalid_operations() {
        let (g1, _) = figure1_g1();
        let voc = example_vocabulary();
        let bad = EditPath::from_ops(vec![EditOp::AddEdge {
            u: VertexId::new(0),
            v: VertexId::new(1),
            label: voc.get("x").unwrap(),
        }]);
        // Edge (0, 1) already exists in G1.
        assert!(bad.apply_to(&g1).is_err());
        // Deleting a non-isolated vertex fails.
        let bad2 = EditPath::from_ops(vec![EditOp::DeleteVertex {
            vertex: VertexId::new(0),
        }]);
        assert!(bad2.apply_to(&g1).is_err());
    }

    #[test]
    fn op_classification_helpers() {
        let rv = EditOp::RelabelVertex {
            vertex: VertexId::new(0),
            label: Label::new(1),
        };
        let re = EditOp::RelabelEdge {
            u: VertexId::new(0),
            v: VertexId::new(1),
            label: Label::new(1),
        };
        let av = EditOp::AddVertex {
            label: Label::new(1),
        };
        let de = EditOp::DeleteEdge {
            u: VertexId::new(0),
            v: VertexId::new(1),
        };
        assert!(rv.is_relabel() && re.is_relabel());
        assert!(!av.is_relabel() && !de.is_relabel());
        assert!(rv.is_vertex_op() && av.is_vertex_op());
        assert!(!re.is_vertex_op() && !de.is_vertex_op());
    }

    #[test]
    fn edit_path_collects_from_iterator() {
        let ops = [
            EditOp::AddVertex {
                label: Label::new(0),
            },
            EditOp::AddVertex {
                label: Label::new(1),
            },
        ];
        let path: EditPath = ops.iter().copied().collect();
        assert_eq!(path.len(), 2);
        assert!(!path.is_empty());
        assert_eq!(path.ops()[1], ops[1]);
    }

    #[test]
    fn empty_path_is_identity() {
        let (g1, _) = figure1_g1();
        let path = EditPath::new();
        assert!(path.is_empty());
        let out = path.apply_to(&g1).unwrap();
        assert_eq!(graph_branch_distance(&g1, &out), 0);
    }
}
