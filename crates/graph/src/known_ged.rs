//! Graph families with *known* pairwise edit distances (Appendix I).
//!
//! The paper evaluates effectiveness on large graphs where exact GED is
//! intractable by generating graphs whose pairwise GED is known *by
//! construction*: start from a template graph, pick a *modification center*
//! `v_c` whose neighbours have pairwise-different signatures, and derive each
//! family member by modifying a subset of the edges adjacent to `v_c`. The
//! edit distance between two members is then the size of the symmetric
//! difference of their modified-edge subsets.
//!
//! We strengthen the paper's signature condition into something directly
//! enforceable (and verified against exact A\* GED in the test-suites of
//! `gbd-ged` and the integration tests): every neighbour of the modification
//! center receives a globally unique vertex label and every center-adjacent
//! edge receives a globally unique edge label, so no automorphism can remap
//! the modified edges more cheaply.

use std::collections::BTreeSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{GraphError, Result};
use crate::generate::GeneratorConfig;
use crate::graph::{Graph, VertexId};
use crate::label::Label;

/// Label-id range reserved for the unique labels of center neighbours.
pub const CENTER_VERTEX_LABEL_BASE: u32 = 2_000_000;
/// Label-id range reserved for the unique labels of center-adjacent edges.
pub const CENTER_EDGE_LABEL_BASE: u32 = 3_000_000;
/// The shared "perturbation" edge label used by [`ModificationMode::RelabelEdges`].
pub const PERTURBATION_EDGE_LABEL: u32 = 4_000_000;

/// How family members are derived from the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModificationMode {
    /// Delete the selected center-adjacent edges (as drawn in Appendix I).
    /// `GED(g_i, g_j) = |S_i Δ S_j|` where the symmetric difference consists
    /// of edge insertions/deletions.
    DeleteEdges,
    /// Relabel the selected center-adjacent edges to a shared perturbation
    /// label. All members keep identical topology; only labels differ, and
    /// `GED(g_i, g_j) = |S_i Δ S_j|` relabelling operations.
    RelabelEdges,
}

/// Configuration of the known-GED family generator.
#[derive(Debug, Clone)]
pub struct KnownGedConfig {
    /// Template graph generator.
    pub base: GeneratorConfig,
    /// Required degree of the modification center; this bounds the largest
    /// achievable intra-family GED.
    pub center_degree: usize,
    /// Number of derived members.
    pub family_size: usize,
    /// Maximum number of modified edges per member (`≤ center_degree`).
    pub max_edits: usize,
    /// Modification mode.
    pub mode: ModificationMode,
}

impl KnownGedConfig {
    /// Convenience constructor with [`ModificationMode::DeleteEdges`].
    pub fn new(
        base: GeneratorConfig,
        center_degree: usize,
        family_size: usize,
        max_edits: usize,
    ) -> Self {
        KnownGedConfig {
            base,
            center_degree,
            family_size,
            max_edits: max_edits.min(center_degree),
            mode: ModificationMode::DeleteEdges,
        }
    }

    /// Overrides the modification mode.
    pub fn with_mode(mut self, mode: ModificationMode) -> Self {
        self.mode = mode;
        self
    }
}

/// One derived family member: the graph plus the indices (into the family's
/// center-edge list) of the edges that were modified.
#[derive(Debug, Clone)]
pub struct FamilyMember {
    graph: Graph,
    modified: BTreeSet<usize>,
}

impl FamilyMember {
    /// The derived graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Indices of the modified center-adjacent edges.
    pub fn modified_edges(&self) -> &BTreeSet<usize> {
        &self.modified
    }
}

/// A family of graphs with known pairwise GEDs.
#[derive(Debug, Clone)]
pub struct KnownGedFamily {
    template: Graph,
    center: VertexId,
    center_edges: Vec<(VertexId, Label)>,
    members: Vec<FamilyMember>,
    mode: ModificationMode,
}

impl KnownGedFamily {
    /// Generates a family according to `cfg`.
    pub fn generate<R: Rng + ?Sized>(cfg: &KnownGedConfig, rng: &mut R) -> Result<Self> {
        if cfg.base.vertices < cfg.center_degree + 1 {
            return Err(GraphError::Generation(format!(
                "template needs at least {} vertices for a center of degree {}",
                cfg.center_degree + 1,
                cfg.center_degree
            )));
        }
        let mut template = cfg.base.generate(rng)?;
        let center = Self::ensure_center(&mut template, cfg.center_degree, rng)?;
        Self::uniquify_center_neighbourhood(&mut template, center)?;
        let center_edges: Vec<(VertexId, Label)> = template.neighbors(center)?.to_vec();

        let mut members = Vec::with_capacity(cfg.family_size);
        for m in 0..cfg.family_size {
            let edit_count = if m == 0 {
                0 // the first member is the unmodified template
            } else {
                rng.gen_range(0..=cfg.max_edits.min(center_edges.len()))
            };
            let mut indices: Vec<usize> = (0..center_edges.len()).collect();
            indices.shuffle(rng);
            let modified: BTreeSet<usize> = indices.into_iter().take(edit_count).collect();
            let graph = Self::derive(&template, center, &center_edges, &modified, cfg.mode)?;
            members.push(FamilyMember { graph, modified });
        }
        Ok(KnownGedFamily {
            template,
            center,
            center_edges,
            members,
            mode: cfg.mode,
        })
    }

    /// Picks (or builds) a modification center of at least `degree` by adding
    /// edges from the highest-degree vertex to non-adjacent vertices.
    fn ensure_center<R: Rng + ?Sized>(
        g: &mut Graph,
        degree: usize,
        rng: &mut R,
    ) -> Result<VertexId> {
        let center = g
            .vertices()
            .max_by_key(|&v| g.degree(v).unwrap_or(0))
            .ok_or_else(|| GraphError::Generation("empty template".into()))?;
        let mut current = g.degree(center)?;
        let mut candidates: Vec<VertexId> = g
            .vertices()
            .filter(|&v| v != center && !g.has_edge(center, v))
            .collect();
        candidates.shuffle(rng);
        for v in candidates {
            if current >= degree {
                break;
            }
            let label = Label::new(CENTER_EDGE_LABEL_BASE); // will be uniquified later
            g.add_edge(center, v, label)?;
            current += 1;
        }
        if current < degree {
            return Err(GraphError::Generation(format!(
                "cannot reach center degree {degree} with only {} vertices",
                g.vertex_count()
            )));
        }
        Ok(center)
    }

    /// Gives every neighbour of `center` a globally unique vertex label and
    /// every center-adjacent edge a globally unique edge label, making the
    /// neighbour signatures pairwise different as Appendix I requires.
    fn uniquify_center_neighbourhood(g: &mut Graph, center: VertexId) -> Result<()> {
        let neighbours: Vec<VertexId> = g.neighbors(center)?.iter().map(|&(v, _)| v).collect();
        for (k, &v) in neighbours.iter().enumerate() {
            g.relabel_vertex(v, Label::new(CENTER_VERTEX_LABEL_BASE + k as u32))?;
            g.relabel_edge(center, v, Label::new(CENTER_EDGE_LABEL_BASE + k as u32))?;
        }
        Ok(())
    }

    fn derive(
        template: &Graph,
        center: VertexId,
        center_edges: &[(VertexId, Label)],
        modified: &BTreeSet<usize>,
        mode: ModificationMode,
    ) -> Result<Graph> {
        let mut g = template.clone();
        for &idx in modified {
            let (v, _) = center_edges[idx];
            match mode {
                ModificationMode::DeleteEdges => g.delete_edge(center, v)?,
                ModificationMode::RelabelEdges => {
                    g.relabel_edge(center, v, Label::new(PERTURBATION_EDGE_LABEL))?
                }
            }
        }
        Ok(g)
    }

    /// The unmodified template graph.
    pub fn template(&self) -> &Graph {
        &self.template
    }

    /// The modification center.
    pub fn center(&self) -> VertexId {
        self.center
    }

    /// The modification mode used to derive members.
    pub fn mode(&self) -> ModificationMode {
        self.mode
    }

    /// All members.
    pub fn members(&self) -> &[FamilyMember] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the family has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The `i`-th member graph.
    pub fn member_graph(&self, i: usize) -> &Graph {
        &self.members[i].graph
    }

    /// The known GED between members `i` and `j`:
    /// `|S_i Δ S_j|` modified-edge symmetric difference.
    pub fn known_ged(&self, i: usize, j: usize) -> usize {
        self.members[i]
            .modified
            .symmetric_difference(&self.members[j].modified)
            .count()
    }

    /// Maximum GED achievable inside this family (number of center edges).
    pub fn max_possible_ged(&self) -> usize {
        self.center_edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::graph_branch_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config(mode: ModificationMode) -> KnownGedConfig {
        KnownGedConfig::new(GeneratorConfig::new(8, 2.2), 4, 10, 4).with_mode(mode)
    }

    #[test]
    fn family_members_have_expected_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let fam = KnownGedFamily::generate(&small_config(ModificationMode::DeleteEdges), &mut rng)
            .unwrap();
        assert_eq!(fam.len(), 10);
        assert!(!fam.is_empty());
        assert!(fam.max_possible_ged() >= 4);
        // Member 0 is the template itself.
        assert_eq!(fam.known_ged(0, 0), 0);
        assert_eq!(fam.members()[0].modified_edges().len(), 0);
    }

    #[test]
    fn known_ged_is_a_metric_on_subsets() {
        let mut rng = StdRng::seed_from_u64(2);
        let fam = KnownGedFamily::generate(&small_config(ModificationMode::RelabelEdges), &mut rng)
            .unwrap();
        for i in 0..fam.len() {
            assert_eq!(fam.known_ged(i, i), 0);
            for j in 0..fam.len() {
                assert_eq!(fam.known_ged(i, j), fam.known_ged(j, i));
                for k in 0..fam.len() {
                    assert!(fam.known_ged(i, k) <= fam.known_ged(i, j) + fam.known_ged(j, k));
                }
            }
        }
    }

    #[test]
    fn relabel_mode_preserves_topology() {
        let mut rng = StdRng::seed_from_u64(3);
        let fam = KnownGedFamily::generate(&small_config(ModificationMode::RelabelEdges), &mut rng)
            .unwrap();
        let template_edges = fam.template().edge_count();
        for m in fam.members() {
            assert_eq!(m.graph().edge_count(), template_edges);
            assert_eq!(m.graph().vertex_count(), fam.template().vertex_count());
        }
    }

    #[test]
    fn delete_mode_removes_exactly_the_selected_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let fam = KnownGedFamily::generate(&small_config(ModificationMode::DeleteEdges), &mut rng)
            .unwrap();
        let template_edges = fam.template().edge_count();
        for m in fam.members() {
            assert_eq!(
                m.graph().edge_count(),
                template_edges - m.modified_edges().len()
            );
        }
    }

    #[test]
    fn gbd_lower_bounds_known_ged_for_relabel_mode() {
        // One edit operation changes at most two branches, so GBD ≤ 2·GED;
        // conversely GED ≥ ⌈GBD / 2⌉ — a cheap sanity check of consistency
        // between the construction and the branch distance.
        let mut rng = StdRng::seed_from_u64(5);
        let fam = KnownGedFamily::generate(&small_config(ModificationMode::RelabelEdges), &mut rng)
            .unwrap();
        for i in 0..fam.len() {
            for j in 0..fam.len() {
                let gbd = graph_branch_distance(fam.member_graph(i), fam.member_graph(j));
                let ged = fam.known_ged(i, j);
                assert!(gbd <= 2 * ged, "GBD {gbd} > 2·GED {ged}");
            }
        }
    }

    #[test]
    fn center_neighbourhood_is_uniquified() {
        let mut rng = StdRng::seed_from_u64(6);
        let fam = KnownGedFamily::generate(&small_config(ModificationMode::DeleteEdges), &mut rng)
            .unwrap();
        let t = fam.template();
        let c = fam.center();
        let mut vertex_labels: Vec<Label> = t
            .neighbors(c)
            .unwrap()
            .iter()
            .map(|&(v, _)| t.vertex_label(v).unwrap())
            .collect();
        let before = vertex_labels.len();
        vertex_labels.sort_unstable();
        vertex_labels.dedup();
        assert_eq!(
            vertex_labels.len(),
            before,
            "neighbour vertex labels must be unique"
        );
        let mut edge_labels: Vec<Label> = t.neighbors(c).unwrap().iter().map(|&(_, l)| l).collect();
        let before = edge_labels.len();
        edge_labels.sort_unstable();
        edge_labels.dedup();
        assert_eq!(
            edge_labels.len(),
            before,
            "center edge labels must be unique"
        );
    }

    #[test]
    fn generation_fails_when_template_is_too_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = KnownGedConfig::new(GeneratorConfig::new(3, 1.5), 5, 4, 5);
        assert!(KnownGedFamily::generate(&cfg, &mut rng).is_err());
    }
}
