//! Plain-text serialisation of graphs and graph databases.
//!
//! The format is a small line-based dialect of the classic `t/v/e` exchange
//! format used by graph-mining tools:
//!
//! ```text
//! t molecule-1          # one graph starts; the rest of the line is its name
//! v 0 C                 # vertex <index> <label>
//! v 1 O
//! e 0 1 single          # edge <u> <v> <label>
//! ```
//!
//! Labels are written through a [`Vocabulary`]; unknown labels round-trip via
//! their raw interned id written as `#<id>`.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, VertexId};
use crate::label::{Label, Vocabulary};

/// Serialises one graph.
pub fn write_graph(graph: &Graph, vocabulary: &Vocabulary) -> String {
    let mut out = String::new();
    write_graph_into(graph, vocabulary, &mut out);
    out
}

fn label_token(label: Label, vocabulary: &Vocabulary) -> String {
    match vocabulary.resolve(label) {
        Some(name) if !name.contains(char::is_whitespace) && !name.starts_with('#') => {
            name.to_owned()
        }
        _ => format!("#{}", label.id()),
    }
}

fn write_graph_into(graph: &Graph, vocabulary: &Vocabulary, out: &mut String) {
    out.push_str("t ");
    out.push_str(graph.name().unwrap_or("unnamed"));
    out.push('\n');
    for v in graph.vertices() {
        let label = graph.vertex_label(v).expect("vertex from same graph");
        out.push_str(&format!(
            "v {} {}\n",
            v.index(),
            label_token(label, vocabulary)
        ));
    }
    for (key, label) in graph.edges() {
        out.push_str(&format!(
            "e {} {} {}\n",
            key.u.index(),
            key.v.index(),
            label_token(label, vocabulary)
        ));
    }
}

/// Serialises a whole database (sequence of graphs).
pub fn write_database(graphs: &[Graph], vocabulary: &Vocabulary) -> String {
    let mut out = String::new();
    for g in graphs {
        write_graph_into(g, vocabulary, &mut out);
    }
    out
}

fn parse_label(token: &str, line: usize, vocabulary: &mut Vocabulary) -> Result<Label> {
    if let Some(raw) = token.strip_prefix('#') {
        let id: u32 = raw.parse().map_err(|_| GraphError::ParseAt {
            line,
            message: format!("invalid raw label id '{token}'"),
        })?;
        Ok(Label::new(id))
    } else {
        Ok(vocabulary.intern(token))
    }
}

/// Builds a line-pinned parse error.
fn parse_error(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::ParseAt {
        line,
        message: message.into(),
    }
}

/// Parses a database written by [`write_database`] (or a single graph written
/// by [`write_graph`]). New label strings are interned into `vocabulary`.
///
/// # Errors
/// Every parse failure — including graph-construction failures such as a
/// duplicate edge on an `e` line — is reported as [`GraphError::ParseAt`]
/// carrying the 1-based line number of the offending input line.
pub fn parse_database(text: &str, vocabulary: &mut Vocabulary) -> Result<Vec<Graph>> {
    let mut graphs: Vec<Graph> = Vec::new();
    let mut current: Option<Graph> = None;
    for (line_index, raw_line) in text.lines().enumerate() {
        let line_no = line_index + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        let line =
            if raw_line.trim_start().starts_with('v') || raw_line.trim_start().starts_with('e') {
                // '#' may legitimately start a raw label token; only strip
                // comments on structural lines.
                raw_line.trim()
            } else {
                line
            };
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        match tag {
            "t" => {
                if let Some(g) = current.take() {
                    graphs.push(g);
                }
                let mut g = Graph::new();
                let name: Vec<&str> = parts.collect();
                if !name.is_empty() {
                    g.set_name(name.join(" "));
                }
                current = Some(g);
            }
            "v" => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| parse_error(line_no, "vertex before 't'"))?;
                let idx: usize = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no, "missing vertex index"))?
                    .parse()
                    .map_err(|_| parse_error(line_no, "bad vertex index"))?;
                let label_tok = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no, "missing vertex label"))?;
                if idx != g.vertex_count() {
                    return Err(parse_error(
                        line_no,
                        format!(
                            "vertex indices must be dense and in order (expected {}, got {idx})",
                            g.vertex_count()
                        ),
                    ));
                }
                g.add_vertex(parse_label(label_tok, line_no, vocabulary)?);
            }
            "e" => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| parse_error(line_no, "edge before 't'"))?;
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no, "missing edge endpoint"))?
                    .parse()
                    .map_err(|_| parse_error(line_no, "bad edge endpoint"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no, "missing edge endpoint"))?
                    .parse()
                    .map_err(|_| parse_error(line_no, "bad edge endpoint"))?;
                let label_tok = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no, "missing edge label"))?;
                g.add_edge(
                    VertexId::new(u),
                    VertexId::new(v),
                    parse_label(label_tok, line_no, vocabulary)?,
                )
                .map_err(|e| e.at_line(line_no))?;
            }
            other => {
                return Err(parse_error(
                    line_no,
                    format!("unknown record tag '{other}'"),
                ))
            }
        }
    }
    if let Some(g) = current.take() {
        graphs.push(g);
    }
    Ok(graphs)
}

/// Parses exactly one graph.
pub fn parse_graph(text: &str, vocabulary: &mut Vocabulary) -> Result<Graph> {
    let mut graphs = parse_database(text, vocabulary)?;
    match graphs.len() {
        1 => Ok(graphs.pop().expect("length checked")),
        n => Err(GraphError::Parse(format!(
            "expected exactly one graph, found {n}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::graph_branch_distance;
    use crate::paper_examples::{figure1_g1, figure1_g2};

    #[test]
    fn graph_round_trips_through_text() {
        let (g1, voc) = figure1_g1();
        let text = write_graph(&g1, &voc);
        let mut voc2 = Vocabulary::new();
        let parsed = parse_graph(&text, &mut voc2).unwrap();
        assert_eq!(parsed.vertex_count(), g1.vertex_count());
        assert_eq!(parsed.edge_count(), g1.edge_count());
        assert_eq!(parsed.name(), Some("figure1-G1"));
        // Branch-structure is preserved (labels are re-interned consistently).
        let text2 = write_graph(&parsed, &voc2);
        let mut voc3 = Vocabulary::new();
        let reparsed = parse_graph(&text2, &mut voc3).unwrap();
        assert_eq!(graph_branch_distance(&parsed, &reparsed), 0);
    }

    #[test]
    fn database_round_trips_through_text() {
        let (g1, voc) = figure1_g1();
        let (g2, _) = figure1_g2();
        let text = write_database(&[g1.clone(), g2.clone()], &voc);
        let mut voc2 = Vocabulary::new();
        let parsed = parse_database(&text, &mut voc2).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(graph_branch_distance(&parsed[0], &parsed[1]), 3);
    }

    #[test]
    fn unknown_labels_round_trip_as_raw_ids() {
        let mut g = Graph::new();
        let a = g.add_vertex(Label::new(777));
        let b = g.add_vertex(Label::new(888));
        g.add_edge(a, b, Label::new(999)).unwrap();
        let voc = Vocabulary::new();
        let text = write_graph(&g, &voc);
        assert!(text.contains("#777"));
        let mut voc2 = Vocabulary::new();
        let parsed = parse_graph(&text, &mut voc2).unwrap();
        assert_eq!(
            parsed.vertex_label(VertexId::new(0)).unwrap(),
            Label::new(777)
        );
        assert_eq!(
            parsed.edge_label(VertexId::new(0), VertexId::new(1)),
            Some(Label::new(999))
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let mut voc = Vocabulary::new();
        assert!(
            parse_database("v 0 C", &mut voc).is_err(),
            "vertex before t"
        );
        assert!(
            parse_database("t g\nv 1 C", &mut voc).is_err(),
            "non-dense index"
        );
        assert!(
            parse_database("t g\nv 0 C\ne 0 5 x", &mut voc).is_err(),
            "unknown endpoint"
        );
        assert!(parse_database("t g\nq 0", &mut voc).is_err(), "unknown tag");
        assert!(
            parse_database("t g\nv zero C", &mut voc).is_err(),
            "bad index"
        );
        assert!(
            parse_graph("t a\nt b", &mut voc).is_err(),
            "two graphs for parse_graph"
        );
    }

    /// Every malformed input is rejected with the 1-based line number of the
    /// offending line, so a bad record deep inside a big `t/v/e` file is
    /// diagnosable directly.
    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("v 0 C", 1, "vertex before 't'"),
            ("# header\n\ne 0 1 x", 3, "edge before 't'"),
            ("t g\nv", 2, "missing vertex index"),
            ("t g\nv zero C", 2, "bad vertex index"),
            ("t g\nv 0", 2, "missing vertex label"),
            ("t g\nv 0 C\nv 2 O", 3, "dense and in order"),
            ("t g\nv 0 #x", 2, "invalid raw label id"),
            ("t g\ne", 2, "missing edge endpoint"),
            ("t g\ne 0", 2, "missing edge endpoint"),
            ("t g\ne zero 1 x", 2, "bad edge endpoint"),
            ("t g\ne 0 one x", 2, "bad edge endpoint"),
            ("t g\ne 0 1", 2, "missing edge label"),
            ("t g\nv 0 C\nv 1 O\nq 0", 4, "unknown record tag"),
            // Graph-construction failures on an `e` line keep the line too.
            ("t g\nv 0 C\nv 1 O\ne 0 1 x\ne 1 0 y", 5, "already exists"),
            ("t g\nv 0 C\ne 0 0 x", 3, "self loop"),
            ("t g\nv 0 C\ne 0 5 x", 3, "unknown vertex"),
        ];
        for (text, line, needle) in cases {
            let mut voc = Vocabulary::new();
            let err = parse_database(text, &mut voc).unwrap_err();
            assert_eq!(
                err.line(),
                Some(*line),
                "wrong line for {text:?}: got {err}"
            );
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle:?}"
            );
            assert!(err.to_string().contains(&format!("line {line}")));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut voc = Vocabulary::new();
        let text = "\n# a comment\nt g\nv 0 C\nv 1 O\ne 0 1 bond\n\n";
        let parsed = parse_database(text, &mut voc).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].vertex_count(), 2);
        assert_eq!(parsed[0].edge_count(), 1);
    }

    #[test]
    fn empty_input_parses_to_empty_database() {
        let mut voc = Vocabulary::new();
        assert_eq!(parse_database("", &mut voc).unwrap().len(), 0);
    }
}
