//! Interned vertex and edge labels.
//!
//! The paper works with a general labelling function `L` over vertex labels
//! `LV` and edge labels `LE`, plus a *virtual* label `ε` used only by extended
//! graphs (Definition 5). Labels are interned to small integers so that branch
//! comparison and GBD computation are cheap integer comparisons.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// An interned label.
///
/// Labels are plain integers; the optional [`Vocabulary`] maps them back to
/// strings for I/O and debugging. The special value [`Label::EPSILON`]
/// represents the virtual label `ε` of extended graphs and is never a member
/// of `LV` or `LE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

impl Label {
    /// The virtual label `ε` used by extended graphs (Definition 5).
    pub const EPSILON: Label = Label(u32::MAX);

    /// Creates a concrete (non-virtual) label from a raw id.
    pub const fn new(id: u32) -> Self {
        Label(id)
    }

    /// Returns the raw interned id.
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Returns `true` when this is the virtual label `ε`.
    pub const fn is_virtual(self) -> bool {
        self.0 == u32::MAX
    }
}

impl From<u32> for Label {
    fn from(id: u32) -> Self {
        Label(id)
    }
}

/// Sizes of the vertex and edge label alphabets `|LV|` and `|LE|`.
///
/// These sizes appear in the probabilistic model: the number of possible
/// branch types `D = |LV| · C(|V'₁| + |LE| − 1, |LE|)` (Lemma 3) depends on
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelAlphabets {
    /// Number of distinct vertex labels `|LV|` (excluding `ε`).
    pub vertex_labels: usize,
    /// Number of distinct edge labels `|LE|` (excluding `ε`).
    pub edge_labels: usize,
}

impl LabelAlphabets {
    /// Creates a new alphabet-size descriptor.
    ///
    /// Both counts are clamped to at least 1 because the model divides by the
    /// number of branch types.
    pub fn new(vertex_labels: usize, edge_labels: usize) -> Self {
        LabelAlphabets {
            vertex_labels: vertex_labels.max(1),
            edge_labels: edge_labels.max(1),
        }
    }
}

/// A bidirectional mapping between label strings and interned [`Label`] ids.
///
/// Vertex and edge labels share one namespace; the paper never requires the
/// two alphabets to be disjoint, and sharing keeps branch comparison uniform.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Interns `name`, returning its stable label id.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&id) = self.index.get(name) {
            return Label(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        Label(id)
    }

    /// Looks up an already-interned label by name.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.index.get(name).copied().map(Label)
    }

    /// Resolves a label id back to its string.
    ///
    /// The virtual label resolves to `"ε"`.
    pub fn resolve(&self, label: Label) -> Option<&str> {
        if label.is_virtual() {
            return Some("ε");
        }
        self.names.get(label.0 as usize).map(String::as_str)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the string→id index (needed after deserialisation, where the
    /// index is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }

    /// Iterates over `(Label, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("C");
        let b = v.intern("C");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut v = Vocabulary::new();
        let a = v.intern("C");
        let b = v.intern("N");
        assert_eq!(v.resolve(a), Some("C"));
        assert_eq!(v.resolve(b), Some("N"));
        assert_eq!(v.resolve(Label(99)), None);
    }

    #[test]
    fn epsilon_is_virtual_and_resolves_to_epsilon_glyph() {
        assert!(Label::EPSILON.is_virtual());
        assert!(!Label::new(0).is_virtual());
        let v = Vocabulary::new();
        assert_eq!(v.resolve(Label::EPSILON), Some("ε"));
    }

    #[test]
    fn labels_order_by_id() {
        assert!(Label(0) < Label(1));
        assert!(Label(1) < Label::EPSILON);
    }

    #[test]
    fn alphabets_clamp_to_one() {
        let a = LabelAlphabets::new(0, 0);
        assert_eq!(a.vertex_labels, 1);
        assert_eq!(a.edge_labels, 1);
        let b = LabelAlphabets::new(5, 3);
        assert_eq!(b.vertex_labels, 5);
        assert_eq!(b.edge_labels, 3);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let mut copy = Vocabulary {
            names: v.names.clone(),
            index: HashMap::new(),
        };
        assert_eq!(copy.get("x"), None);
        copy.rebuild_index();
        assert_eq!(copy.get("x"), Some(Label(0)));
        assert_eq!(copy.get("y"), Some(Label(1)));
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut v = Vocabulary::new();
        v.intern("a");
        v.intern("b");
        let collected: Vec<_> = v.iter().map(|(l, n)| (l.id(), n.to_owned())).collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
