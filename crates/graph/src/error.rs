//! Error types for graph construction and manipulation.

use std::fmt;

use crate::graph::VertexId;

/// Convenient result alias used throughout the graph substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised when building or editing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id does not exist in the graph.
    UnknownVertex(VertexId),
    /// An edge between the two vertices does not exist.
    UnknownEdge(VertexId, VertexId),
    /// An edge between the two vertices already exists (simple graphs only).
    DuplicateEdge(VertexId, VertexId),
    /// Self loops are not allowed in simple graphs.
    SelfLoop(VertexId),
    /// A vertex scheduled for deletion still has incident edges.
    VertexNotIsolated(VertexId),
    /// The virtual label `ε` cannot be used on concrete vertices or edges.
    VirtualLabelNotAllowed,
    /// A label id was used that is not present in the vocabulary.
    UnknownLabel(u32),
    /// A textual graph representation could not be parsed.
    Parse(String),
    /// A generator could not satisfy its constraints (e.g. no valid
    /// modification center was found within the retry budget).
    Generation(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {}", v.index()),
            GraphError::UnknownEdge(u, v) => {
                write!(
                    f,
                    "no edge between vertices {} and {}",
                    u.index(),
                    v.index()
                )
            }
            GraphError::DuplicateEdge(u, v) => {
                write!(
                    f,
                    "edge between {} and {} already exists",
                    u.index(),
                    v.index()
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {}", v.index()),
            GraphError::VertexNotIsolated(v) => {
                write!(f, "vertex {} still has incident edges", v.index())
            }
            GraphError::VirtualLabelNotAllowed => {
                write!(f, "the virtual label ε cannot be used in a concrete graph")
            }
            GraphError::UnknownLabel(id) => write!(f, "unknown label id {id}"),
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::Generation(msg) => write!(f, "generation error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = GraphError::UnknownVertex(VertexId::new(3));
        assert!(e.to_string().contains("unknown vertex 3"));
        let e = GraphError::DuplicateEdge(VertexId::new(1), VertexId::new(2));
        assert!(e.to_string().contains("already exists"));
        let e = GraphError::Parse("bad line".into());
        assert!(e.to_string().contains("bad line"));
    }
}
