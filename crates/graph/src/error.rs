//! Error types for graph construction and manipulation.

use std::fmt;

use crate::graph::VertexId;

/// Convenient result alias used throughout the graph substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised when building or editing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id does not exist in the graph.
    UnknownVertex(VertexId),
    /// An edge between the two vertices does not exist.
    UnknownEdge(VertexId, VertexId),
    /// An edge between the two vertices already exists (simple graphs only).
    DuplicateEdge(VertexId, VertexId),
    /// Self loops are not allowed in simple graphs.
    SelfLoop(VertexId),
    /// A vertex scheduled for deletion still has incident edges.
    VertexNotIsolated(VertexId),
    /// The virtual label `ε` cannot be used on concrete vertices or edges.
    VirtualLabelNotAllowed,
    /// A label id was used that is not present in the vocabulary.
    UnknownLabel(u32),
    /// A textual graph representation could not be parsed.
    Parse(String),
    /// A textual graph representation could not be parsed; the error is
    /// pinned to a 1-based line of the input, so malformed `t/v/e` files are
    /// diagnosable without bisecting them.
    ParseAt {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// A generator could not satisfy its constraints (e.g. no valid
    /// modification center was found within the retry budget).
    Generation(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {}", v.index()),
            GraphError::UnknownEdge(u, v) => {
                write!(
                    f,
                    "no edge between vertices {} and {}",
                    u.index(),
                    v.index()
                )
            }
            GraphError::DuplicateEdge(u, v) => {
                write!(
                    f,
                    "edge between {} and {} already exists",
                    u.index(),
                    v.index()
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {}", v.index()),
            GraphError::VertexNotIsolated(v) => {
                write!(f, "vertex {} still has incident edges", v.index())
            }
            GraphError::VirtualLabelNotAllowed => {
                write!(f, "the virtual label ε cannot be used in a concrete graph")
            }
            GraphError::UnknownLabel(id) => write!(f, "unknown label id {id}"),
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::ParseAt { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Generation(msg) => write!(f, "generation error: {msg}"),
        }
    }
}

impl GraphError {
    /// The 1-based input line an I/O parse error points at, if the error
    /// carries one.
    pub fn line(&self) -> Option<usize> {
        match self {
            GraphError::ParseAt { line, .. } => Some(*line),
            _ => None,
        }
    }

    /// Attaches a 1-based line number to this error, turning any graph
    /// error raised while applying a parsed record into a diagnosable
    /// [`GraphError::ParseAt`]. Errors that already carry a line keep it.
    pub fn at_line(self, line: usize) -> GraphError {
        match self {
            GraphError::ParseAt { .. } => self,
            GraphError::Parse(message) => GraphError::ParseAt { line, message },
            other => GraphError::ParseAt {
                line,
                message: other.to_string(),
            },
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = GraphError::UnknownVertex(VertexId::new(3));
        assert!(e.to_string().contains("unknown vertex 3"));
        let e = GraphError::DuplicateEdge(VertexId::new(1), VertexId::new(2));
        assert!(e.to_string().contains("already exists"));
        let e = GraphError::Parse("bad line".into());
        assert!(e.to_string().contains("bad line"));
        let e = GraphError::ParseAt {
            line: 7,
            message: "bad record".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("bad record"));
    }

    #[test]
    fn line_context_is_attached_and_preserved() {
        assert_eq!(GraphError::Parse("x".into()).line(), None);
        let pinned = GraphError::Parse("bad".into()).at_line(3);
        assert_eq!(pinned.line(), Some(3));
        // Already-pinned errors keep their original line.
        assert_eq!(pinned.at_line(9).line(), Some(3));
        // Structural errors are wrapped with their message intact.
        let wrapped = GraphError::SelfLoop(VertexId::new(2)).at_line(4);
        assert_eq!(wrapped.line(), Some(4));
        assert!(wrapped.to_string().contains("self loop"));
    }
}
