//! # gbd-graph — graph substrate for GBDA
//!
//! This crate provides the graph substrate used by the GBDA reproduction of
//! *"An Efficient Probabilistic Approach for Graph Similarity Search"*
//! (Li, Jian, Lian, Chen — ICDE 2018):
//!
//! * simple labeled undirected [`Graph`]s with interned [`Label`]s,
//! * [`Branch`]es (Definition 2) and the Graph Branch Distance
//!   ([`graph_branch_distance`], Definition 4),
//! * interned flat branch storage ([`BranchCatalog`], [`FlatBranchSet`]) that
//!   turns the GBD merge into a walk over integer `(id, count)` runs,
//! * graph edit operations (Definition 1) and edit paths,
//! * extended graphs (Definition 5) used by the probabilistic model,
//! * random graph generators (uniform and scale-free) and the Appendix-I
//!   "modification center" generator that produces graph families with
//!   *known* pairwise edit distances,
//! * dataset statistics (Table III) and a small text I/O format.
//!
//! Everything downstream (exact GED, the LSAP / greedy / seriation baselines,
//! the probabilistic model and the GBDA search engine) is built on top of this
//! crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod branch;
pub mod catalog;
pub mod edit;
pub mod error;
pub mod extended;
pub mod generate;
pub mod graph;
pub mod io;
pub mod known_ged;
pub mod label;
pub mod paper_examples;
pub mod statistics;

pub use branch::{graph_branch_distance, Branch, BranchMultiset};
pub use catalog::{BranchCatalog, BranchRun, FlatBranchSet, FlatBranchView, UNKNOWN_BRANCH_ID};
pub use edit::{EditOp, EditPath};
pub use error::{GraphError, Result};
pub use extended::{extend_graph, extension_factor};
pub use generate::{GeneratorConfig, LabelDistribution};
pub use graph::{EdgeKey, Graph, VertexId};
pub use known_ged::{KnownGedConfig, KnownGedFamily};
pub use label::{Label, LabelAlphabets, Vocabulary};
pub use statistics::{DatasetStats, GraphStats};
