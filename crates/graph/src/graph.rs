//! Simple labeled undirected graphs.
//!
//! Graphs in the paper (Section II) are *simple labeled undirected* graphs
//! `G = {V, E, L}`: no self loops, at most one edge between a pair of
//! vertices, and a labelling function over both vertices and edges. Directed
//! and weighted graphs can be handled by encoding direction/weight into the
//! edge label, exactly as the paper notes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};
use crate::label::Label;

/// Identifier of a vertex inside one [`Graph`].
///
/// Vertex ids are dense indices `0..vertex_count()`; they are only meaningful
/// relative to the graph that produced them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from a dense index.
    pub const fn new(index: u32) -> Self {
        VertexId(index)
    }

    /// Returns the dense index of this vertex.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// Canonical identifier of an undirected edge: the vertex pair with the
/// smaller id first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeKey {
    /// Endpoint with the smaller vertex id.
    pub u: VertexId,
    /// Endpoint with the larger vertex id.
    pub v: VertexId,
}

impl EdgeKey {
    /// Builds the canonical key for the unordered pair `{a, b}`.
    pub fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            EdgeKey { u: a, v: b }
        } else {
            EdgeKey { u: b, v: a }
        }
    }

    /// Returns `true` if `x` is one of the two endpoints.
    pub fn touches(&self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }

    /// Given one endpoint, returns the other one (or `None` if `x` is not an
    /// endpoint).
    pub fn other(&self, x: VertexId) -> Option<VertexId> {
        if self.u == x {
            Some(self.v)
        } else if self.v == x {
            Some(self.u)
        } else {
            None
        }
    }
}

/// A simple labeled undirected graph.
///
/// The representation keeps an adjacency list per vertex (neighbour id plus
/// edge label, kept sorted by neighbour id) and a canonical edge map. This is
/// the "auxiliary data structure" the paper assumes is stored with each graph
/// for fair comparison of the different methods (Section III).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    name: Option<String>,
    vertex_labels: Vec<Label>,
    adjacency: Vec<Vec<(VertexId, Label)>>,
    edges: BTreeMap<EdgeKey, Label>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with pre-allocated room for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Graph {
            name: None,
            vertex_labels: Vec::with_capacity(n),
            adjacency: Vec::with_capacity(n),
            edges: BTreeMap::new(),
        }
    }

    /// Rebuilds a graph from its serialised parts: vertex labels in id order
    /// plus edges as `(u, v, label)` triples in **canonical order** (each
    /// `u < v`, triples strictly ascending by `(u, v)`), exactly the order
    /// [`Self::edges`] iterates in.
    ///
    /// This is the storage-engine load path: instead of one checked
    /// [`Self::add_edge`] per edge (a `BTreeMap` probe plus a sorted
    /// insertion each), the adjacency lists are bulk-filled and sorted once
    /// and the edge map is bulk-built from the already-sorted triples. All
    /// simple-graph invariants are still validated, so corrupt input yields
    /// a [`GraphError`], never a panic or a malformed graph.
    pub fn from_parts(
        name: Option<String>,
        vertex_labels: Vec<Label>,
        edges: &[(u32, u32, Label)],
    ) -> Result<Self> {
        let n = vertex_labels.len();
        if vertex_labels.iter().any(|l| l.is_virtual()) {
            return Err(GraphError::VirtualLabelNotAllowed);
        }
        let mut adjacency: Vec<Vec<(VertexId, Label)>> = vec![Vec::new(); n];
        let mut previous: Option<(u32, u32)> = None;
        for &(u, v, label) in edges {
            if label.is_virtual() {
                return Err(GraphError::VirtualLabelNotAllowed);
            }
            if u == v {
                return Err(GraphError::SelfLoop(VertexId::new(u)));
            }
            if u > v {
                // Canonical order is part of the contract; a swapped pair
                // would also defeat the duplicate check below.
                return Err(GraphError::Parse(format!(
                    "edge ({u}, {v}) is not in canonical order"
                )));
            }
            if v as usize >= n {
                return Err(GraphError::UnknownVertex(VertexId::new(v)));
            }
            match previous {
                Some(p) if p == (u, v) => {
                    return Err(GraphError::DuplicateEdge(
                        VertexId::new(u),
                        VertexId::new(v),
                    ))
                }
                Some(p) if p > (u, v) => {
                    return Err(GraphError::Parse(format!(
                        "edge ({u}, {v}) is not in canonical order"
                    )))
                }
                _ => {}
            }
            previous = Some((u, v));
            adjacency[u as usize].push((VertexId::new(v), label));
            adjacency[v as usize].push((VertexId::new(u), label));
        }
        for adj in &mut adjacency {
            adj.sort_unstable_by_key(|&(neighbour, _)| neighbour);
        }
        let edges: BTreeMap<EdgeKey, Label> = edges
            .iter()
            .map(|&(u, v, label)| (EdgeKey::new(VertexId::new(u), VertexId::new(v)), label))
            .collect();
        Ok(Graph {
            name,
            vertex_labels,
            adjacency,
            edges,
        })
    }

    /// Sets a human readable name (dataset id, molecule id, ...).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Returns the graph name if one was set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Adds a vertex with the given (non-virtual) label and returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        debug_assert!(
            !label.is_virtual(),
            "concrete graphs store non-virtual labels"
        );
        let id = VertexId::new(self.vertex_labels.len() as u32);
        self.vertex_labels.push(label);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge `{a, b}` with the given label.
    ///
    /// Fails on self loops, duplicate edges, unknown endpoints, or the virtual
    /// label.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId, label: Label) -> Result<EdgeKey> {
        if label.is_virtual() {
            return Err(GraphError::VirtualLabelNotAllowed);
        }
        self.check_vertex(a)?;
        self.check_vertex(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let key = EdgeKey::new(a, b);
        if self.edges.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(key.u, key.v));
        }
        self.edges.insert(key, label);
        Self::insert_sorted(&mut self.adjacency[a.index()], b, label);
        Self::insert_sorted(&mut self.adjacency[b.index()], a, label);
        Ok(key)
    }

    fn insert_sorted(adj: &mut Vec<(VertexId, Label)>, neighbour: VertexId, label: Label) {
        let pos = adj.partition_point(|(n, _)| *n < neighbour);
        adj.insert(pos, (neighbour, label));
    }

    fn remove_from_adj(adj: &mut Vec<(VertexId, Label)>, neighbour: VertexId) {
        if let Ok(pos) = adj.binary_search_by_key(&neighbour, |(n, _)| *n) {
            adj.remove(pos);
        }
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if v.index() < self.vertex_labels.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(v))
        }
    }

    /// Number of vertices `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the label of vertex `v`.
    pub fn vertex_label(&self, v: VertexId) -> Result<Label> {
        self.check_vertex(v)?;
        Ok(self.vertex_labels[v.index()])
    }

    /// Returns the label of the edge `{a, b}` if it exists.
    pub fn edge_label(&self, a: VertexId, b: VertexId) -> Option<Label> {
        self.edges.get(&EdgeKey::new(a, b)).copied()
    }

    /// Returns `true` if the edge `{a, b}` exists.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.edges.contains_key(&EdgeKey::new(a, b))
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: VertexId) -> Result<usize> {
        self.check_vertex(v)?;
        Ok(self.adjacency[v.index()].len())
    }

    /// Iterates over the neighbours of `v` together with the connecting edge
    /// label, sorted by neighbour id.
    pub fn neighbors(&self, v: VertexId) -> Result<&[(VertexId, Label)]> {
        self.check_vertex(v)?;
        Ok(&self.adjacency[v.index()])
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_labels.len() as u32).map(VertexId::new)
    }

    /// Iterates over all vertex labels in id order.
    pub fn vertex_labels(&self) -> &[Label] {
        &self.vertex_labels
    }

    /// Iterates over all edges as `(EdgeKey, Label)` in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeKey, Label)> + '_ {
        self.edges.iter().map(|(k, l)| (*k, *l))
    }

    /// Relabels vertex `v` (operation RV of Definition 1).
    pub fn relabel_vertex(&mut self, v: VertexId, label: Label) -> Result<()> {
        if label.is_virtual() {
            return Err(GraphError::VirtualLabelNotAllowed);
        }
        self.check_vertex(v)?;
        self.vertex_labels[v.index()] = label;
        Ok(())
    }

    /// Relabels the edge `{a, b}` (operation RE of Definition 1).
    pub fn relabel_edge(&mut self, a: VertexId, b: VertexId, label: Label) -> Result<()> {
        if label.is_virtual() {
            return Err(GraphError::VirtualLabelNotAllowed);
        }
        let key = EdgeKey::new(a, b);
        let slot = self
            .edges
            .get_mut(&key)
            .ok_or(GraphError::UnknownEdge(key.u, key.v))?;
        *slot = label;
        for (n, l) in &mut self.adjacency[a.index()] {
            if *n == b {
                *l = label;
            }
        }
        for (n, l) in &mut self.adjacency[b.index()] {
            if *n == a {
                *l = label;
            }
        }
        Ok(())
    }

    /// Deletes the edge `{a, b}` (operation DE of Definition 1).
    pub fn delete_edge(&mut self, a: VertexId, b: VertexId) -> Result<()> {
        let key = EdgeKey::new(a, b);
        if self.edges.remove(&key).is_none() {
            return Err(GraphError::UnknownEdge(key.u, key.v));
        }
        Self::remove_from_adj(&mut self.adjacency[a.index()], b);
        Self::remove_from_adj(&mut self.adjacency[b.index()], a);
        Ok(())
    }

    /// Deletes an *isolated* vertex (operation DV of Definition 1).
    ///
    /// The last vertex id is swapped into the deleted slot, mirroring
    /// `Vec::swap_remove`; the returned value is the id that changed (the old
    /// id of the moved vertex), if any.
    pub fn delete_isolated_vertex(&mut self, v: VertexId) -> Result<Option<(VertexId, VertexId)>> {
        self.check_vertex(v)?;
        if !self.adjacency[v.index()].is_empty() {
            return Err(GraphError::VertexNotIsolated(v));
        }
        let last = VertexId::new((self.vertex_labels.len() - 1) as u32);
        self.vertex_labels.swap_remove(v.index());
        self.adjacency.swap_remove(v.index());
        if last == v {
            return Ok(None);
        }
        // The vertex previously known as `last` now has id `v`: rewrite all
        // adjacency entries and edge keys that referenced it.
        let moved = last;
        for adj in &mut self.adjacency {
            for (n, _) in adj.iter_mut() {
                if *n == moved {
                    *n = v;
                }
            }
            adj.sort_unstable_by_key(|(n, _)| *n);
        }
        let affected: Vec<(EdgeKey, Label)> = self
            .edges
            .iter()
            .filter(|(k, _)| k.touches(moved))
            .map(|(k, l)| (*k, *l))
            .collect();
        for (k, l) in affected {
            self.edges.remove(&k);
            let a = if k.u == moved { v } else { k.u };
            let b = if k.v == moved { v } else { k.v };
            self.edges.insert(EdgeKey::new(a, b), l);
        }
        Ok(Some((moved, v)))
    }

    /// Average degree `d = 2|E| / |V|` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.vertex_labels.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.vertex_labels.len() as f64
        }
    }

    /// Maximum vertex degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns `true` when the graph is connected (the empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![VertexId::new(0)];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(v) = stack.pop() {
            for &(n_id, _) in &self.adjacency[v.index()] {
                if !seen[n_id.index()] {
                    seen[n_id.index()] = true;
                    visited += 1;
                    stack.push(n_id);
                }
            }
        }
        visited == n
    }

    /// Multiset of vertex labels, sorted ascending. Used by cheap GED lower
    /// bounds and by tests.
    pub fn sorted_vertex_labels(&self) -> Vec<Label> {
        let mut labels = self.vertex_labels.clone();
        labels.sort_unstable();
        labels
    }

    /// Multiset of edge labels, sorted ascending.
    pub fn sorted_edge_labels(&self) -> Vec<Label> {
        let mut labels: Vec<Label> = self.edges.values().copied().collect();
        labels.sort_unstable();
        labels
    }

    /// Degree sequence (one entry per vertex, in vertex order).
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(n: u32) -> Label {
        Label::new(n)
    }

    /// Builds the example graph G1 of Figure 1: vertices A, C, B and edges
    /// (v1,v2):y, (v1,v3):y, (v2,v3):z  with labels A=0,B=1,C=2,y=10,z=11.
    pub(crate) fn figure1_g1() -> Graph {
        let mut g = Graph::new();
        let v1 = g.add_vertex(labeled(0)); // A
        let v2 = g.add_vertex(labeled(2)); // C
        let v3 = g.add_vertex(labeled(1)); // B
        g.add_edge(v1, v2, labeled(10)).unwrap(); // y
        g.add_edge(v1, v3, labeled(10)).unwrap(); // y
        g.add_edge(v2, v3, labeled(11)).unwrap(); // z
        g
    }

    #[test]
    fn add_vertices_and_edges() {
        let g = figure1_g1();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(VertexId::new(0)).unwrap(), 2);
        assert!(g.has_edge(VertexId::new(0), VertexId::new(2)));
        assert!(g.has_edge(VertexId::new(2), VertexId::new(0)));
        assert_eq!(
            g.edge_label(VertexId::new(1), VertexId::new(2)),
            Some(labeled(11))
        );
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = Graph::new();
        let a = g.add_vertex(labeled(0));
        let b = g.add_vertex(labeled(1));
        assert_eq!(g.add_edge(a, a, labeled(5)), Err(GraphError::SelfLoop(a)));
        g.add_edge(a, b, labeled(5)).unwrap();
        assert_eq!(
            g.add_edge(b, a, labeled(6)),
            Err(GraphError::DuplicateEdge(a, b))
        );
    }

    #[test]
    fn rejects_virtual_labels() {
        let mut g = Graph::new();
        let a = g.add_vertex(labeled(0));
        let b = g.add_vertex(labeled(1));
        assert_eq!(
            g.add_edge(a, b, Label::EPSILON),
            Err(GraphError::VirtualLabelNotAllowed)
        );
        assert_eq!(
            g.relabel_vertex(a, Label::EPSILON),
            Err(GraphError::VirtualLabelNotAllowed)
        );
    }

    #[test]
    fn unknown_vertices_are_rejected() {
        let mut g = Graph::new();
        let a = g.add_vertex(labeled(0));
        let missing = VertexId::new(7);
        assert_eq!(
            g.add_edge(a, missing, labeled(1)),
            Err(GraphError::UnknownVertex(missing))
        );
        assert_eq!(g.degree(missing), Err(GraphError::UnknownVertex(missing)));
    }

    #[test]
    fn relabel_vertex_and_edge() {
        let mut g = figure1_g1();
        g.relabel_vertex(VertexId::new(0), labeled(3)).unwrap();
        assert_eq!(g.vertex_label(VertexId::new(0)).unwrap(), labeled(3));
        g.relabel_edge(VertexId::new(0), VertexId::new(1), labeled(12))
            .unwrap();
        assert_eq!(
            g.edge_label(VertexId::new(0), VertexId::new(1)),
            Some(labeled(12))
        );
        // adjacency view stays consistent
        let adj = g.neighbors(VertexId::new(1)).unwrap();
        let entry = adj.iter().find(|(n, _)| *n == VertexId::new(0)).unwrap();
        assert_eq!(entry.1, labeled(12));
    }

    #[test]
    fn delete_edge_updates_adjacency() {
        let mut g = figure1_g1();
        g.delete_edge(VertexId::new(0), VertexId::new(2)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(VertexId::new(0), VertexId::new(2)));
        assert_eq!(g.degree(VertexId::new(0)).unwrap(), 1);
        assert_eq!(
            g.delete_edge(VertexId::new(0), VertexId::new(2)),
            Err(GraphError::UnknownEdge(VertexId::new(0), VertexId::new(2)))
        );
    }

    #[test]
    fn delete_isolated_vertex_requires_isolation() {
        let mut g = figure1_g1();
        assert_eq!(
            g.delete_isolated_vertex(VertexId::new(0)),
            Err(GraphError::VertexNotIsolated(VertexId::new(0)))
        );
        let iso = g.add_vertex(labeled(9));
        assert_eq!(g.vertex_count(), 4);
        g.delete_isolated_vertex(iso).unwrap();
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn delete_isolated_vertex_swaps_last_and_rewrites_edges() {
        let mut g = Graph::new();
        let a = g.add_vertex(labeled(0));
        let b = g.add_vertex(labeled(1));
        let c = g.add_vertex(labeled(2));
        let d = g.add_vertex(labeled(3));
        g.add_edge(a, b, labeled(5)).unwrap();
        g.add_edge(b, d, labeled(6)).unwrap();
        // c is isolated; deleting it moves d into slot 2.
        let moved = g.delete_isolated_vertex(c).unwrap();
        assert_eq!(moved, Some((d, c)));
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.vertex_label(VertexId::new(2)).unwrap(), labeled(3));
        assert!(g.has_edge(b, VertexId::new(2)));
        assert_eq!(g.degree(VertexId::new(2)).unwrap(), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn connectivity_and_degree_statistics() {
        let g = figure1_g1();
        assert!(g.is_connected());
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);

        let mut h = Graph::new();
        h.add_vertex(labeled(0));
        h.add_vertex(labeled(1));
        assert!(!h.is_connected());
        assert_eq!(h.average_degree(), 0.0);
    }

    #[test]
    fn sorted_label_multisets() {
        let g = figure1_g1();
        assert_eq!(
            g.sorted_vertex_labels(),
            vec![labeled(0), labeled(1), labeled(2)]
        );
        assert_eq!(
            g.sorted_edge_labels(),
            vec![labeled(10), labeled(10), labeled(11)]
        );
    }

    #[test]
    fn edge_key_is_canonical() {
        let k1 = EdgeKey::new(VertexId::new(3), VertexId::new(1));
        let k2 = EdgeKey::new(VertexId::new(1), VertexId::new(3));
        assert_eq!(k1, k2);
        assert_eq!(k1.u, VertexId::new(1));
        assert!(k1.touches(VertexId::new(3)));
        assert_eq!(k1.other(VertexId::new(1)), Some(VertexId::new(3)));
        assert_eq!(k1.other(VertexId::new(9)), None);
    }

    #[test]
    fn from_parts_rebuilds_an_identical_graph() {
        let mut g = figure1_g1();
        g.set_name("rebuilt");
        let labels = g.vertex_labels().to_vec();
        let edges: Vec<(u32, u32, Label)> =
            g.edges().map(|(k, l)| (k.u.raw(), k.v.raw(), l)).collect();
        let rebuilt = Graph::from_parts(Some("rebuilt".into()), labels, &edges).unwrap();
        assert_eq!(rebuilt.name(), Some("rebuilt"));
        assert_eq!(rebuilt.vertex_count(), g.vertex_count());
        assert_eq!(rebuilt.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(rebuilt.vertex_label(v), g.vertex_label(v));
            assert_eq!(rebuilt.neighbors(v).unwrap(), g.neighbors(v).unwrap());
        }
        let original: Vec<_> = g.edges().collect();
        let copied: Vec<_> = rebuilt.edges().collect();
        assert_eq!(original, copied);
    }

    #[test]
    fn from_parts_rejects_invalid_input() {
        let labels = vec![labeled(0), labeled(1), labeled(2)];
        let ok = |edges: &[(u32, u32, Label)]| Graph::from_parts(None, labels.clone(), edges);
        assert_eq!(
            ok(&[(1, 1, labeled(5))]).unwrap_err(),
            GraphError::SelfLoop(VertexId::new(1))
        );
        assert_eq!(
            ok(&[(0, 7, labeled(5))]).unwrap_err(),
            GraphError::UnknownVertex(VertexId::new(7))
        );
        assert_eq!(
            ok(&[(0, 1, labeled(5)), (0, 1, labeled(6))]).unwrap_err(),
            GraphError::DuplicateEdge(VertexId::new(0), VertexId::new(1))
        );
        assert!(matches!(
            ok(&[(1, 2, labeled(5)), (0, 1, labeled(6))]).unwrap_err(),
            GraphError::Parse(_)
        ));
        assert!(matches!(
            ok(&[(2, 0, labeled(5))]).unwrap_err(),
            GraphError::Parse(_)
        ));
        assert_eq!(
            ok(&[(0, 1, Label::EPSILON)]).unwrap_err(),
            GraphError::VirtualLabelNotAllowed
        );
        assert_eq!(
            Graph::from_parts(None, vec![Label::EPSILON], &[]).unwrap_err(),
            GraphError::VirtualLabelNotAllowed
        );
        // The empty graph is a valid edge case.
        let empty = Graph::from_parts(None, Vec::new(), &[]).unwrap();
        assert_eq!(empty.vertex_count(), 0);
    }

    #[test]
    fn name_round_trips() {
        let mut g = Graph::new();
        assert_eq!(g.name(), None);
        g.set_name("molecule-42");
        assert_eq!(g.name(), Some("molecule-42"));
    }
}
