//! Worked examples from the paper, reusable by tests, doctests and examples.
//!
//! The paper develops its definitions on two small graphs `G1` and `G2`
//! (Figure 1) and on a pair of triangles (Figure 4). Reproducing them here
//! once keeps every downstream crate's tests aligned with the published
//! numbers: `GED(G1, G2) = 3` (Example 1) and `GBD(G1, G2) = 3` (Example 2).

use crate::graph::Graph;
use crate::label::{Label, Vocabulary};

/// The label vocabulary used by the Figure 1 / Figure 4 examples
/// (`A`, `B`, `C` for vertices and `x`, `y`, `z` for edges).
pub fn example_vocabulary() -> Vocabulary {
    let mut v = Vocabulary::new();
    for name in ["A", "B", "C", "x", "y", "z"] {
        v.intern(name);
    }
    v
}

fn l(voc: &Vocabulary, name: &str) -> Label {
    voc.get(name).expect("label present in example vocabulary")
}

/// Graph `G1` of Figure 1: vertices `A, C, B`, edges
/// `(v1,v2):y`, `(v1,v3):y`, `(v2,v3):z`.
pub fn figure1_g1() -> (Graph, Vocabulary) {
    let voc = example_vocabulary();
    let mut g = Graph::new();
    g.set_name("figure1-G1");
    let v1 = g.add_vertex(l(&voc, "A"));
    let v2 = g.add_vertex(l(&voc, "C"));
    let v3 = g.add_vertex(l(&voc, "B"));
    g.add_edge(v1, v2, l(&voc, "y")).unwrap();
    g.add_edge(v1, v3, l(&voc, "y")).unwrap();
    g.add_edge(v2, v3, l(&voc, "z")).unwrap();
    (g, voc)
}

/// Graph `G2` of Figure 1: vertices `B, A, A, C`, edges
/// `(u1,u3):x`, `(u1,u4):z`, `(u2,u4):y`.
pub fn figure1_g2() -> (Graph, Vocabulary) {
    let voc = example_vocabulary();
    let mut g = Graph::new();
    g.set_name("figure1-G2");
    let u1 = g.add_vertex(l(&voc, "B"));
    let u2 = g.add_vertex(l(&voc, "A"));
    let u3 = g.add_vertex(l(&voc, "A"));
    let u4 = g.add_vertex(l(&voc, "C"));
    g.add_edge(u1, u3, l(&voc, "x")).unwrap();
    g.add_edge(u1, u4, l(&voc, "z")).unwrap();
    g.add_edge(u2, u4, l(&voc, "y")).unwrap();
    (g, voc)
}

/// Graph `G'1` of Figure 4 (already a triangle, so identical to its extended
/// graph): vertices `A, B, C`, edges `(v1,v2):x`, `(v1,v3):y`, `(v2,v3):?`.
///
/// Figure 4 draws the `(v2,v3)` edge as virtual; the concrete graphs that the
/// example reasons about are the two labelled paths below, which have
/// `GED = 2` and `GBD = 2` exactly as in Example 4.
pub fn figure4_g1() -> (Graph, Vocabulary) {
    let voc = example_vocabulary();
    let mut g = Graph::new();
    g.set_name("figure4-G1");
    let v1 = g.add_vertex(l(&voc, "A"));
    let v2 = g.add_vertex(l(&voc, "B"));
    let v3 = g.add_vertex(l(&voc, "C"));
    g.add_edge(v1, v2, l(&voc, "x")).unwrap();
    g.add_edge(v1, v3, l(&voc, "y")).unwrap();
    (g, voc)
}

/// Graph `G'2` of Figure 4: as [`figure4_g1`] but with the two edge labels
/// swapped (`(u1,u2):y`, `(u1,u3):x`).
pub fn figure4_g2() -> (Graph, Vocabulary) {
    let voc = example_vocabulary();
    let mut g = Graph::new();
    g.set_name("figure4-G2");
    let u1 = g.add_vertex(l(&voc, "A"));
    let u2 = g.add_vertex(l(&voc, "B"));
    let u3 = g.add_vertex(l(&voc, "C"));
    g.add_edge(u1, u2, l(&voc, "y")).unwrap();
    g.add_edge(u1, u3, l(&voc, "x")).unwrap();
    (g, voc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_graphs_match_the_paper() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        assert_eq!(g1.vertex_count(), 3);
        assert_eq!(g1.edge_count(), 3);
        assert_eq!(g2.vertex_count(), 4);
        assert_eq!(g2.edge_count(), 3);
    }

    #[test]
    fn figure4_graphs_differ_only_in_edge_labels() {
        let (g1, _) = figure4_g1();
        let (g2, _) = figure4_g2();
        assert_eq!(g1.vertex_count(), g2.vertex_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(g1.sorted_vertex_labels(), g2.sorted_vertex_labels());
        assert_eq!(g1.sorted_edge_labels(), g2.sorted_edge_labels());
    }

    #[test]
    fn vocabulary_contains_all_example_labels() {
        let voc = example_vocabulary();
        for name in ["A", "B", "C", "x", "y", "z"] {
            assert!(voc.get(name).is_some(), "missing label {name}");
        }
    }
}
