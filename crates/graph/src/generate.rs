//! Random labeled graph generators.
//!
//! Two families are needed for the paper's evaluation:
//!
//! * **Uniform (non-scale-free) connected graphs** — every vertex `v_i`
//!   (`i > 0`) is first connected to a random earlier vertex to guarantee
//!   connectivity, then the remaining edges are placed uniformly at random
//!   between non-adjacent vertex pairs. This mirrors the Syn-2 construction
//!   of Appendix I ("for random graphs, we randomly add edges between
//!   in-adjacent vertices").
//! * **Scale-free connected graphs** — same spanning construction, then a
//!   constant number of extra edges per vertex are attached by *preferential
//!   attachment* (endpoint picked with probability proportional to degree),
//!   mirroring Appendix I's Syn-1 construction and yielding a power-law
//!   degree distribution with average degree `O(log n)` (Theorem 5).
//!
//! Labels are drawn from configurable alphabets with either a uniform or a
//! Zipf-like skewed distribution (real chemical datasets such as AIDS are
//! heavily skewed towards a handful of atom types).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{GraphError, Result};
use crate::graph::{Graph, VertexId};
use crate::label::{Label, LabelAlphabets};

/// How labels are drawn from their alphabet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelDistribution {
    /// Every label of the alphabet is equally likely.
    Uniform,
    /// Zipf-like skew: label `k` (0-based) has weight `1 / (k + 1)^s`.
    /// Chemical graphs are well approximated by `s ≈ 1`.
    Zipf(f64),
}

impl LabelDistribution {
    /// Samples a label index in `0..alphabet_size`.
    pub fn sample<R: Rng + ?Sized>(&self, alphabet_size: usize, rng: &mut R) -> usize {
        assert!(alphabet_size > 0, "label alphabet must be non-empty");
        match *self {
            LabelDistribution::Uniform => rng.gen_range(0..alphabet_size),
            LabelDistribution::Zipf(s) => {
                // Inverse-CDF sampling over the finite Zipf weights.
                let weights: Vec<f64> = (0..alphabet_size)
                    .map(|k| 1.0 / ((k + 1) as f64).powf(s))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut u = rng.gen::<f64>() * total;
                for (k, w) in weights.iter().enumerate() {
                    if u < *w {
                        return k;
                    }
                    u -= *w;
                }
                alphabet_size - 1
            }
        }
    }
}

/// Configuration of the random graph generators.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Target average degree `d` (the generator adds
    /// `⌈n·d/2⌉ − (n−1)` extra edges on top of the spanning tree).
    pub average_degree: f64,
    /// Whether extra edges are attached preferentially (scale-free, Syn-1) or
    /// uniformly (Syn-2).
    pub scale_free: bool,
    /// Vertex / edge label alphabet sizes.
    pub alphabets: LabelAlphabets,
    /// Distribution of vertex labels over the alphabet.
    pub vertex_label_distribution: LabelDistribution,
    /// Distribution of edge labels over the alphabet.
    pub edge_label_distribution: LabelDistribution,
    /// Offset added to edge-label ids so that vertex and edge labels occupy
    /// disjoint id ranges (convenient for statistics; the model only needs
    /// `|LV|` and `|LE|`).
    pub edge_label_offset: u32,
}

impl GeneratorConfig {
    /// A reasonable default for a small chemistry-like graph.
    pub fn new(vertices: usize, average_degree: f64) -> Self {
        GeneratorConfig {
            vertices,
            average_degree,
            scale_free: true,
            alphabets: LabelAlphabets::new(8, 3),
            vertex_label_distribution: LabelDistribution::Zipf(1.0),
            edge_label_distribution: LabelDistribution::Uniform,
            edge_label_offset: 1000,
        }
    }

    /// Switches between scale-free and uniform edge placement.
    pub fn with_scale_free(mut self, scale_free: bool) -> Self {
        self.scale_free = scale_free;
        self
    }

    /// Overrides the label alphabets.
    pub fn with_alphabets(mut self, alphabets: LabelAlphabets) -> Self {
        self.alphabets = alphabets;
        self
    }

    /// Overrides the vertex-label distribution.
    pub fn with_vertex_distribution(mut self, d: LabelDistribution) -> Self {
        self.vertex_label_distribution = d;
        self
    }

    /// Overrides the edge-label distribution.
    pub fn with_edge_distribution(mut self, d: LabelDistribution) -> Self {
        self.edge_label_distribution = d;
        self
    }

    fn vertex_label<R: Rng + ?Sized>(&self, rng: &mut R) -> Label {
        Label::new(
            self.vertex_label_distribution
                .sample(self.alphabets.vertex_labels, rng) as u32,
        )
    }

    fn edge_label<R: Rng + ?Sized>(&self, rng: &mut R) -> Label {
        Label::new(
            self.edge_label_offset
                + self
                    .edge_label_distribution
                    .sample(self.alphabets.edge_labels, rng) as u32,
        )
    }

    /// Generates one connected labeled graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        if self.vertices == 0 {
            return Ok(Graph::new());
        }
        let n = self.vertices;
        let mut g = Graph::with_capacity(n);
        for _ in 0..n {
            let label = self.vertex_label(rng);
            g.add_vertex(label);
        }
        // Spanning construction: connect v_i to a random earlier vertex.
        let mut degrees = vec![0usize; n];
        for i in 1..n {
            let j = rng.gen_range(0..i);
            let label = self.edge_label(rng);
            g.add_edge(VertexId::new(i as u32), VertexId::new(j as u32), label)?;
            degrees[i] += 1;
            degrees[j] += 1;
        }
        // Extra edges to reach the target average degree.
        let target_edges = ((n as f64 * self.average_degree) / 2.0).round() as usize;
        let max_edges = n * (n - 1) / 2;
        let target_edges = target_edges.min(max_edges);
        let mut budget = target_edges.saturating_sub(g.edge_count());
        let mut attempts = 0usize;
        let max_attempts = budget.saturating_mul(50) + 1000;
        while budget > 0 && attempts < max_attempts {
            attempts += 1;
            let a = rng.gen_range(0..n);
            let b = if self.scale_free {
                preferential_pick(&degrees, a, rng)
            } else {
                rng.gen_range(0..n)
            };
            if a == b {
                continue;
            }
            let (u, v) = (VertexId::new(a as u32), VertexId::new(b as u32));
            if g.has_edge(u, v) {
                continue;
            }
            let label = self.edge_label(rng);
            g.add_edge(u, v, label)?;
            degrees[a] += 1;
            degrees[b] += 1;
            budget -= 1;
        }
        if budget > 0 && g.edge_count() < max_edges {
            return Err(GraphError::Generation(format!(
                "could not place {budget} remaining edges after {attempts} attempts"
            )));
        }
        Ok(g)
    }

    /// Generates `count` independent graphs.
    pub fn generate_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Result<Vec<Graph>> {
        (0..count).map(|_| self.generate(rng)).collect()
    }
}

/// Picks a vertex with probability proportional to its degree, excluding
/// `avoid`. Falls back to a uniform pick when all degrees are zero.
fn preferential_pick<R: Rng + ?Sized>(degrees: &[usize], avoid: usize, rng: &mut R) -> usize {
    let total: usize = degrees
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != avoid)
        .map(|(_, d)| *d)
        .sum();
    if total == 0 {
        let candidates: Vec<usize> = (0..degrees.len()).filter(|&i| i != avoid).collect();
        return *candidates.choose(rng).unwrap_or(&avoid);
    }
    let mut target = rng.gen_range(0..total);
    for (i, &d) in degrees.iter().enumerate() {
        if i == avoid {
            continue;
        }
        if target < d {
            return i;
        }
        target -= d;
    }
    // Numerically unreachable; return the last non-avoided vertex.
    if avoid == degrees.len() - 1 {
        degrees.len() - 2
    } else {
        degrees.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_are_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GeneratorConfig::new(40, 3.0);
        let g = cfg.generate(&mut rng).unwrap();
        assert_eq!(g.vertex_count(), 40);
        assert!(g.is_connected());
        assert!(g.average_degree() >= 2.0 && g.average_degree() <= 4.0);
    }

    #[test]
    fn zero_vertices_yields_empty_graph() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GeneratorConfig::new(0, 3.0);
        let g = cfg.generate(&mut rng).unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn single_vertex_graph_has_no_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GeneratorConfig::new(1, 3.0);
        let g = cfg.generate(&mut rng).unwrap();
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn scale_free_graphs_have_heavier_degree_tail() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 400;
        let sf = GeneratorConfig::new(n, 4.0)
            .with_scale_free(true)
            .generate(&mut rng)
            .unwrap();
        let uni = GeneratorConfig::new(n, 4.0)
            .with_scale_free(false)
            .generate(&mut rng)
            .unwrap();
        assert!(
            sf.max_degree() > uni.max_degree(),
            "preferential attachment should concentrate degree (sf max {} vs uniform max {})",
            sf.max_degree(),
            uni.max_degree()
        );
    }

    #[test]
    fn labels_respect_alphabet_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = GeneratorConfig::new(60, 3.0).with_alphabets(LabelAlphabets::new(4, 2));
        let g = cfg.generate(&mut rng).unwrap();
        for &l in g.vertex_labels() {
            assert!(l.id() < 4);
        }
        for (_, l) in g.edges() {
            assert!(l.id() >= cfg.edge_label_offset && l.id() < cfg.edge_label_offset + 2);
        }
    }

    #[test]
    fn zipf_prefers_small_label_ids() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = LabelDistribution::Zipf(1.5);
        let mut counts = [0usize; 6];
        for _ in 0..4000 {
            counts[dist.sample(6, &mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[5] * 3,
            "zipf head should dominate: {counts:?}"
        );
    }

    #[test]
    fn uniform_distribution_covers_alphabet() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = LabelDistribution::Uniform;
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[dist.sample(5, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generate_many_produces_independent_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = GeneratorConfig::new(20, 2.5);
        let graphs = cfg.generate_many(5, &mut rng).unwrap();
        assert_eq!(graphs.len(), 5);
        // They should not all be identical (overwhelmingly unlikely).
        let first_edges: Vec<_> = graphs[0].edges().collect();
        assert!(graphs
            .iter()
            .skip(1)
            .any(|g| g.edges().collect::<Vec<_>>() != first_edges));
    }
}
