//! Branches and the Graph Branch Distance (GBD).
//!
//! A *branch* rooted at vertex `v` is `B(v) = {L(v), N(v)}` where `N(v)` is
//! the sorted multiset of the labels of the edges incident to `v`
//! (Definition 2). Two branches are isomorphic iff both components are equal
//! (Definition 3). The Graph Branch Distance between graphs `G1` and `G2` is
//!
//! ```text
//! GBD(G1, G2) = max{|V1|, |V2|} − |B_G1 ∩ B_G2|          (Definition 4)
//! ```
//!
//! where the intersection is a *multiset* intersection of the two sorted
//! branch multisets. With pre-computed branch multisets the intersection is a
//! single linear merge, giving the `O(nd)` online cost claimed in Section III.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, VertexId};
use crate::label::Label;

/// A branch `B(v) = {L(v), N(v)}` (Definition 2).
///
/// Branches are ordered lexicographically — first by the root vertex label,
/// then by the sorted incident-edge label list — matching the
/// `std::lexicographical_compare` ordering the paper uses to keep branch
/// multisets sorted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Branch {
    vertex_label: Label,
    edge_labels: Vec<Label>,
}

impl Branch {
    /// Builds a branch from a root label and an (unsorted) list of incident
    /// edge labels. The list is sorted on construction.
    pub fn new(vertex_label: Label, mut edge_labels: Vec<Label>) -> Self {
        edge_labels.sort_unstable();
        Branch {
            vertex_label,
            edge_labels,
        }
    }

    /// Extracts the branch rooted at `v` in `graph`.
    pub fn of_vertex(graph: &Graph, v: VertexId) -> Self {
        let vertex_label = graph
            .vertex_label(v)
            .expect("vertex id obtained from the same graph");
        let edge_labels = graph
            .neighbors(v)
            .expect("vertex id obtained from the same graph")
            .iter()
            .map(|&(_, l)| l)
            .collect();
        Branch::new(vertex_label, edge_labels)
    }

    /// The label of the root vertex `L(v)`.
    pub fn vertex_label(&self) -> Label {
        self.vertex_label
    }

    /// The sorted multiset `N(v)` of incident edge labels.
    pub fn edge_labels(&self) -> &[Label] {
        &self.edge_labels
    }

    /// Degree of the root vertex (size of `N(v)`).
    pub fn degree(&self) -> usize {
        self.edge_labels.len()
    }

    /// Branch isomorphism (Definition 3): equality of both components.
    pub fn is_isomorphic(&self, other: &Branch) -> bool {
        self == other
    }
}

/// The sorted multiset `B_G` of all branches of a graph.
///
/// This is the pre-computed auxiliary structure stored alongside every
/// database graph so that the online stage only pays the linear merge.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BranchMultiset {
    branches: Vec<Branch>,
}

impl BranchMultiset {
    /// Extracts and sorts all branches of `graph` in `O(Σ d_i log n)` time.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut branches: Vec<Branch> = graph
            .vertices()
            .map(|v| Branch::of_vertex(graph, v))
            .collect();
        branches.sort_unstable();
        BranchMultiset { branches }
    }

    /// Builds a multiset directly from branches (sorting them).
    pub fn from_branches(mut branches: Vec<Branch>) -> Self {
        branches.sort_unstable();
        BranchMultiset { branches }
    }

    /// Builds a multiset from branches that are **already sorted** — the
    /// storage-engine load path, which expands catalogued branches in sorted
    /// rank order and must not pay a second `O(n log n)` comparison sort.
    ///
    /// Sortedness is debug-asserted; in release builds an unsorted input
    /// would silently produce wrong intersections, so callers must guarantee
    /// the order.
    pub fn from_sorted_branches(branches: Vec<Branch>) -> Self {
        debug_assert!(branches.windows(2).all(|w| w[0] <= w[1]));
        BranchMultiset { branches }
    }

    /// Number of branches, i.e. the number of vertices of the source graph.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Returns `true` for the empty multiset.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// The branches in sorted order.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Size of the multiset intersection `|B_G1 ∩ B_G2|`, computed with a
    /// single merge over the two sorted multisets.
    pub fn intersection_size(&self, other: &BranchMultiset) -> usize {
        let mut i = 0;
        let mut j = 0;
        let mut common = 0;
        while i < self.branches.len() && j < other.branches.len() {
            match self.branches[i].cmp(&other.branches[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        common
    }

    /// Graph Branch Distance against another pre-computed multiset
    /// (Definition 4).
    pub fn gbd(&self, other: &BranchMultiset) -> usize {
        self.len().max(other.len()) - self.intersection_size(other)
    }

    /// Weighted variant used by the GBDA-V2 ablation (Equation 26):
    /// `VGBD = max{|V1|, |V2|} − w · |B_G1 ∩ B_G2|`.
    pub fn weighted_gbd(&self, other: &BranchMultiset, w: f64) -> f64 {
        self.len().max(other.len()) as f64 - w * self.intersection_size(other) as f64
    }
}

/// Graph Branch Distance between two graphs (Definition 4), extracting the
/// branch multisets on the fly.
///
/// ```
/// use gbd_graph::paper_examples::{figure1_g1, figure1_g2};
/// use gbd_graph::graph_branch_distance;
///
/// let (g1, _) = figure1_g1();
/// let (g2, _) = figure1_g2();
/// assert_eq!(graph_branch_distance(&g1, &g2), 3); // Example 2
/// ```
pub fn graph_branch_distance(g1: &Graph, g2: &Graph) -> usize {
    BranchMultiset::from_graph(g1).gbd(&BranchMultiset::from_graph(g2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples::{figure1_g1, figure1_g2, figure4_g1, figure4_g2};

    #[test]
    fn branch_sorts_edge_labels_on_construction() {
        let b = Branch::new(
            Label::new(0),
            vec![Label::new(5), Label::new(2), Label::new(9)],
        );
        assert_eq!(
            b.edge_labels(),
            &[Label::new(2), Label::new(5), Label::new(9)]
        );
        assert_eq!(b.degree(), 3);
    }

    #[test]
    fn branch_isomorphism_matches_definition_3() {
        let a = Branch::new(Label::new(0), vec![Label::new(1), Label::new(2)]);
        let b = Branch::new(Label::new(0), vec![Label::new(2), Label::new(1)]);
        let c = Branch::new(Label::new(0), vec![Label::new(1)]);
        let d = Branch::new(Label::new(3), vec![Label::new(1), Label::new(2)]);
        assert!(a.is_isomorphic(&b));
        assert!(!a.is_isomorphic(&c));
        assert!(!a.is_isomorphic(&d));
    }

    #[test]
    fn example_2_branches_of_figure_1() {
        let (g1, voc) = figure1_g1();
        let ms = BranchMultiset::from_graph(&g1);
        assert_eq!(ms.len(), 3);
        // B(v1) = {A; y, y}
        let y = voc.get("y").unwrap();
        let a = voc.get("A").unwrap();
        let expected = Branch::new(a, vec![y, y]);
        assert!(ms.branches().contains(&expected));
    }

    #[test]
    fn example_2_gbd_is_three() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let b1 = BranchMultiset::from_graph(&g1);
        let b2 = BranchMultiset::from_graph(&g2);
        // Only B(v2) = {C; y, z} ≃ B(u4).
        assert_eq!(b1.intersection_size(&b2), 1);
        assert_eq!(b1.gbd(&b2), 3);
        assert_eq!(graph_branch_distance(&g1, &g2), 3);
        // GBD is symmetric.
        assert_eq!(graph_branch_distance(&g2, &g1), 3);
    }

    #[test]
    fn example_4_gbd_is_two() {
        let (g1, _) = figure4_g1();
        let (g2, _) = figure4_g2();
        assert_eq!(graph_branch_distance(&g1, &g2), 2);
    }

    #[test]
    fn gbd_of_identical_graphs_is_zero() {
        let (g1, _) = figure1_g1();
        assert_eq!(graph_branch_distance(&g1, &g1.clone()), 0);
    }

    #[test]
    fn gbd_against_empty_graph_is_vertex_count() {
        let (g1, _) = figure1_g1();
        let empty = Graph::new();
        assert_eq!(graph_branch_distance(&g1, &empty), 3);
        assert_eq!(graph_branch_distance(&empty, &empty), 0);
    }

    #[test]
    fn multiset_intersection_respects_multiplicity() {
        let b = |v: u32, e: &[u32]| {
            Branch::new(Label::new(v), e.iter().map(|&x| Label::new(x)).collect())
        };
        let m1 = BranchMultiset::from_branches(vec![b(0, &[1]), b(0, &[1]), b(2, &[3])]);
        let m2 = BranchMultiset::from_branches(vec![b(0, &[1]), b(2, &[3]), b(2, &[3])]);
        assert_eq!(m1.intersection_size(&m2), 2);
        assert_eq!(m1.gbd(&m2), 1);
    }

    #[test]
    fn weighted_gbd_matches_equation_26() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let b1 = BranchMultiset::from_graph(&g1);
        let b2 = BranchMultiset::from_graph(&g2);
        // max{3,4} = 4, |∩| = 1.
        assert!((b1.weighted_gbd(&b2, 1.0) - 3.0).abs() < 1e-12);
        assert!((b1.weighted_gbd(&b2, 0.5) - 3.5).abs() < 1e-12);
        assert!((b1.weighted_gbd(&b2, 0.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn branches_of_isolated_vertices_have_no_edge_labels() {
        let mut g = Graph::new();
        let v = g.add_vertex(Label::new(7));
        let b = Branch::of_vertex(&g, v);
        assert_eq!(b.degree(), 0);
        assert_eq!(b.vertex_label(), Label::new(7));
    }
}
