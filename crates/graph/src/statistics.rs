//! Graph and dataset statistics (Table III).
//!
//! The paper characterises each dataset by the number of graphs, the number
//! of query graphs, the maximal numbers of vertices and edges, the average
//! degree and whether the degree distribution is scale-free (power law).
//! This module computes all of those from a collection of graphs, including
//! a simple log–log least-squares power-law fit used as the scale-free test.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::label::Label;

/// Statistics of a single graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average degree `2|E|/|V|`.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Whether the graph is connected.
    pub connected: bool,
}

impl GraphStats {
    /// Computes the statistics of `graph`.
    pub fn compute(graph: &Graph) -> Self {
        GraphStats {
            vertices: graph.vertex_count(),
            edges: graph.edge_count(),
            average_degree: graph.average_degree(),
            max_degree: graph.max_degree(),
            connected: graph.is_connected(),
        }
    }
}

/// Result of fitting `log f(k) = α − δ·log k` over the degree histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Estimated exponent `δ` (scale-free graphs typically have `2 < δ < 3`,
    /// small labelled graphs often land below that but still decay).
    pub exponent: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
    /// Number of distinct degrees used in the fit.
    pub support: usize,
}

/// Statistics of a whole dataset (one row of Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of graphs `|D|`.
    pub graph_count: usize,
    /// Maximum number of vertices `V_m`.
    pub max_vertices: usize,
    /// Maximum number of edges `E_m`.
    pub max_edges: usize,
    /// Mean of the per-graph average degrees `d`.
    pub average_degree: f64,
    /// Number of distinct vertex labels `|LV|`.
    pub vertex_label_count: usize,
    /// Number of distinct edge labels `|LE|`.
    pub edge_label_count: usize,
    /// Power-law fit over the pooled degree distribution.
    pub power_law: Option<PowerLawFit>,
}

impl DatasetStats {
    /// Computes dataset statistics over `graphs`.
    pub fn compute<'a>(graphs: impl IntoIterator<Item = &'a Graph>) -> Self {
        let mut graph_count = 0usize;
        let mut max_vertices = 0usize;
        let mut max_edges = 0usize;
        let mut degree_sum = 0.0f64;
        let mut degree_histogram: Vec<usize> = Vec::new();
        let mut vertex_labels: Vec<Label> = Vec::new();
        let mut edge_labels: Vec<Label> = Vec::new();

        for g in graphs {
            graph_count += 1;
            max_vertices = max_vertices.max(g.vertex_count());
            max_edges = max_edges.max(g.edge_count());
            degree_sum += g.average_degree();
            for d in g.degrees() {
                if d >= degree_histogram.len() {
                    degree_histogram.resize(d + 1, 0);
                }
                degree_histogram[d] += 1;
            }
            vertex_labels.extend_from_slice(g.vertex_labels());
            edge_labels.extend(g.edges().map(|(_, l)| l));
        }
        vertex_labels.sort_unstable();
        vertex_labels.dedup();
        edge_labels.sort_unstable();
        edge_labels.dedup();

        let average_degree = if graph_count == 0 {
            0.0
        } else {
            degree_sum / graph_count as f64
        };
        let power_law = fit_power_law(&degree_histogram);

        DatasetStats {
            graph_count,
            max_vertices,
            max_edges,
            average_degree,
            vertex_label_count: vertex_labels.len(),
            edge_label_count: edge_labels.len(),
            power_law,
        }
    }

    /// Scale-free heuristic: the pooled degree distribution decays like a
    /// power law with a reasonable fit.
    pub fn is_scale_free(&self) -> bool {
        match self.power_law {
            Some(fit) => fit.exponent > 0.8 && fit.r_squared > 0.5 && fit.support >= 3,
            None => false,
        }
    }
}

/// Least-squares fit of `log f(k)` against `log k` over degrees `k ≥ 1` with
/// non-zero frequency. Returns `None` when fewer than three distinct degrees
/// are populated.
pub fn fit_power_law(degree_histogram: &[usize]) -> Option<PowerLawFit> {
    let points: Vec<(f64, f64)> = degree_histogram
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &count)| count > 0)
        .map(|(k, &count)| ((k as f64).ln(), (count as f64).ln()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let sum_x: f64 = points.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = points.iter().map(|(_, y)| y).sum();
    let sum_xx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sum_xy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sum_xy - sum_x * sum_y) / denom;
    let intercept = (sum_y - slope * sum_x) / n;
    let mean_y = sum_y / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-12 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(PowerLawFit {
        exponent: -slope,
        r_squared,
        support: points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GeneratorConfig;
    use crate::paper_examples::figure1_g1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn graph_stats_of_figure_1() {
        let (g1, _) = figure1_g1();
        let s = GraphStats::compute(&g1);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert!((s.average_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
        assert!(s.connected);
    }

    #[test]
    fn dataset_stats_aggregate_correctly() {
        let (g1, _) = figure1_g1();
        let (g2, _) = crate::paper_examples::figure1_g2();
        let stats = DatasetStats::compute([&g1, &g2]);
        assert_eq!(stats.graph_count, 2);
        assert_eq!(stats.max_vertices, 4);
        assert_eq!(stats.max_edges, 3);
        assert_eq!(stats.vertex_label_count, 3);
        assert_eq!(stats.edge_label_count, 3);
        assert!(stats.average_degree > 1.0 && stats.average_degree < 2.1);
    }

    #[test]
    fn empty_dataset_has_zero_stats() {
        let stats = DatasetStats::compute(std::iter::empty());
        assert_eq!(stats.graph_count, 0);
        assert_eq!(stats.max_vertices, 0);
        assert_eq!(stats.average_degree, 0.0);
        assert!(stats.power_law.is_none());
        assert!(!stats.is_scale_free());
    }

    #[test]
    fn scale_free_generator_is_detected_as_scale_free() {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = GeneratorConfig::new(600, 5.0).with_scale_free(true);
        let graphs: Vec<_> = (0..3).map(|_| cfg.generate(&mut rng).unwrap()).collect();
        let stats = DatasetStats::compute(graphs.iter());
        assert!(
            stats.is_scale_free(),
            "preferential-attachment graphs should look scale-free: {:?}",
            stats.power_law
        );
    }

    #[test]
    fn regular_graph_is_not_scale_free() {
        // A long cycle: every vertex has degree exactly 2, so the degree
        // histogram has a single populated bucket — no power law.
        let mut g = Graph::new();
        let n = 50;
        let ids: Vec<_> = (0..n).map(|_| g.add_vertex(Label::new(0))).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n], Label::new(1)).unwrap();
        }
        let stats = DatasetStats::compute([&g]);
        assert!(!stats.is_scale_free());
    }

    #[test]
    fn power_law_fit_recovers_synthetic_exponent() {
        // Build a histogram that exactly follows f(k) = 10000 · k^{-2.5}.
        let histogram: Vec<usize> = (0..40)
            .map(|k| {
                if k == 0 {
                    0
                } else {
                    ((10000.0 * (k as f64).powf(-2.5)).round() as usize).max(1)
                }
            })
            .collect();
        let fit = fit_power_law(&histogram).unwrap();
        assert!(
            (fit.exponent - 2.5).abs() < 0.2,
            "exponent {}",
            fit.exponent
        );
        assert!(fit.r_squared > 0.95);
    }

    #[test]
    fn power_law_fit_requires_enough_support() {
        assert!(fit_power_law(&[0, 5]).is_none());
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[0, 3, 2, 1]).is_some());
    }
}
