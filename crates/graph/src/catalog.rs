//! Interned branch storage: [`BranchCatalog`] and [`FlatBranchSet`].
//!
//! [`BranchMultiset`] is the faithful construction-time representation of
//! `B_G`, but comparing two multisets walks `Vec<Branch>` objects whose
//! heap-allocated edge-label lists defeat cache locality. This module interns
//! every distinct [`Branch`] once into a [`BranchCatalog`] (a dense `u32` id
//! per branch) and re-expresses each multiset as a [`FlatBranchSet`]: sorted
//! `(id, count)` runs over plain integers. The GBD merge of Definition 4 then
//! becomes a branchless two-pointer walk over two integer slices — the same
//! `O(nd)` asymptotics as before, with a far smaller constant.
//!
//! Query graphs may contain branches the catalog has never seen. A read-only
//! lookup maps those to the sentinel [`UNKNOWN_BRANCH_ID`], which matches
//! *nothing* during a merge (an unknown branch cannot be isomorphic to any
//! catalogued branch). Comparing two flat sets that both carry unknowns is
//! therefore conservative; within the engine this never happens, because the
//! database side is always fully interned.

use std::collections::HashMap;

use crate::branch::{Branch, BranchMultiset};
use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Sentinel id assigned by [`BranchCatalog::flatten_lookup`] to branches that
/// are absent from the catalog. Runs with this id never match during a merge.
pub const UNKNOWN_BRANCH_ID: u32 = u32::MAX;

/// One run of a [`FlatBranchSet`]: `count` copies of the branch interned at
/// `id` in the owning [`BranchCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRun {
    /// Dense catalog id of the branch (or [`UNKNOWN_BRANCH_ID`]).
    pub id: u32,
    /// Multiplicity of the branch in the multiset.
    pub count: u32,
}

/// Interns every distinct [`Branch`] to a dense `u32` id.
///
/// Ids are assigned in first-seen order and are stable for the lifetime of
/// the catalog; `branch(id)` recovers the original branch.
#[derive(Debug, Clone, Default)]
pub struct BranchCatalog {
    ids: HashMap<Branch, u32>,
    branches: Vec<Branch>,
}

impl BranchCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        BranchCatalog::default()
    }

    /// Rebuilds a catalog from its id-ordered branch list (the storage-engine
    /// load path: ids are assigned by position, `branches[i]` gets id `i`).
    ///
    /// # Errors
    /// Returns [`GraphError::Parse`] when the list contains duplicate
    /// branches (two ids for one branch would corrupt every flat set) or
    /// exhausts the id space.
    pub fn from_branches(branches: Vec<Branch>) -> Result<Self> {
        if branches.len() >= UNKNOWN_BRANCH_ID as usize {
            return Err(GraphError::Parse(
                "catalog exceeds the branch id space".into(),
            ));
        }
        let mut ids = HashMap::with_capacity(branches.len());
        for (id, branch) in branches.iter().enumerate() {
            if ids.insert(branch.clone(), id as u32).is_some() {
                return Err(GraphError::Parse(format!(
                    "duplicate branch at catalog id {id}"
                )));
            }
        }
        Ok(BranchCatalog { ids, branches })
    }

    /// The interned branches in id order (`branches()[i]` has id `i`).
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Number of distinct branches interned so far.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Returns `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// The id of `branch`, if it has been interned.
    pub fn id_of(&self, branch: &Branch) -> Option<u32> {
        self.ids.get(branch).copied()
    }

    /// The branch interned at `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this catalog.
    pub fn branch(&self, id: u32) -> &Branch {
        &self.branches[id as usize]
    }

    /// Interns `branch`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, branch: Branch) -> u32 {
        if let Some(&id) = self.ids.get(&branch) {
            return id;
        }
        let id = u32::try_from(self.branches.len()).expect("fewer than 2^32 distinct branches");
        assert!(id != UNKNOWN_BRANCH_ID, "catalog exhausted the id space");
        self.branches.push(branch.clone());
        self.ids.insert(branch, id);
        id
    }

    /// Converts a multiset to its flat form, interning unseen branches.
    ///
    /// Used while building a database: after every stored graph has been
    /// flattened, the catalog holds exactly the branch vocabulary of the
    /// database.
    pub fn flatten(&mut self, multiset: &BranchMultiset) -> FlatBranchSet {
        flatten_runs(multiset, |branch| Some(self.intern(branch.clone())))
    }

    /// Converts a multiset to its flat form **without** mutating the catalog.
    ///
    /// Branches absent from the catalog collapse into a single
    /// [`UNKNOWN_BRANCH_ID`] run; they can never match a catalogued branch,
    /// so a merge against a fully interned set stays exact. This is the
    /// query-side conversion: it is lock-free and shareable across threads.
    pub fn flatten_lookup(&self, multiset: &BranchMultiset) -> FlatBranchSet {
        flatten_runs(multiset, |branch| self.id_of(branch))
    }

    /// Flattens the branch multiset of `graph` without mutating the catalog.
    pub fn flatten_graph(&self, graph: &Graph) -> FlatBranchSet {
        self.flatten_lookup(&BranchMultiset::from_graph(graph))
    }
}

/// Run-length-encodes a sorted multiset into id-sorted runs. Branches for
/// which `id_for` returns `None` accumulate into one trailing
/// [`UNKNOWN_BRANCH_ID`] run.
fn flatten_runs(
    multiset: &BranchMultiset,
    mut id_for: impl FnMut(&Branch) -> Option<u32>,
) -> FlatBranchSet {
    let branches = multiset.branches();
    let mut runs: Vec<BranchRun> = Vec::new();
    let mut unknown = 0u32;
    let mut i = 0;
    while i < branches.len() {
        let mut j = i + 1;
        while j < branches.len() && branches[j] == branches[i] {
            j += 1;
        }
        let count = (j - i) as u32;
        match id_for(&branches[i]) {
            Some(id) => runs.push(BranchRun { id, count }),
            None => unknown += count,
        }
        i = j;
    }
    runs.sort_unstable_by_key(|run| run.id);
    if unknown > 0 {
        runs.push(BranchRun {
            id: UNKNOWN_BRANCH_ID,
            count: unknown,
        });
    }
    FlatBranchSet {
        runs,
        total: branches.len(),
    }
}

/// A branch multiset in flat interned form: sorted `(id, count)` runs.
///
/// Equality of ids replaces branch isomorphism, so the multiset intersection
/// of Definition 4 is a merge over two integer slices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatBranchSet {
    runs: Vec<BranchRun>,
    total: usize,
}

impl FlatBranchSet {
    /// Builds a flat set directly from runs (used by arena-backed storage).
    ///
    /// `runs` must be sorted by id with distinct ids; `total` is the number
    /// of branches, i.e. the vertex count of the source graph.
    pub fn from_runs(runs: Vec<BranchRun>, total: usize) -> Self {
        debug_assert!(runs.windows(2).all(|w| w[0].id < w[1].id));
        debug_assert_eq!(runs.iter().map(|r| r.count as usize).sum::<usize>(), total);
        FlatBranchSet { runs, total }
    }

    /// The sorted `(id, count)` runs.
    pub fn runs(&self) -> &[BranchRun] {
        &self.runs
    }

    /// Number of branches in the multiset (vertex count of the source graph).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Returns `true` for the empty multiset.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// A borrowed view, the form the arena-backed database hands out.
    pub fn as_view(&self) -> FlatBranchView<'_> {
        FlatBranchView {
            runs: &self.runs,
            total: self.total,
        }
    }

    /// Number of branches with a catalogued id (total minus the unknown run).
    pub fn known_len(&self) -> usize {
        self.as_view().known_len()
    }

    /// The runs with catalogued ids (the unknown-sentinel run stripped).
    pub fn known_runs(&self) -> &[BranchRun] {
        self.as_view().known_runs()
    }

    /// Largest multiplicity among the catalogued runs (0 when there are none).
    pub fn max_known_run_count(&self) -> u32 {
        self.as_view().max_known_run_count()
    }

    /// Multiset intersection size against another flat set.
    pub fn intersection_size(&self, other: &FlatBranchSet) -> usize {
        self.as_view().intersection_size(other.as_view())
    }

    /// Graph Branch Distance (Definition 4) against another flat set.
    pub fn gbd(&self, other: &FlatBranchSet) -> usize {
        self.as_view().gbd(other.as_view())
    }

    /// Weighted GBD of Equation 26 against another flat set.
    pub fn weighted_gbd(&self, other: &FlatBranchSet, w: f64) -> f64 {
        self.as_view().weighted_gbd(other.as_view(), w)
    }
}

/// A borrowed [`FlatBranchSet`]: runs slice plus the source vertex count.
///
/// This is what an arena-backed database returns without copying.
#[derive(Debug, Clone, Copy)]
pub struct FlatBranchView<'a> {
    runs: &'a [BranchRun],
    total: usize,
}

impl<'a> FlatBranchView<'a> {
    /// Builds a view over externally stored runs.
    ///
    /// Same preconditions as [`FlatBranchSet::from_runs`].
    pub fn new(runs: &'a [BranchRun], total: usize) -> Self {
        FlatBranchView { runs, total }
    }

    /// The sorted `(id, count)` runs.
    pub fn runs(self) -> &'a [BranchRun] {
        self.runs
    }

    /// Number of branches in the multiset.
    pub fn len(self) -> usize {
        self.total
    }

    /// Returns `true` for the empty multiset.
    pub fn is_empty(self) -> bool {
        self.total == 0
    }

    /// Number of branches with a catalogued id (total minus the unknown run).
    ///
    /// Only catalogued branches can contribute to an intersection, so this is
    /// the tightest multiset-level upper bound on `|B_Q ∩ B_G|` that needs no
    /// per-pair work: `|B_Q ∩ B_G| ≤ min(known_len(Q), known_len(G))`.
    pub fn known_len(self) -> usize {
        self.total - self.unknown_count()
    }

    /// Multiplicity of the trailing [`UNKNOWN_BRANCH_ID`] run (0 without one).
    pub fn unknown_count(self) -> usize {
        match self.runs.last() {
            Some(run) if run.id == UNKNOWN_BRANCH_ID => run.count as usize,
            _ => 0,
        }
    }

    /// The runs with catalogued ids (the unknown-sentinel run stripped).
    pub fn known_runs(self) -> &'a [BranchRun] {
        match self.runs.last() {
            Some(run) if run.id == UNKNOWN_BRANCH_ID => &self.runs[..self.runs.len() - 1],
            _ => self.runs,
        }
    }

    /// Largest multiplicity among the catalogued runs (0 when there are
    /// none). Each of the ≤ `min(d_Q, d_G)` common distinct branches
    /// contributes at most `min` of the two multiplicities, so
    /// `|B_Q ∩ B_G| ≤ min(d_Q, d_G) · min(max_run(Q), max_run(G))` — the
    /// distinct-run bound of the filter cascade.
    pub fn max_known_run_count(self) -> u32 {
        self.known_runs()
            .iter()
            .map(|run| run.count)
            .max()
            .unwrap_or(0)
    }

    /// Multiset intersection size `|B_G1 ∩ B_G2|` as a merge over integer
    /// runs. Runs tagged [`UNKNOWN_BRANCH_ID`] never match.
    pub fn intersection_size(self, other: FlatBranchView<'_>) -> usize {
        intersection_size(self.runs, other.runs)
    }

    /// Graph Branch Distance (Definition 4).
    pub fn gbd(self, other: FlatBranchView<'_>) -> usize {
        self.total.max(other.total) - self.intersection_size(other)
    }

    /// Weighted GBD of Equation 26:
    /// `VGBD = max{|V1|, |V2|} − w · |B_G1 ∩ B_G2|`.
    pub fn weighted_gbd(self, other: FlatBranchView<'_>, w: f64) -> f64 {
        self.total.max(other.total) as f64 - w * self.intersection_size(other) as f64
    }
}

/// Merge-based multiset intersection size over sorted `(id, count)` runs.
///
/// Runs tagged [`UNKNOWN_BRANCH_ID`] contribute nothing: an uncatalogued
/// branch is never isomorphic to a catalogued one, and two unknowns from
/// different graphs are not comparable by id.
pub fn intersection_size(a: &[BranchRun], b: &[BranchRun]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        let (ra, rb) = (a[i], b[j]);
        if ra.id == UNKNOWN_BRANCH_ID || rb.id == UNKNOWN_BRANCH_ID {
            break; // unknowns sort last and match nothing
        }
        match ra.id.cmp(&rb.id) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += ra.count.min(rb.count) as usize;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::paper_examples::{figure1_g1, figure1_g2};

    fn branch(v: u32, edges: &[u32]) -> Branch {
        Branch::new(
            Label::new(v),
            edges.iter().map(|&e| Label::new(e)).collect(),
        )
    }

    #[test]
    fn intern_assigns_dense_stable_ids() {
        let mut catalog = BranchCatalog::new();
        let a = catalog.intern(branch(0, &[1, 2]));
        let b = catalog.intern(branch(1, &[]));
        let a_again = catalog.intern(branch(0, &[2, 1])); // same after sorting
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a_again);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.branch(a), &branch(0, &[1, 2]));
        assert_eq!(catalog.id_of(&branch(1, &[])), Some(1));
        assert_eq!(catalog.id_of(&branch(9, &[])), None);
    }

    #[test]
    fn flat_gbd_matches_multiset_gbd_on_paper_example() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m1 = BranchMultiset::from_graph(&g1);
        let m2 = BranchMultiset::from_graph(&g2);
        let mut catalog = BranchCatalog::new();
        let f1 = catalog.flatten(&m1);
        let f2 = catalog.flatten(&m2);
        assert_eq!(f1.len(), 3);
        assert_eq!(f2.len(), 4);
        assert_eq!(f1.intersection_size(&f2), m1.intersection_size(&m2));
        assert_eq!(f1.gbd(&f2), m1.gbd(&m2));
        assert_eq!(f1.gbd(&f2), 3); // Example 2
        assert_eq!(f2.gbd(&f1), 3); // symmetric
    }

    #[test]
    fn flat_weighted_gbd_matches_equation_26() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m1 = BranchMultiset::from_graph(&g1);
        let m2 = BranchMultiset::from_graph(&g2);
        let mut catalog = BranchCatalog::new();
        let f1 = catalog.flatten(&m1);
        let f2 = catalog.flatten(&m2);
        for w in [0.0, 0.1, 0.5, 1.0] {
            assert_eq!(f1.weighted_gbd(&f2, w), m1.weighted_gbd(&m2, w));
        }
    }

    #[test]
    fn runs_respect_multiplicity() {
        let mut catalog = BranchCatalog::new();
        let multiset =
            BranchMultiset::from_branches(vec![branch(0, &[1]), branch(0, &[1]), branch(2, &[3])]);
        let flat = catalog.flatten(&multiset);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat.runs().len(), 2);
        let other = catalog.flatten(&BranchMultiset::from_branches(vec![
            branch(0, &[1]),
            branch(2, &[3]),
            branch(2, &[3]),
        ]));
        assert_eq!(flat.intersection_size(&other), 2);
        assert_eq!(flat.gbd(&other), 1);
    }

    #[test]
    fn lookup_maps_unseen_branches_to_the_sentinel() {
        let (g1, _) = figure1_g1();
        let mut catalog = BranchCatalog::new();
        let db_side = catalog.flatten(&BranchMultiset::from_graph(&g1));
        // A query whose branches are partly unknown to the catalog.
        let query = BranchMultiset::from_branches(vec![
            branch(1000, &[1]),
            branch(1000, &[1]),
            branch(1001, &[]),
        ]);
        let flat = catalog.flatten_lookup(&query);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat.runs().len(), 1);
        assert_eq!(flat.runs()[0].id, UNKNOWN_BRANCH_ID);
        assert_eq!(flat.runs()[0].count, 3);
        // Unknown branches match nothing on the catalogued side.
        assert_eq!(flat.intersection_size(&db_side), 0);
        assert_eq!(flat.gbd(&db_side), 3);
        assert_eq!(catalog.id_of(&branch(1000, &[1])), None, "lookup is pure");
    }

    #[test]
    fn lookup_is_exact_for_catalogued_queries() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m1 = BranchMultiset::from_graph(&g1);
        let m2 = BranchMultiset::from_graph(&g2);
        let mut catalog = BranchCatalog::new();
        let f1 = catalog.flatten(&m1);
        let f2 = catalog.flatten(&m2);
        // Query-side lookup against the populated catalog is exact.
        let q1 = catalog.flatten_lookup(&m1);
        let q2 = catalog.flatten_graph(&g2);
        assert_eq!(q1.gbd(&f2), m1.gbd(&m2));
        assert_eq!(q2.gbd(&f1), m2.gbd(&m1));
        assert_eq!(q1, f1);
        assert_eq!(q2, f2);
    }

    #[test]
    fn views_borrow_arena_storage() {
        let mut catalog = BranchCatalog::new();
        let m = BranchMultiset::from_branches(vec![branch(0, &[1]), branch(0, &[1])]);
        let flat = catalog.flatten(&m);
        // Simulate an arena: copy the runs into contiguous storage.
        let arena: Vec<BranchRun> = flat.runs().to_vec();
        let view = FlatBranchView::new(&arena, flat.len());
        assert_eq!(view.gbd(flat.as_view()), 0);
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
    }

    #[test]
    fn aggregates_split_known_and_unknown_runs() {
        let mut catalog = BranchCatalog::new();
        // Intern two branches so they are "known" to the catalog.
        catalog.intern(branch(0, &[1]));
        catalog.intern(branch(2, &[3]));
        let multiset = BranchMultiset::from_branches(vec![
            branch(0, &[1]),
            branch(0, &[1]),
            branch(0, &[1]),
            branch(2, &[3]),
            branch(99, &[]), // unknown to the catalog
            branch(98, &[]), // unknown to the catalog
        ]);
        let flat = catalog.flatten_lookup(&multiset);
        assert_eq!(flat.len(), 6);
        assert_eq!(flat.known_len(), 4);
        assert_eq!(flat.as_view().unknown_count(), 2);
        assert_eq!(flat.known_runs().len(), 2);
        assert_eq!(flat.max_known_run_count(), 3);
        // A fully interned set has no unknown run to strip.
        let fully = catalog.flatten(&BranchMultiset::from_branches(vec![branch(0, &[1])]));
        assert_eq!(fully.known_len(), 1);
        assert_eq!(fully.known_runs(), fully.runs());
        assert_eq!(fully.max_known_run_count(), 1);
        // Empty sets report zero everywhere.
        let empty = catalog.flatten_lookup(&BranchMultiset::default());
        assert_eq!(empty.known_len(), 0);
        assert_eq!(empty.max_known_run_count(), 0);
        assert!(empty.known_runs().is_empty());
    }

    #[test]
    fn from_branches_round_trips_a_catalog() {
        let mut catalog = BranchCatalog::new();
        catalog.intern(branch(0, &[1, 2]));
        catalog.intern(branch(1, &[]));
        catalog.intern(branch(2, &[3, 3]));
        let rebuilt = BranchCatalog::from_branches(catalog.branches().to_vec()).unwrap();
        assert_eq!(rebuilt.len(), catalog.len());
        for id in 0..catalog.len() as u32 {
            assert_eq!(rebuilt.branch(id), catalog.branch(id));
            assert_eq!(rebuilt.id_of(catalog.branch(id)), Some(id));
        }
    }

    #[test]
    fn from_branches_rejects_duplicates() {
        let dup = vec![branch(0, &[1]), branch(0, &[1])];
        assert!(BranchCatalog::from_branches(dup).is_err());
    }

    #[test]
    fn empty_sets_are_well_defined() {
        let catalog = BranchCatalog::new();
        let empty = catalog.flatten_lookup(&BranchMultiset::default());
        assert!(empty.is_empty());
        assert_eq!(empty.gbd(&empty), 0);
        assert!(catalog.is_empty());
    }
}
