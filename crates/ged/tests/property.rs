//! Property tests for the GED bounds: on random small graphs (where the
//! exact A\* search is feasible) every lower bound must be admissible and
//! the greedy upper bound must dominate the exact distance.

use gbd_ged::{bounded_ged, branch_lower_bound, exact_ged, greedy_upper_bound, label_lower_bound};
use gbd_graph::{GeneratorConfig, Graph, LabelAlphabets};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_graph(seed: u64, vertices: usize, degree: f64, labels: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    GeneratorConfig::new(vertices, degree)
        .with_alphabets(LabelAlphabets::new(labels, 3))
        .generate(&mut rng)
        .expect("generation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Admissibility: both lower bounds never exceed the exact A* GED, and
    /// the greedy upper bound never undercuts it, on random ≤ 6-node graphs.
    #[test]
    fn bounds_bracket_the_exact_ged(
        seed in 0u64..1_000_000,
        n1 in 2usize..=6,
        n2 in 2usize..=6,
        labels in 2usize..=6,
    ) {
        let g1 = random_graph(seed, n1, 1.8, labels);
        let g2 = random_graph(seed ^ 0x5EED, n2, 2.2, labels);
        let (exact, _) = exact_ged(&g1, &g2);
        let label_lb = label_lower_bound(&g1, &g2);
        let branch_lb = branch_lower_bound(&g1, &g2);
        let greedy_ub = greedy_upper_bound(&g1, &g2);
        prop_assert!(
            label_lb <= exact,
            "label bound {} exceeds exact GED {}", label_lb, exact
        );
        prop_assert!(
            branch_lb <= exact,
            "branch bound {} exceeds exact GED {}", branch_lb, exact
        );
        prop_assert!(
            greedy_ub >= exact,
            "greedy upper bound {} undercuts exact GED {}", greedy_ub, exact
        );
    }

    /// Both lower bounds are symmetric in their arguments and tight (zero)
    /// on identical graphs.
    #[test]
    fn lower_bounds_are_symmetric_and_tight_on_self(
        seed in 0u64..1_000_000,
        n in 2usize..=6,
    ) {
        let g1 = random_graph(seed, n, 2.0, 4);
        let g2 = random_graph(seed ^ 0xBEEF, n, 2.0, 4);
        prop_assert_eq!(label_lower_bound(&g1, &g2), label_lower_bound(&g2, &g1));
        prop_assert_eq!(branch_lower_bound(&g1, &g2), branch_lower_bound(&g2, &g1));
        prop_assert_eq!(label_lower_bound(&g1, &g1), 0);
        prop_assert_eq!(branch_lower_bound(&g1, &g1), 0);
        prop_assert_eq!(greedy_upper_bound(&g1, &g1), 0);
    }

    /// The threshold-bounded verifier agrees with the exact search: it
    /// accepts exactly when the exact GED clears the threshold.
    #[test]
    fn bounded_ged_is_consistent_with_exact(
        seed in 0u64..1_000_000,
        n1 in 2usize..=5,
        n2 in 2usize..=5,
        tau in 0usize..=8,
    ) {
        let g1 = random_graph(seed, n1, 1.6, 3);
        let g2 = random_graph(seed ^ 0xCAFE, n2, 1.6, 3);
        let (exact, _) = exact_ged(&g1, &g2);
        match bounded_ged(&g1, &g2, tau) {
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d <= tau);
            }
            None => prop_assert!(exact > tau),
        }
    }
}
