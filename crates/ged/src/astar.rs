//! Exact GED via A\* search over vertex mappings.
//!
//! This is the classical exact algorithm the paper refers to (\[5\], \[6\]):
//! vertices of the first graph are assigned, one at a time, to vertices of
//! the second graph or to `ε` (deletion). Each partial assignment carries the
//! edit cost it has already induced (`g`) plus an admissible lower bound on
//! the cost still to come (`h`). The first *complete* assignment popped from
//! the priority queue realises the exact GED. The worst case is `O(n^m)`
//! states, which is why the paper only uses exact GED on small graphs and
//! why GBDA estimates it instead.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gbd_graph::{Graph, Label, VertexId};

use crate::mapping::VertexMapping;

/// Search statistics of one A\* run, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AStarStats {
    /// Number of states popped from the priority queue.
    pub expanded: usize,
    /// Number of states pushed onto the priority queue.
    pub generated: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    /// Cost already incurred by the partial assignment.
    g: usize,
    /// Admissible estimate of the remaining cost.
    h: usize,
    /// `assignment[i]`: image of G1 vertex `i` (None = deleted). Length =
    /// number of already-assigned G1 vertices.
    assignment: Vec<Option<VertexId>>,
    /// Which G2 vertices are already used as images.
    used: Vec<bool>,
}

impl State {
    fn f(&self) -> usize {
        self.g + self.h
    }
}

impl Ord for State {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on Reverse(f), tie-broken on depth (prefer deeper states).
        self.f()
            .cmp(&other.f())
            .then_with(|| other.assignment.len().cmp(&self.assignment.len()))
    }
}

impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Multiset intersection size of two sorted label vectors.
fn sorted_intersection(a: &[Label], b: &[Label]) -> usize {
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

/// Admissible heuristic: remaining vertex-label assignment bound plus
/// remaining edge-count bound.
fn heuristic(g1: &Graph, g2: &Graph, assignment: &[Option<VertexId>], used: &[bool]) -> usize {
    let k = assignment.len();
    // Vertex part: unmapped G1 labels vs unused G2 labels.
    let mut rem1: Vec<Label> = (k..g1.vertex_count())
        .map(|i| g1.vertex_label(VertexId::new(i as u32)).unwrap())
        .collect();
    let mut rem2: Vec<Label> = g2
        .vertices()
        .filter(|v| !used[v.index()])
        .map(|v| g2.vertex_label(v).unwrap())
        .collect();
    rem1.sort_unstable();
    rem2.sort_unstable();
    let vertex_bound = rem1.len().max(rem2.len()) - sorted_intersection(&rem1, &rem2);

    // Edge part: edges not yet charged are those with at least one endpoint
    // still unmapped (G1) / un-imaged (G2). Their minimum cost is the
    // difference of the two counts.
    let e1 = g1
        .edges()
        .filter(|(key, _)| key.u.index() >= k || key.v.index() >= k)
        .count();
    let e2 = g2
        .edges()
        .filter(|(key, _)| !used[key.u.index()] || !used[key.v.index()])
        .count();
    let edge_bound = e1.abs_diff(e2);
    vertex_bound + edge_bound
}

/// Cost added by assigning G1 vertex `k` to `image` given the previous
/// partial assignment (vertex cost plus edges towards already-assigned
/// vertices).
fn extension_cost(
    g1: &Graph,
    g2: &Graph,
    assignment: &[Option<VertexId>],
    k: usize,
    image: Option<VertexId>,
) -> usize {
    let vk = VertexId::new(k as u32);
    let mut cost = 0usize;
    match image {
        Some(u) => {
            if g1.vertex_label(vk).unwrap() != g2.vertex_label(u).unwrap() {
                cost += 1;
            }
            for (j, img_j) in assignment.iter().enumerate() {
                let vj = VertexId::new(j as u32);
                let l1 = g1.edge_label(vk, vj);
                let l2 = img_j.and_then(|uj| g2.edge_label(u, uj));
                cost += match (l1, l2) {
                    (Some(a), Some(b)) if a == b => 0,
                    (None, None) => 0,
                    _ => 1,
                };
            }
        }
        None => {
            cost += 1; // delete the vertex
            for j in 0..assignment.len() {
                let vj = VertexId::new(j as u32);
                if g1.has_edge(vk, vj) {
                    cost += 1; // delete its edges towards assigned vertices
                }
            }
        }
    }
    cost
}

/// Cost of completing a full assignment of G1's vertices: all unused G2
/// vertices and all G2 edges with at least one un-imaged endpoint are
/// inserted.
fn completion_cost(g2: &Graph, used: &[bool]) -> usize {
    let vertex_insertions = used.iter().filter(|&&u| !u).count();
    let edge_insertions = g2
        .edges()
        .filter(|(key, _)| !used[key.u.index()] || !used[key.v.index()])
        .count();
    vertex_insertions + edge_insertions
}

/// Exact GED between `g1` and `g2` (unit costs, Definition 1).
///
/// ```
/// use gbd_graph::paper_examples::{figure1_g1, figure1_g2};
/// use gbd_ged::exact_ged;
///
/// let (g1, _) = figure1_g1();
/// let (g2, _) = figure1_g2();
/// assert_eq!(exact_ged(&g1, &g2).0, 3); // Example 1
/// ```
pub fn exact_ged(g1: &Graph, g2: &Graph) -> (usize, AStarStats) {
    search(g1, g2, usize::MAX).expect("unbounded search always finds the GED")
}

/// Exact GED if it does not exceed `threshold`; `None` otherwise. The search
/// prunes every state whose optimistic cost exceeds the threshold, which is
/// how the filter-and-verify baselines verify candidates.
pub fn bounded_ged(g1: &Graph, g2: &Graph, threshold: usize) -> Option<usize> {
    search(g1, g2, threshold).map(|(d, _)| d)
}

fn search(g1: &Graph, g2: &Graph, threshold: usize) -> Option<(usize, AStarStats)> {
    let n1 = g1.vertex_count();
    let n2 = g2.vertex_count();
    let mut stats = AStarStats::default();
    let mut heap: BinaryHeap<Reverse<State>> = BinaryHeap::new();
    let root = State {
        g: 0,
        h: heuristic(g1, g2, &[], &vec![false; n2]),
        assignment: Vec::new(),
        used: vec![false; n2],
    };
    if root.f() > threshold {
        return None;
    }
    heap.push(Reverse(root));
    stats.generated += 1;

    while let Some(Reverse(state)) = heap.pop() {
        stats.expanded += 1;
        let k = state.assignment.len();
        if k == n1 {
            let total = state.g + completion_cost(g2, &state.used);
            // `h` already lower-bounds the completion cost, so the first
            // complete state popped is optimal; still guard the threshold.
            if total <= threshold {
                return Some((total, stats));
            }
            continue;
        }
        // Candidate images: every unused G2 vertex, or deletion.
        for cand in g2.vertices().map(Some).chain(std::iter::once(None)) {
            if let Some(u) = cand {
                if state.used[u.index()] {
                    continue;
                }
            }
            let delta = extension_cost(g1, g2, &state.assignment, k, cand);
            let mut assignment = state.assignment.clone();
            assignment.push(cand);
            let mut used = state.used.clone();
            if let Some(u) = cand {
                used[u.index()] = true;
            }
            let h = heuristic(g1, g2, &assignment, &used);
            let next = State {
                g: state.g + delta,
                h,
                assignment,
                used,
            };
            if next.f() <= threshold {
                stats.generated += 1;
                heap.push(Reverse(next));
            }
        }
    }
    None
}

/// Returns the exact GED together with one optimal vertex mapping, by
/// re-running the search and keeping the winning assignment. Exposed mainly
/// for tests and for inspecting small instances.
pub fn exact_ged_with_mapping(g1: &Graph, g2: &Graph) -> (usize, VertexMapping) {
    // A small re-implementation that tracks the winning assignment.
    let n1 = g1.vertex_count();
    let n2 = g2.vertex_count();
    let mut heap: BinaryHeap<Reverse<State>> = BinaryHeap::new();
    heap.push(Reverse(State {
        g: 0,
        h: heuristic(g1, g2, &[], &vec![false; n2]),
        assignment: Vec::new(),
        used: vec![false; n2],
    }));
    let mut best: Option<(usize, Vec<Option<VertexId>>)> = None;
    while let Some(Reverse(state)) = heap.pop() {
        if let Some((best_cost, _)) = &best {
            if state.f() >= *best_cost {
                break;
            }
        }
        let k = state.assignment.len();
        if k == n1 {
            let total = state.g + completion_cost(g2, &state.used);
            if best.as_ref().is_none_or(|(c, _)| total < *c) {
                best = Some((total, state.assignment.clone()));
            }
            continue;
        }
        for cand in g2.vertices().map(Some).chain(std::iter::once(None)) {
            if let Some(u) = cand {
                if state.used[u.index()] {
                    continue;
                }
            }
            let delta = extension_cost(g1, g2, &state.assignment, k, cand);
            let mut assignment = state.assignment.clone();
            assignment.push(cand);
            let mut used = state.used.clone();
            if let Some(u) = cand {
                used[u.index()] = true;
            }
            let h = heuristic(g1, g2, &assignment, &used);
            heap.push(Reverse(State {
                g: state.g + delta,
                h,
                assignment,
                used,
            }));
        }
    }
    let (cost, assignment) = best.expect("search space is finite");
    (cost, VertexMapping::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::mapping_cost;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2, figure4_g1, figure4_g2};
    use gbd_graph::{
        extend_graph, graph_branch_distance, GeneratorConfig, KnownGedConfig, KnownGedFamily,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn example_1_exact_ged_is_three() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let (d, stats) = exact_ged(&g1, &g2);
        assert_eq!(d, 3);
        assert!(stats.expanded > 0 && stats.generated >= stats.expanded);
        // GED is symmetric under unit costs.
        assert_eq!(exact_ged(&g2, &g1).0, 3);
    }

    #[test]
    fn example_4_exact_ged_is_two() {
        let (g1, _) = figure4_g1();
        let (g2, _) = figure4_g2();
        assert_eq!(exact_ged(&g1, &g2).0, 2);
    }

    #[test]
    fn identical_graphs_have_zero_ged() {
        let (g1, _) = figure1_g1();
        assert_eq!(exact_ged(&g1, &g1.clone()).0, 0);
    }

    #[test]
    fn ged_to_empty_graph_counts_all_elements() {
        let (g1, _) = figure1_g1();
        let empty = Graph::new();
        assert_eq!(
            exact_ged(&g1, &empty).0,
            g1.vertex_count() + g1.edge_count()
        );
        assert_eq!(
            exact_ged(&empty, &g1).0,
            g1.vertex_count() + g1.edge_count()
        );
        assert_eq!(exact_ged(&empty, &empty).0, 0);
    }

    #[test]
    fn bounded_search_agrees_with_exact_and_prunes() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        assert_eq!(bounded_ged(&g1, &g2, 10), Some(3));
        assert_eq!(bounded_ged(&g1, &g2, 3), Some(3));
        assert_eq!(bounded_ged(&g1, &g2, 2), None);
        assert_eq!(bounded_ged(&g1, &g2, 0), None);
    }

    #[test]
    fn exact_ged_matches_brute_force_on_extended_graphs() {
        // Theorem 1 cross-check: A* on the original graphs equals brute-force
        // relabel-only GED on the extended graphs.
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = GeneratorConfig::new(5, 1.8);
        for _ in 0..5 {
            let a = cfg.generate(&mut rng).unwrap();
            let b = cfg.generate(&mut rng).unwrap();
            let (small, large) = if a.vertex_count() <= b.vertex_count() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            let k = large.vertex_count() - small.vertex_count();
            let brute = extend_graph(small, k).brute_force_ged(&extend_graph(large, 0));
            let (astar, _) = exact_ged(small, large);
            assert_eq!(astar, brute, "A* and extended brute force disagree");
        }
    }

    #[test]
    fn exact_ged_with_mapping_returns_a_realising_mapping() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let (d, mapping) = exact_ged_with_mapping(&g1, &g2);
        assert_eq!(d, 3);
        assert_eq!(mapping_cost(&g1, &g2, &mapping), 3);
    }

    #[test]
    fn known_ged_families_are_exact_on_small_graphs() {
        // The Appendix-I construction promises known pairwise GEDs; verify it
        // against A* on small templates for both modification modes.
        let mut rng = StdRng::seed_from_u64(99);
        for mode in [
            gbd_graph::known_ged::ModificationMode::DeleteEdges,
            gbd_graph::known_ged::ModificationMode::RelabelEdges,
        ] {
            let cfg = KnownGedConfig::new(GeneratorConfig::new(7, 2.0), 3, 6, 3).with_mode(mode);
            let fam = KnownGedFamily::generate(&cfg, &mut rng).unwrap();
            for i in 0..fam.len() {
                for j in (i + 1)..fam.len() {
                    let (d, _) = exact_ged(fam.member_graph(i), fam.member_graph(j));
                    assert_eq!(
                        d,
                        fam.known_ged(i, j),
                        "known GED mismatch for members {i},{j} under {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn gbd_never_exceeds_twice_the_exact_ged() {
        // One edit operation changes at most two branches, hence
        // GBD ≤ 2·GED (the relation the probabilistic model is built on).
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GeneratorConfig::new(6, 2.0);
        for _ in 0..8 {
            let a = cfg.generate(&mut rng).unwrap();
            let b = cfg.generate(&mut rng).unwrap();
            let gbd = graph_branch_distance(&a, &b);
            let (ged, _) = exact_ged(&a, &b);
            assert!(gbd <= 2 * ged, "GBD {gbd} > 2·GED {ged}");
        }
    }

    use gbd_graph::Graph;
}
