//! # gbd-ged — exact Graph Edit Distance and GED bounds
//!
//! The paper takes the Graph Edit Distance (GED, Definition 1) as the ground
//! truth similarity measure. Exact GED computation is NP-hard; the
//! state-of-the-art exact method is the A\* search over vertex mappings
//! ([`astar::exact_ged`]) which is feasible only for small graphs (the paper
//! cites ~10–12 vertices). This crate provides:
//!
//! * [`astar`] — exact GED via A\* with admissible label-multiset heuristics,
//!   plus a threshold-bounded variant used for verification,
//! * [`mapping`] — the unit-cost edit model induced by a vertex mapping
//!   (shared with the LSAP baselines),
//! * [`bounds`] — cheap lower/upper bounds (label-count bound, branch-count
//!   bound from the GBD, greedy-mapping upper bound),
//! * [`estimator`] — the [`GedEstimate`] trait implemented by every estimator
//!   in the workspace (exact A\*, LSAP, greedy, seriation, GBDA).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod astar;
pub mod bounds;
pub mod estimator;
pub mod mapping;

pub use astar::{bounded_ged, exact_ged, AStarStats};
pub use bounds::{branch_lower_bound, greedy_upper_bound, label_lower_bound};
pub use estimator::{ExactGed, GedEstimate};
pub use mapping::{mapping_cost, VertexMapping};
