//! The common interface of every GED estimator in the workspace.
//!
//! The paper compares four ways of obtaining (an estimate of) the GED between
//! a query graph and a database graph: exact A\*, the LSAP solution
//! (Hungarian), the greedy LSAP solution (Greedy-Sort-GED), spectral
//! seriation, and its own GBDA posterior. They all share this trait so the
//! search engine and the benchmark harness can treat them uniformly.

use gbd_graph::Graph;

use crate::astar::exact_ged;

/// A method that produces an estimate of `GED(g1, g2)`.
pub trait GedEstimate {
    /// Human-readable method name (used in experiment tables).
    fn name(&self) -> &str;

    /// Estimates the GED between `g1` and `g2`. The estimate may be a lower
    /// bound (LSAP), an unbounded approximation (greedy, seriation) or an
    /// exact value (A\*), depending on the implementation.
    fn estimate_ged(&self, g1: &Graph, g2: &Graph) -> f64;

    /// Whether the estimate is guaranteed to lower-bound the exact GED.
    /// Lower-bounding estimators achieve 100% recall in similarity search.
    fn is_lower_bound(&self) -> bool {
        false
    }
}

/// Exact GED via A\* — only usable on small graphs, but the reference
/// implementation for every effectiveness test.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactGed;

impl GedEstimate for ExactGed {
    fn name(&self) -> &str {
        "exact-astar"
    }

    fn estimate_ged(&self, g1: &Graph, g2: &Graph) -> f64 {
        exact_ged(g1, g2).0 as f64
    }

    fn is_lower_bound(&self) -> bool {
        true // the exact value trivially lower-bounds itself
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    #[test]
    fn exact_estimator_reports_example_1() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let est = ExactGed;
        assert_eq!(est.estimate_ged(&g1, &g2), 3.0);
        assert_eq!(est.name(), "exact-astar");
        assert!(est.is_lower_bound());
    }

    #[test]
    fn trait_objects_are_usable() {
        let est: Box<dyn GedEstimate> = Box::new(ExactGed);
        let (g1, _) = figure1_g1();
        assert_eq!(est.estimate_ged(&g1, &g1), 0.0);
    }
}
