//! Edit cost induced by a vertex mapping.
//!
//! Every (possibly partial) injection of `V1` into `V2 ∪ {ε}` induces an edit
//! script: mismatched vertex labels are relabelled, vertices mapped to `ε`
//! are deleted (together with their incident edges), unmatched `V2` vertices
//! are inserted (together with their incident edges), and edges between
//! mapped vertex pairs are relabelled / deleted / inserted as needed. The
//! length of that script under unit costs is an upper bound on the GED, and
//! the minimum over all mappings *is* the GED. Both the exact A\* search and
//! the LSAP baselines evaluate mappings through this module.

use gbd_graph::{Graph, VertexId};

/// A mapping from the vertices of `G1` to vertices of `G2` or to `ε`
/// (deletion), represented as `assignment[i] = Some(j)` or `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexMapping {
    assignment: Vec<Option<VertexId>>,
}

impl VertexMapping {
    /// Creates a mapping from an assignment vector (indexed by `G1` vertex).
    pub fn new(assignment: Vec<Option<VertexId>>) -> Self {
        VertexMapping { assignment }
    }

    /// The identity mapping for graphs sharing vertex ids `0..n`.
    pub fn identity(n: usize) -> Self {
        VertexMapping {
            assignment: (0..n as u32).map(|i| Some(VertexId::new(i))).collect(),
        }
    }

    /// Image of vertex `v` of `G1`.
    pub fn image(&self, v: VertexId) -> Option<VertexId> {
        self.assignment.get(v.index()).copied().flatten()
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[Option<VertexId>] {
        &self.assignment
    }

    /// Number of `G1` vertices covered by this mapping.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` when the mapping covers no vertex.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

/// Unit-cost edit distance induced by a complete vertex mapping of `g1` into
/// `g2`. This is always an upper bound on `GED(g1, g2)`.
///
/// Panics if the mapping does not cover every vertex of `g1` or maps two
/// vertices onto the same target.
pub fn mapping_cost(g1: &Graph, g2: &Graph, mapping: &VertexMapping) -> usize {
    assert_eq!(
        mapping.len(),
        g1.vertex_count(),
        "mapping must cover every vertex of g1"
    );
    let mut used = vec![false; g2.vertex_count()];
    let mut cost = 0usize;

    // Vertex costs.
    for v in g1.vertices() {
        match mapping.image(v) {
            Some(u) => {
                assert!(!used[u.index()], "mapping must be injective");
                used[u.index()] = true;
                if g1.vertex_label(v).unwrap() != g2.vertex_label(u).unwrap() {
                    cost += 1; // RV
                }
            }
            None => cost += 1, // DV (plus DE for incident edges below)
        }
    }
    // Unmatched g2 vertices are inserted.
    cost += used.iter().filter(|&&u| !u).count();

    // Edge costs between pairs of g1 vertices.
    for (key, l1) in g1.edges() {
        match (mapping.image(key.u), mapping.image(key.v)) {
            (Some(a), Some(b)) => match g2.edge_label(a, b) {
                Some(l2) if l2 == l1 => {}
                Some(_) => cost += 1, // RE
                None => cost += 1,    // DE
            },
            // An edge incident to a deleted vertex must be deleted.
            _ => cost += 1,
        }
    }
    // Edges of g2 that are not the image of any g1 edge are inserted.
    for (key, _) in g2.edges() {
        let covered = preimage(mapping, key.u).is_some() && preimage(mapping, key.v).is_some();
        if !covered {
            cost += 1; // AE (at least one endpoint is an inserted vertex)
        } else {
            let p = preimage(mapping, key.u).unwrap();
            let q = preimage(mapping, key.v).unwrap();
            if !g1.has_edge(p, q) {
                cost += 1; // AE between two mapped vertices
            }
        }
    }
    cost
}

fn preimage(mapping: &VertexMapping, target: VertexId) -> Option<VertexId> {
    mapping
        .assignment()
        .iter()
        .position(|&img| img == Some(target))
        .map(|i| VertexId::new(i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2, figure4_g1, figure4_g2};
    use gbd_graph::Label;

    #[test]
    fn identity_mapping_on_identical_graphs_costs_zero() {
        let (g1, _) = figure1_g1();
        let m = VertexMapping::identity(g1.vertex_count());
        assert_eq!(mapping_cost(&g1, &g1, &m), 0);
    }

    #[test]
    fn figure4_identity_mapping_costs_two_relabels() {
        let (g1, _) = figure4_g1();
        let (g2, _) = figure4_g2();
        let m = VertexMapping::identity(3);
        assert_eq!(mapping_cost(&g1, &g2, &m), 2);
    }

    #[test]
    fn example_1_mapping_realises_ged_three() {
        // Map v1→u2 (A), v2→u4 (C), v3→u1 (B); u3 is inserted together with
        // its incident edge, and the (v1,v3) edge is deleted: cost 3.
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m = VertexMapping::new(vec![
            Some(VertexId::new(1)),
            Some(VertexId::new(3)),
            Some(VertexId::new(0)),
        ]);
        assert_eq!(mapping_cost(&g1, &g2, &m), 3);
    }

    #[test]
    fn deleting_a_vertex_also_pays_for_incident_edges() {
        let mut g1 = Graph::new();
        let a = g1.add_vertex(Label::new(0));
        let b = g1.add_vertex(Label::new(1));
        g1.add_edge(a, b, Label::new(9)).unwrap();
        let mut g2 = Graph::new();
        g2.add_vertex(Label::new(0));
        // Map a→0, delete b: DV(b) + DE(a,b) = 2.
        let m = VertexMapping::new(vec![Some(VertexId::new(0)), None]);
        assert_eq!(mapping_cost(&g1, &g2, &m), 2);
    }

    #[test]
    fn inserting_vertices_pays_for_their_edges_too() {
        let mut g1 = Graph::new();
        g1.add_vertex(Label::new(0));
        let mut g2 = Graph::new();
        let a = g2.add_vertex(Label::new(0));
        let b = g2.add_vertex(Label::new(1));
        let c = g2.add_vertex(Label::new(2));
        g2.add_edge(a, b, Label::new(9)).unwrap();
        g2.add_edge(b, c, Label::new(9)).unwrap();
        let m = VertexMapping::new(vec![Some(VertexId::new(0))]);
        // insert b, c and both edges = 4.
        assert_eq!(mapping_cost(&g1, &g2, &m), 4);
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn non_injective_mappings_are_rejected() {
        let (g1, _) = figure4_g1();
        let (g2, _) = figure4_g2();
        let m = VertexMapping::new(vec![
            Some(VertexId::new(0)),
            Some(VertexId::new(0)),
            Some(VertexId::new(2)),
        ]);
        mapping_cost(&g1, &g2, &m);
    }

    #[test]
    fn mapping_accessors() {
        let m = VertexMapping::identity(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.image(VertexId::new(1)), Some(VertexId::new(1)));
        let empty = VertexMapping::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.image(VertexId::new(0)), None);
    }
}
