//! Cheap lower and upper bounds on the Graph Edit Distance.
//!
//! Filter-and-verify search frameworks (Section VIII-A of the paper) rely on
//! bounds that are much cheaper than exact GED:
//!
//! * [`label_lower_bound`] — vertex-label and edge-label multiset differences,
//! * [`branch_lower_bound`] — `⌈GBD / 2⌉`, since one edit operation changes at
//!   most two branches (the branch-based filter of Zheng et al. that the paper
//!   builds GBD on),
//! * [`greedy_upper_bound`] — the cost of a greedy branch-similarity vertex
//!   mapping, which is an upper bound because *any* complete mapping induces a
//!   valid edit script.

use gbd_graph::{Branch, Graph, Label, VertexId};

use crate::mapping::{mapping_cost, VertexMapping};

fn multiset_difference(mut a: Vec<Label>, mut b: Vec<Label>) -> usize {
    a.sort_unstable();
    b.sort_unstable();
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    a.len().max(b.len()) - common
}

/// Label-count lower bound: the vertex-label multiset difference plus the
/// edge-count difference can each only shrink by one per edit operation that
/// touches the respective element type, and vertex/edge operations are
/// disjoint, so their sum lower-bounds the GED.
pub fn label_lower_bound(g1: &Graph, g2: &Graph) -> usize {
    let vertex_part = multiset_difference(g1.sorted_vertex_labels(), g2.sorted_vertex_labels());
    let edge_part = g1.edge_count().abs_diff(g2.edge_count());
    vertex_part + edge_part
}

/// Branch-count lower bound `⌈GBD(g1, g2) / 2⌉`.
///
/// A vertex relabelling changes exactly one branch, while an edge operation
/// changes at most two branches, so `GBD ≤ 2·GED` and therefore
/// `GED ≥ ⌈GBD/2⌉`.
pub fn branch_lower_bound(g1: &Graph, g2: &Graph) -> usize {
    gbd_graph::graph_branch_distance(g1, g2).div_ceil(2)
}

/// Upper bound from a greedy branch-similarity mapping: vertices of `g1` are
/// matched, in order, to the still-unused vertex of `g2` whose branch is most
/// similar; leftover vertices are deleted / inserted. The induced mapping cost
/// is a valid edit script length and therefore an upper bound.
pub fn greedy_upper_bound(g1: &Graph, g2: &Graph) -> usize {
    let mapping = greedy_mapping(g1, g2);
    mapping_cost(g1, g2, &mapping)
}

/// Dissimilarity of two branches used by the greedy matcher: label mismatch
/// plus the multiset difference of incident edge labels.
fn branch_dissimilarity(a: &Branch, b: &Branch) -> usize {
    let label_cost = usize::from(a.vertex_label() != b.vertex_label());
    let edge_cost = multiset_difference(a.edge_labels().to_vec(), b.edge_labels().to_vec());
    label_cost + edge_cost
}

/// Builds the greedy branch-similarity mapping used by [`greedy_upper_bound`].
pub fn greedy_mapping(g1: &Graph, g2: &Graph) -> VertexMapping {
    let b1: Vec<Branch> = g1.vertices().map(|v| Branch::of_vertex(g1, v)).collect();
    let b2: Vec<Branch> = g2.vertices().map(|v| Branch::of_vertex(g2, v)).collect();
    let mut used = vec![false; g2.vertex_count()];
    let mut assignment: Vec<Option<VertexId>> = Vec::with_capacity(g1.vertex_count());
    for (i, branch) in b1.iter().enumerate() {
        let mut best: Option<(usize, usize)> = None; // (cost, j)
        for (j, other) in b2.iter().enumerate() {
            if used[j] {
                continue;
            }
            let cost = branch_dissimilarity(branch, other);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, j));
            }
        }
        match best {
            // Matching to a very dissimilar vertex can be worse than simply
            // deleting; keep the match only when it is no worse than deletion
            // (deleting costs 1 + degree).
            Some((cost, j)) if cost <= 1 + b1[i].degree() => {
                used[j] = true;
                assignment.push(Some(VertexId::new(j as u32)));
            }
            _ => assignment.push(None),
        }
    }
    VertexMapping::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::exact_ged;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2, figure4_g1, figure4_g2};
    use gbd_graph::GeneratorConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounds_bracket_the_exact_ged_on_paper_examples() {
        for (g1, g2) in [
            (figure1_g1().0, figure1_g2().0),
            (figure4_g1().0, figure4_g2().0),
        ] {
            let (exact, _) = exact_ged(&g1, &g2);
            assert!(label_lower_bound(&g1, &g2) <= exact);
            assert!(branch_lower_bound(&g1, &g2) <= exact);
            assert!(greedy_upper_bound(&g1, &g2) >= exact);
        }
    }

    #[test]
    fn bounds_bracket_the_exact_ged_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = GeneratorConfig::new(6, 2.0);
        for _ in 0..10 {
            let a = cfg.generate(&mut rng).unwrap();
            let b = cfg.generate(&mut rng).unwrap();
            let (exact, _) = exact_ged(&a, &b);
            let lo1 = label_lower_bound(&a, &b);
            let lo2 = branch_lower_bound(&a, &b);
            let hi = greedy_upper_bound(&a, &b);
            assert!(lo1 <= exact, "label bound {lo1} > exact {exact}");
            assert!(lo2 <= exact, "branch bound {lo2} > exact {exact}");
            assert!(hi >= exact, "greedy upper bound {hi} < exact {exact}");
        }
    }

    #[test]
    fn bounds_are_tight_for_identical_graphs() {
        let (g1, _) = figure1_g1();
        assert_eq!(label_lower_bound(&g1, &g1), 0);
        assert_eq!(branch_lower_bound(&g1, &g1), 0);
        assert_eq!(greedy_upper_bound(&g1, &g1), 0);
    }

    #[test]
    fn bounds_are_symmetric() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        assert_eq!(label_lower_bound(&g1, &g2), label_lower_bound(&g2, &g1));
        assert_eq!(branch_lower_bound(&g1, &g2), branch_lower_bound(&g2, &g1));
    }

    #[test]
    fn greedy_mapping_covers_every_g1_vertex() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let m = greedy_mapping(&g1, &g2);
        assert_eq!(m.len(), g1.vertex_count());
    }

    #[test]
    fn label_lower_bound_counts_disjoint_alphabets_fully() {
        use gbd_graph::{Graph, Label};
        let mut a = Graph::new();
        a.add_vertex(Label::new(1));
        a.add_vertex(Label::new(2));
        let mut b = Graph::new();
        b.add_vertex(Label::new(3));
        b.add_vertex(Label::new(4));
        assert_eq!(label_lower_bound(&a, &b), 2);
    }
}
