//! Machine-readable serving-layer benchmark: concurrent snapshot-isolated
//! readers under an active mutation stream, writing
//! `results/BENCH_serve.json`.
//!
//! Three measurements:
//!
//! * **Single-threaded baseline** — queries/second of one reader over a
//!   quiescent engine (no writers), the reference for scaling.
//! * **Concurrent throughput** — N reader threads each running the same
//!   query workload while a writer thread streams inserts and removes the
//!   whole time (it keeps mutating until the last reader finishes, so the
//!   readers provably overlap an active mutation stream). Reported as
//!   aggregate queries/second plus the per-epoch observation counts.
//! * **Generation consistency** — every recorded `(generation, result)`
//!   pair is re-verified after the fact against a fresh static
//!   [`QueryEngine`] over that generation's live set; `all_consistent` is
//!   the AND over every query any reader ran.
//!
//! Usage: `bench_serve [--database N] [--readers N] [--queries N]
//! [--out PATH] [--check]`. `--check` re-reads the written file and asserts
//! at least 2 readers sustained queries during an active mutation stream
//! (mutations and epochs advanced while they ran) with every result
//! matching a published generation. CI runs this as a smoke step.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::mixed_size_online_workload;
use gbd_graph::Graph;
use gbda_core::{
    ConcurrentEngine, DynamicDatabase, GbdaConfig, Generation, GraphDatabase, OfflineIndex,
    QueryEngine,
};

struct Options {
    database: usize,
    readers: usize,
    queries: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        database: 2_000,
        readers: 4,
        queries: 48,
        out: "results/BENCH_serve.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--database" => {
                let value = args.next().ok_or("--database needs a value")?;
                options.database = value.parse::<usize>().map_err(|e| e.to_string())?.max(64);
            }
            "--readers" => {
                let value = args.next().ok_or("--readers needs a value")?;
                options.readers = value.parse::<usize>().map_err(|e| e.to_string())?.max(2);
            }
            "--queries" => {
                let value = args.next().ok_or("--queries needs a value")?;
                options.queries = value.parse::<usize>().map_err(|e| e.to_string())?.max(8);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

/// What one reader thread saw: the first pinned generation per epoch and
/// every `(epoch, matches)` result.
struct ReaderLog {
    generations: HashMap<u64, Arc<Generation>>,
    results: Vec<(u64, Vec<u64>)>,
    seconds: f64,
}

/// Runs threshold searches, pinning per query, until at least `queries`
/// have run **and** `done` is set (always-true `done` = exactly `queries`).
/// Looping past the minimum until the writer finishes is what guarantees
/// the readers overlap the whole mutation stream.
fn reader_pass(
    engine: &ConcurrentEngine,
    query: &Graph,
    queries: usize,
    done: &AtomicBool,
) -> ReaderLog {
    let mut log = ReaderLog {
        generations: HashMap::new(),
        results: Vec::with_capacity(queries),
        seconds: 0.0,
    };
    let started = Instant::now();
    while log.results.len() < queries || !done.load(Ordering::Acquire) {
        let generation = engine.pin();
        let outcome = engine.reader().search_pinned(&generation, query);
        log.results.push((generation.epoch(), outcome.matches));
        log.generations
            .entry(generation.epoch())
            .or_insert(generation);
    }
    log.seconds = started.elapsed().as_secs_f64();
    log
}

/// Re-verifies every recorded result against a fresh static engine over
/// the generation it was pinned to. Returns (checked, consistent).
fn verify_logs(
    logs: &[ReaderLog],
    engine: &ConcurrentEngine,
    query: &Graph,
    config: &GbdaConfig,
) -> (usize, bool) {
    let mut expected: HashMap<u64, Vec<u64>> = HashMap::new();
    for log in logs {
        for (epoch, generation) in &log.generations {
            expected.entry(*epoch).or_insert_with(|| {
                let survivors: Vec<Graph> =
                    generation.live_graphs().map(|(_, g)| g.clone()).collect();
                let ids = generation.live_ids();
                let fresh = GraphDatabase::with_alphabets(survivors, generation.alphabets());
                let static_engine =
                    QueryEngine::new(&fresh, engine.reader().index(), config.clone());
                static_engine
                    .search(query)
                    .matches
                    .iter()
                    .map(|&i| ids[i])
                    .collect()
            });
        }
    }
    let mut checked = 0;
    let mut consistent = true;
    for log in logs {
        for (epoch, matches) in &log.results {
            checked += 1;
            consistent &= expected.get(epoch).is_some_and(|want| want == matches);
        }
    }
    (checked, consistent)
}

fn run_bench(options: &Options) -> Result<JsonValue, String> {
    let number = JsonValue::Number;
    let (graphs, query) = mixed_size_online_workload(options.database + 256);
    let (base, mutation_pool) = {
        let mut graphs = graphs;
        let pool = graphs.split_off(options.database);
        (graphs, pool)
    };
    let database = GraphDatabase::from_graphs(base);
    let config = GbdaConfig::new(4, 0.8).with_sample_pairs(200);
    let index = OfflineIndex::build(&database, &config).map_err(|e| format!("offline: {e}"))?;
    let engine = ConcurrentEngine::with_auto_compact(
        DynamicDatabase::new(database),
        index,
        config.clone(),
        128,
    );

    // Single-threaded baseline over the quiescent engine (warm-up + run).
    let immediately = AtomicBool::new(true);
    reader_pass(&engine, &query, options.queries.min(8), &immediately);
    let baseline = reader_pass(&engine, &query, options.queries, &immediately);
    let baseline_qps = options.queries as f64 / baseline.seconds.max(1e-12);
    eprintln!("# baseline: {baseline_qps:.0} queries/s single-threaded, no writers");

    // Concurrent readers under an active mutation stream: the readers keep
    // querying until the whole stream is published, so they provably
    // overlap every mutation.
    let writer_done = AtomicBool::new(false);
    let mutations = AtomicU64::new(0);
    let started = Instant::now();
    let logs = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut next_remove = 3u64;
            for graph in &mutation_pool {
                engine.insert(graph.clone());
                let _ = engine.remove(next_remove);
                next_remove += 7;
                mutations.fetch_add(2, Ordering::Relaxed);
            }
            writer_done.store(true, Ordering::Release);
        });
        let handles: Vec<_> = (0..options.readers)
            .map(|_| scope.spawn(|| reader_pass(&engine, &query, options.queries, &writer_done)))
            .collect();
        let logs: Vec<ReaderLog> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        writer.join().unwrap();
        logs
    });
    let wall = started.elapsed().as_secs_f64();
    let total_queries: usize = logs.iter().map(|log| log.results.len()).sum();
    let concurrent_qps = total_queries as f64 / wall.max(1e-12);
    let mutations = mutations.load(Ordering::Relaxed);
    let epochs: std::collections::HashSet<u64> = logs
        .iter()
        .flat_map(|log| log.generations.keys().copied())
        .collect();
    eprintln!(
        "# concurrent: {concurrent_qps:.0} queries/s aggregate over {} readers, \
         {mutations} mutations streamed, {} distinct epochs observed",
        options.readers,
        epochs.len()
    );

    let (checked, all_consistent) = verify_logs(&logs, &engine, &query, &config);
    eprintln!("# consistency: {checked} results verified, all_consistent = {all_consistent}");

    let per_reader = logs
        .iter()
        .map(|log| number(log.results.len() as f64 / log.seconds.max(1e-12)))
        .collect();
    Ok(JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("serve".into())),
        ("database".into(), number(options.database as f64)),
        ("readers".into(), number(options.readers as f64)),
        (
            "min_queries_per_reader".into(),
            number(options.queries as f64),
        ),
        ("total_queries".into(), number(total_queries as f64)),
        ("baseline_qps".into(), number(baseline_qps)),
        ("concurrent_qps".into(), number(concurrent_qps)),
        (
            "scaling_vs_baseline".into(),
            number(concurrent_qps / baseline_qps.max(1e-12)),
        ),
        ("reader_qps".into(), JsonValue::Array(per_reader)),
        ("mutations_streamed".into(), number(mutations as f64)),
        ("epochs_observed".into(), number(epochs.len() as f64)),
        ("results_checked".into(), number(checked as f64)),
        ("all_consistent".into(), JsonValue::Bool(all_consistent)),
    ]))
}

/// The CI guard: ≥ 2 readers sustained queries during an active mutation
/// stream, and every recorded result matched a published generation.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let field = |name: &str| {
        document
            .get(name)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("missing {name}"))
    };
    let readers = field("readers")?;
    if readers < 2.0 {
        return Err(format!("only {readers} reader threads — need at least 2"));
    }
    let reader_qps = document
        .get("reader_qps")
        .and_then(JsonValue::as_array)
        .ok_or("missing reader_qps")?;
    if reader_qps.len() < 2 || reader_qps.iter().any(|qps| qps.as_f64() <= Some(0.0)) {
        return Err("every reader must have sustained a positive query rate".into());
    }
    if field("mutations_streamed")? <= 0.0 {
        return Err("no mutations streamed — the readers were not racing writes".into());
    }
    if field("epochs_observed")? < 2.0 {
        return Err("readers observed fewer than 2 epochs — no interleaving happened".into());
    }
    if field("results_checked")? <= 0.0 {
        return Err("no results were verified".into());
    }
    match document.get("all_consistent") {
        Some(JsonValue::Bool(true)) => Ok(()),
        other => Err(format!(
            "all_consistent is {other:?} — a result diverged from its published generation"
        )),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let document = match run_bench(&options) {
        Ok(document) => document,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => eprintln!(
                "check passed: concurrent readers sustained queries under writes and every \
                 result matched a published generation"
            ),
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
