//! Machine-readable durability benchmark: times the write-ahead-log and
//! recovery path of the crash-safe dynamic layer on a real filesystem
//! (`StdVfs` in a temp directory) and writes `results/BENCH_recovery.json`
//! so the durability perf trajectory is tracked across PRs.
//!
//! The timed phases, per workload:
//!
//! * `append_us_total` / `appends_per_sec` / `wal_mb_per_sec` — logging the
//!   whole mutation stream (~80% inserts, ~20% removes) un-synced, plus one
//!   final sync: the batched-acknowledgment throughput ceiling;
//! * `synced_append_us` — median per-mutation cost with
//!   `DurabilityConfig::sync_acks` on (one `fsync` per acknowledgment) —
//!   the price of the "synced acks never lost" guarantee;
//! * `open_us` — `DurableDatabase::open`: load the base snapshot, truncate
//!   any torn tail, replay every logged mutation;
//! * `rebuild_us` — `GraphDatabase::from_graphs` over the same live set:
//!   what a process start would pay with no storage engine at all.
//!   `recovery_vs_rebuild` is `open_us / rebuild_us` — below 1 means
//!   recovering from disk beats recomputing.
//!
//! Usage: `bench_recovery [--mutations N] [--base N] [--repeats K]
//! [--out PATH] [--check]`. `--check` re-reads the written file and asserts
//! it parses, every workload's `replay_scan_match` flag is true (the
//! recovered database answered a scan bit-identically — matches *and*
//! posteriors — to a fresh rebuild over its live set), and every timing is
//! a positive finite number. CI runs this as a smoke step.

use std::process::ExitCode;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::mixed_size_online_workload;
use gbd_store::{DurableDatabase, StdVfs};
use gbda_core::{
    DurabilityConfig, DynamicEngine, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine,
};

struct Options {
    mutations: usize,
    base: usize,
    repeats: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        mutations: 10_000,
        base: 1_000,
        repeats: 3,
        out: "results/BENCH_recovery.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mutations" => {
                let value = args.next().ok_or("--mutations needs a value")?;
                options.mutations = value.parse::<usize>().map_err(|e| e.to_string())?.max(10);
            }
            "--base" => {
                let value = args.next().ok_or("--base needs a value")?;
                options.base = value.parse::<usize>().map_err(|e| e.to_string())?.max(8);
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Times one re-runnable phase: one warm-up, then `repeats` timed runs.
fn timed<T>(repeats: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    std::hint::black_box(run());
    let mut samples = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let value = run();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        last = Some(value);
    }
    (median_us(samples), last.expect("at least one repeat"))
}

fn bench_workload(mutations: usize, base_n: usize, repeats: usize) -> Result<JsonValue, String> {
    eprintln!("# workload: {base_n} base graphs, {mutations} logged mutations");
    let dir = std::env::temp_dir().join(format!("gbda-bench-recovery-{base_n}-{mutations}"));
    std::fs::remove_dir_all(&dir).ok();

    let (base_graphs, query) = mixed_size_online_workload(base_n);
    let base = GraphDatabase::from_graphs(base_graphs);
    let (delta_graphs, _) = mixed_size_online_workload(mutations.max(8));
    let mut fresh = delta_graphs.into_iter();

    // Phase 1: log the mutation stream un-synced + one final sync — the
    // batched-ack throughput ceiling of the WAL itself.
    let batched = DurabilityConfig::default().with_sync_acks(false);
    let mut db = DurableDatabase::create(StdVfs, &dir, base.clone(), batched)
        .map_err(|e| format!("create: {e}"))?;
    let mut live: Vec<u64> = (0..base_n as u64).collect();
    let append_started = Instant::now();
    for step in 0..mutations {
        if step % 5 == 4 && live.len() > 1 {
            let victim = live.swap_remove(step * 7 % live.len());
            db.remove(victim).map_err(|e| format!("remove: {e}"))?;
        } else {
            let graph = fresh.next().expect("enough fresh graphs");
            live.push(db.insert(graph).map_err(|e| format!("insert: {e}"))?);
        }
    }
    db.sync().map_err(|e| format!("final sync: {e}"))?;
    let append_us_total = append_started.elapsed().as_secs_f64() * 1e6;
    let wal_bytes = db.wal_bytes();
    let live_len = db.len();
    drop(db);

    // Phase 2: recovery — snapshot load + full log replay.
    let (open_us, recovered) = timed(repeats, || {
        DurableDatabase::open(StdVfs, &dir, DurabilityConfig::default()).expect("recovery succeeds")
    });
    if recovered.len() != live_len {
        return Err(format!(
            "recovered {} live graphs, expected {live_len}",
            recovered.len()
        ));
    }

    // Phase 3: the no-storage-engine alternative — rebuild from scratch.
    let survivors: Vec<_> = recovered
        .database()
        .live_graphs()
        .map(|(_, g)| g.clone())
        .collect();
    let ids: Vec<u64> = recovered.database().live_ids();
    let (rebuild_us, rebuilt) = timed(repeats, || {
        GraphDatabase::with_alphabets(
            std::hint::black_box(survivors.clone()),
            recovered.database().alphabets(),
        )
    });

    // Replay bit-identity: the recovered database must answer a scan
    // exactly like a fresh rebuild over the same live set (shared index).
    let config = GbdaConfig::new(4, 0.8).with_sample_pairs(200);
    let index = OfflineIndex::build(&rebuilt, &config).expect("offline stage builds");
    let static_scan = QueryEngine::new(&rebuilt, &index, config.clone()).search(&query);
    let dynamic_scan = DynamicEngine::new(recovered.database(), &index, config).search(&query);
    let static_ids: Vec<u64> = static_scan.matches.iter().map(|&i| ids[i]).collect();
    let replay_scan_match = dynamic_scan.matches == static_ids
        && dynamic_scan.posteriors.len() == static_scan.posteriors.len()
        && dynamic_scan
            .posteriors
            .iter()
            .zip(&static_scan.posteriors)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    // Phase 4: the per-ack sync price, sampled on the recovered handle
    // (opened with the default sync-on-ack discipline).
    let mut recovered = recovered;
    let sync_samples = 50.min(mutations);
    let mut samples = Vec::with_capacity(sync_samples);
    for _ in 0..sync_samples {
        let graph = fresh.next().expect("enough fresh graphs");
        let started = Instant::now();
        recovered
            .insert(graph)
            .map_err(|e| format!("synced insert: {e}"))?;
        samples.push(started.elapsed().as_secs_f64() * 1e6);
    }
    let synced_append_us = median_us(samples);
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();

    let appends_per_sec = mutations as f64 / (append_us_total / 1e6).max(1e-9);
    let wal_mb_per_sec = (wal_bytes as f64 / 1e6) / (append_us_total / 1e6).max(1e-9);
    let recovery_vs_rebuild = open_us / rebuild_us.max(1e-9);
    eprintln!(
        "  append {append_us_total:>12.1} µs total ({appends_per_sec:>9.0}/s, \
         {wal_mb_per_sec:.1} MB/s, wal {wal_bytes} B) | synced append {synced_append_us:>8.1} µs"
    );
    eprintln!(
        "  open {open_us:>12.1} µs | rebuild {rebuild_us:>12.1} µs | \
         recovery/rebuild {recovery_vs_rebuild:.3} | scan_match {replay_scan_match}"
    );

    let number = JsonValue::Number;
    Ok(JsonValue::Object(vec![
        ("base_len".into(), number(base_n as f64)),
        ("mutations".into(), number(mutations as f64)),
        ("live_len".into(), number(live_len as f64)),
        ("wal_bytes".into(), number(wal_bytes as f64)),
        ("repeats".into(), number(repeats as f64)),
        ("append_us_total".into(), number(append_us_total)),
        ("appends_per_sec".into(), number(appends_per_sec)),
        ("wal_mb_per_sec".into(), number(wal_mb_per_sec)),
        ("synced_append_us".into(), number(synced_append_us)),
        ("open_us".into(), number(open_us)),
        ("rebuild_us".into(), number(rebuild_us)),
        ("recovery_vs_rebuild".into(), number(recovery_vs_rebuild)),
        (
            "replay_scan_match".into(),
            JsonValue::Bool(replay_scan_match),
        ),
    ]))
}

/// The CI guard: the file parses, the recovered database scanned
/// bit-identically to a fresh rebuild, and every timing is a real number.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let workloads = document
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("no workloads recorded".into());
    }
    for workload in workloads {
        let n = workload
            .get("mutations")
            .and_then(JsonValue::as_usize)
            .ok_or("missing mutations")?;
        match workload.get("replay_scan_match") {
            Some(JsonValue::Bool(true)) => {}
            other => {
                return Err(format!(
                    "workload {n}: replay_scan_match is {other:?} — recovery diverged from rebuild"
                ))
            }
        }
        for field in [
            "append_us_total",
            "synced_append_us",
            "open_us",
            "rebuild_us",
            "recovery_vs_rebuild",
        ] {
            let value = workload
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("workload {n}: missing {field}"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("workload {n}: {field} = {value} is not a timing"));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let workloads = match bench_workload(options.mutations, options.base, options.repeats) {
        Ok(entry) => vec![entry],
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let document = JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("recovery".into())),
        (
            "snapshot_version".into(),
            JsonValue::Number(f64::from(gbd_store::format::VERSION)),
        ),
        ("workloads".into(), JsonValue::Array(workloads)),
    ]);
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => eprintln!("check passed: recovery replays to a scan-bit-identical state"),
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
