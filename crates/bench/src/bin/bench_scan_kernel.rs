//! Machine-readable scan-kernel micro-benchmark: times the pieces the
//! hardware-fast scan path is built from and writes
//! `results/BENCH_scan_kernel.json` so kernel-level perf is tracked across
//! PRs, independently of the end-to-end online bench.
//!
//! Per database size, three sections:
//!
//! * `intersection` — the stage-3 postings kernel over the whole segment:
//!   the pre-adaptive linear reference walk
//!   (`FilterCascade::intersections_linear`) vs. the adaptive
//!   chunked/galloping cursors (`FilterCascade::intersections`). The two
//!   accumulators are asserted bit-identical on every run.
//! * `search` — the full cascade-fast threshold scan with the stage planner
//!   on (default) vs. pinned to the fixed pipeline
//!   (`force_fixed_pipeline`); match sets are asserted identical.
//! * `top_k` — the ranked scan under the same planner on/off split; hit
//!   lists (ids and posteriors) are asserted identical.
//!
//! Usage: `bench_scan_kernel [--graphs N[,N…]] [--repeats K] [--out PATH]
//! [--check]`. `--check` re-reads the written file and asserts the recorded
//! bit-identity flags are all true and every search mode's counters
//! partition the database — the CI guard against the adaptive kernel or the
//! planner silently changing results.

use std::process::ExitCode;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::mixed_size_online_workload;
use gbd_graph::BranchMultiset;
use gbda_core::{FilterCascade, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine};

struct Options {
    graphs: Vec<usize>,
    repeats: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        graphs: vec![1_000, 10_000],
        repeats: 9,
        out: "results/BENCH_scan_kernel.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--graphs" => {
                let value = args.next().ok_or("--graphs needs a value")?;
                options.graphs = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                if options.graphs.iter().any(|&n| n < 8) {
                    return Err("--graphs values must be at least 8".into());
                }
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Times one closure: a few warm-ups, then `repeats` timed runs, median µs.
fn time_median<T>(repeats: usize, run: impl Fn() -> T) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(run());
    }
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let started = Instant::now();
        std::hint::black_box(run());
        samples.push(started.elapsed().as_secs_f64() * 1e6);
    }
    median_us(samples)
}

fn bench_workload(n: usize, repeats: usize) -> JsonValue {
    eprintln!("# workload: {n} graphs");
    let (graphs, query) = mixed_size_online_workload(n);
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(5, 0.8)
        .with_sample_pairs(500)
        .with_record_posteriors(false);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");

    // Section 1 — the stage-3 intersection kernel, whole segment.
    let multiset = BranchMultiset::from_graph(&query);
    let flat = database.catalog().flatten_lookup(&multiset);
    let cascade = FilterCascade::new(&database, &flat, None);
    let linear = cascade.intersections_linear(0..database.len());
    let adaptive = cascade.intersections(0..database.len());
    let adaptive_matches_linear = linear == adaptive;
    assert!(
        adaptive_matches_linear,
        "adaptive postings kernel diverges from the linear reference walk"
    );
    let postings: usize = flat
        .runs()
        .iter()
        .map(|run| {
            if (run.id as usize) < database.catalog().len() {
                database.postings(run.id).len()
            } else {
                0
            }
        })
        .sum();
    let linear_us = time_median(repeats, || cascade.intersections_linear(0..database.len()));
    let adaptive_us = time_median(repeats, || cascade.intersections(0..database.len()));
    eprintln!(
        "  intersection       linear {linear_us:>10.1} µs   adaptive {adaptive_us:>10.1} µs   \
         ({postings} postings)"
    );

    // Section 2 — the threshold scan, planner on vs. fixed pipeline.
    let planner_engine = QueryEngine::new(&database, &index, config.clone());
    let fixed_engine = QueryEngine::new(
        &database,
        &index,
        config.clone().with_force_fixed_pipeline(true),
    );
    // Warm the planner past its prior phase so the timed runs measure its
    // steady-state schedule.
    for _ in 0..10 {
        std::hint::black_box(planner_engine.search(&query));
    }
    let planner_outcome = planner_engine.search(&query);
    let fixed_outcome = fixed_engine.search(&query);
    let planner_matches_fixed = planner_outcome.matches == fixed_outcome.matches;
    assert!(
        planner_matches_fixed,
        "planner-scheduled search diverges from the fixed pipeline"
    );
    let planner_us = time_median(repeats, || planner_engine.search(&query));
    let fixed_us = time_median(repeats, || fixed_engine.search(&query));
    eprintln!(
        "  search             planner {planner_us:>9.1} µs   fixed {fixed_us:>13.1} µs   \
         (matches {})",
        planner_outcome.matches.len()
    );

    // Section 3 — the ranked scan under the same split.
    let k = 10.min(n);
    for _ in 0..10 {
        std::hint::black_box(planner_engine.search_top_k(&query, k));
    }
    let planner_top = planner_engine.search_top_k(&query, k);
    let fixed_top = fixed_engine.search_top_k(&query, k);
    let topk_matches_fixed = planner_top.hits.len() == fixed_top.hits.len()
        && planner_top
            .hits
            .iter()
            .zip(&fixed_top.hits)
            .all(|(a, b)| a.id == b.id && a.posterior == b.posterior);
    assert!(
        topk_matches_fixed,
        "planner-scheduled top-k diverges from the fixed pipeline"
    );
    let planner_topk_us = time_median(repeats, || planner_engine.search_top_k(&query, k));
    let fixed_topk_us = time_median(repeats, || fixed_engine.search_top_k(&query, k));
    eprintln!(
        "  top_k (k={k})       planner {planner_topk_us:>9.1} µs   fixed \
         {fixed_topk_us:>13.1} µs"
    );

    let stats_json = |stats: &gbda_core::SearchStats| {
        let number = |v: usize| JsonValue::Number(v as f64);
        JsonValue::Object(vec![
            ("evaluated".into(), number(stats.evaluated)),
            ("bound_rejected".into(), number(stats.bound_rejected)),
            ("bound_accepted".into(), number(stats.bound_accepted)),
            ("rank_rejected".into(), number(stats.rank_rejected)),
            ("stage2_decided".into(), number(stats.stage2_decided)),
            ("postings_resolved".into(), number(stats.postings_resolved)),
            ("merged".into(), number(stats.merged)),
            ("planned_scans".into(), number(stats.planned_scans)),
            (
                "plan_skipped_stage2".into(),
                number(stats.plan_skipped_stage2),
            ),
            (
                "plan_postings_first".into(),
                number(stats.plan_postings_first),
            ),
        ])
    };

    JsonValue::Object(vec![
        (
            "database_len".into(),
            JsonValue::Number(database.len() as f64),
        ),
        ("repeats".into(), JsonValue::Number(repeats as f64)),
        (
            "intersection".into(),
            JsonValue::Object(vec![
                ("linear_us".into(), JsonValue::Number(linear_us)),
                ("adaptive_us".into(), JsonValue::Number(adaptive_us)),
                ("postings".into(), JsonValue::Number(postings as f64)),
                (
                    "adaptive_matches_linear".into(),
                    JsonValue::Bool(adaptive_matches_linear),
                ),
            ]),
        ),
        (
            "search".into(),
            JsonValue::Object(vec![
                ("planner_us".into(), JsonValue::Number(planner_us)),
                ("fixed_us".into(), JsonValue::Number(fixed_us)),
                (
                    "matches".into(),
                    JsonValue::Number(planner_outcome.matches.len() as f64),
                ),
                (
                    "planner_matches_fixed".into(),
                    JsonValue::Bool(planner_matches_fixed),
                ),
                ("planner_stats".into(), stats_json(&planner_outcome.stats)),
                ("fixed_stats".into(), stats_json(&fixed_outcome.stats)),
            ]),
        ),
        (
            "top_k".into(),
            JsonValue::Object(vec![
                ("k".into(), JsonValue::Number(k as f64)),
                ("planner_us".into(), JsonValue::Number(planner_topk_us)),
                ("fixed_us".into(), JsonValue::Number(fixed_topk_us)),
                (
                    "planner_matches_fixed".into(),
                    JsonValue::Bool(topk_matches_fixed),
                ),
            ]),
        ),
    ])
}

/// The CI guard: the file parses, every recorded bit-identity flag is true,
/// and every search variant's counters partition the database.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let workloads = document
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("no workloads recorded".into());
    }
    for workload in workloads {
        let n = workload
            .get("database_len")
            .and_then(JsonValue::as_usize)
            .ok_or("missing database_len")?;
        for (section, flag) in [
            ("intersection", "adaptive_matches_linear"),
            ("search", "planner_matches_fixed"),
            ("top_k", "planner_matches_fixed"),
        ] {
            let value = workload
                .get(section)
                .and_then(|s| s.get(flag))
                .and_then(JsonValue::as_bool)
                .ok_or(format!("missing {section}.{flag}"))?;
            if !value {
                return Err(format!("{section}.{flag} is false — results diverged"));
            }
        }
        for stats_key in ["planner_stats", "fixed_stats"] {
            let stats = workload
                .get("search")
                .and_then(|s| s.get(stats_key))
                .ok_or(format!("missing search.{stats_key}"))?;
            let field = |key: &str| {
                stats
                    .get(key)
                    .and_then(JsonValue::as_usize)
                    .ok_or(format!("missing search.{stats_key}.{key}"))
            };
            let partition = field("bound_rejected")?
                + field("bound_accepted")?
                + field("rank_rejected")?
                + field("postings_resolved")?
                + field("merged")?;
            if partition != n {
                return Err(format!(
                    "search.{stats_key}: stage partition ({partition}) != database_len ({n}) — \
                     a scan stage lost or double-counted graphs"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let workloads: Vec<JsonValue> = options
        .graphs
        .iter()
        .map(|&n| bench_workload(n, options.repeats))
        .collect();
    let document = JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("scan_kernel".into())),
        ("workloads".into(), JsonValue::Array(workloads)),
    ]);
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => {
                eprintln!("check passed: kernels bit-identical, every scan stage accounted for")
            }
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
