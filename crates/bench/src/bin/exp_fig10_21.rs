//! Regenerates Figures 10–21 (precision / recall / F1 vs τ̂ on real-like data).
fn main() {
    let taus: Vec<u64> = (1..=10).collect();
    for table in gbd_bench::experiments::fig10_21(&taus).expect("offline stage builds") {
        table.print();
        let _ = table.save("fig10_21.md");
    }
}
