//! Machine-readable ranked-query benchmark: times top-k search across engine
//! modes on the synthetic mixed-size workload and writes
//! `results/BENCH_topk.json` so the perf trajectory is tracked across PRs.
//!
//! Modes per `(database size, k)`:
//!
//! * `full_scan_sort` — the definitional baseline: one recording cascade
//!   scan (a posterior for every graph), then sort by (posterior desc,
//!   index asc) and truncate to `k`;
//! * `topk_cascade` — `search_top_k` with the filter cascade on: the
//!   running k-th-best posterior tightens a per-extended-size ϕ cutoff that
//!   rejects graphs from their bounds alone;
//! * `topk_merge` — `search_top_k` with the cascade off: every graph pays a
//!   flat merge, only the bounded heap differs from the baseline.
//!
//! Every mode is asserted bit-identical to the baseline ranking **while
//! running** — a divergence aborts before any JSON is written. Usage:
//! `bench_topk [--graphs N[,N…]] [--k K[,K…]] [--repeats R] [--out PATH]
//! [--check]`. `--check` re-reads the written file, asserts it parses, that
//! every workload recorded `reference_equal = true`, and that every ranked
//! mode's stage counters partition the database — the CI guard against
//! silently broken rank pruning.

use std::process::ExitCode;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::{mixed_size_online_workload, MIXED_SIZE_BUCKETS};
use gbda_core::{
    rank_by_posterior, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine, RankedHit, SearchStats,
};

struct Options {
    graphs: Vec<usize>,
    ks: Vec<usize>,
    repeats: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        graphs: vec![1_000, 10_000],
        ks: vec![10],
        repeats: 9,
        out: "results/BENCH_topk.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--graphs" => {
                let value = args.next().ok_or("--graphs needs a value")?;
                options.graphs = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                if options.graphs.iter().any(|&n| n < 8) {
                    return Err("--graphs values must be at least 8".into());
                }
            }
            "--k" => {
                let value = args.next().ok_or("--k needs a value")?;
                options.ks = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                if options.ks.contains(&0) {
                    return Err("--k values must be at least 1".into());
                }
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn stats_json(s: &SearchStats) -> JsonValue {
    let number = |n: usize| JsonValue::Number(n as f64);
    JsonValue::Object(vec![
        ("evaluated".into(), number(s.evaluated)),
        ("rank_rejected".into(), number(s.rank_rejected)),
        ("postings_resolved".into(), number(s.postings_resolved)),
        ("merged".into(), number(s.merged)),
        ("heap_inserts".into(), number(s.heap_inserts)),
        ("cache_hits".into(), number(s.cache_hits)),
        ("cache_misses".into(), number(s.cache_misses)),
    ])
}

/// Times one mode: two warm-up runs, then `repeats` timed runs returning the
/// last run's `(hits, stats)`.
fn run_mode(
    repeats: usize,
    run: impl Fn() -> (Vec<RankedHit>, SearchStats),
) -> (f64, Vec<RankedHit>, SearchStats) {
    for _ in 0..2 {
        std::hint::black_box(run());
    }
    let mut samples = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let result = run();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        last = Some(result);
    }
    let (hits, stats) = last.expect("at least one repeat ran");
    (median_us(samples), hits, stats)
}

/// One timed mode: name plus the closure producing `(hits, stats)`.
type ModeRunner<'a> = (&'a str, Box<dyn Fn() -> (Vec<RankedHit>, SearchStats) + 'a>);

fn hits_equal(a: &[RankedHit], b: &[RankedHit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.id == y.id && x.posterior.to_bits() == y.posterior.to_bits())
}

fn bench_workload(n: usize, k: usize, repeats: usize) -> JsonValue {
    eprintln!("# workload: {n} graphs, k = {k}");
    let (graphs, query) = mixed_size_online_workload(n);
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(5, 0.8).with_sample_pairs(500);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");

    let recording = QueryEngine::new(&database, &index, config.clone());
    let cascade = QueryEngine::new(
        &database,
        &index,
        config.clone().with_record_posteriors(false),
    );
    let merge = QueryEngine::new(
        &database,
        &index,
        config
            .clone()
            .with_record_posteriors(false)
            .with_filter_cascade(false),
    );

    let runs: Vec<ModeRunner<'_>> = vec![
        (
            "full_scan_sort",
            Box::new(|| {
                let outcome = recording.search(&query);
                (rank_by_posterior(&outcome.posteriors, k), outcome.stats)
            }),
        ),
        (
            "topk_cascade",
            Box::new(|| {
                let outcome = cascade.search_top_k(&query, k);
                (outcome.hits, outcome.stats)
            }),
        ),
        (
            "topk_merge",
            Box::new(|| {
                let outcome = merge.search_top_k(&query, k);
                (outcome.hits, outcome.stats)
            }),
        ),
    ];

    let mut modes = Vec::new();
    let mut reference: Option<Vec<RankedHit>> = None;
    let mut reference_equal = true;
    for (name, run) in runs {
        let (median, hits, stats) = run_mode(repeats, run);
        eprintln!(
            "  {name:<16} median {median:>10.1} µs  (rank_rejected {}, resolved {}, merged {})",
            stats.rank_rejected, stats.postings_resolved, stats.merged,
        );
        match &reference {
            None => reference = Some(hits.clone()),
            Some(expected) => {
                if !hits_equal(&hits, expected) {
                    eprintln!("  mode {name} DIVERGES from full_scan_sort");
                    reference_equal = false;
                }
            }
        }
        modes.push(JsonValue::Object(vec![
            ("mode".into(), JsonValue::String(name.into())),
            ("median_us".into(), JsonValue::Number(median)),
            ("hits".into(), JsonValue::Number(hits.len() as f64)),
            ("stats".into(), stats_json(&stats)),
        ]));
    }
    assert!(
        reference_equal,
        "a ranked mode diverged from the sort-truncate reference"
    );

    JsonValue::Object(vec![
        (
            "database_len".into(),
            JsonValue::Number(database.len() as f64),
        ),
        ("k".into(), JsonValue::Number(k as f64)),
        (
            "bucket_sizes".into(),
            JsonValue::Array(
                MIXED_SIZE_BUCKETS
                    .iter()
                    .map(|&s| JsonValue::Number(s as f64))
                    .collect(),
            ),
        ),
        ("tau_hat".into(), JsonValue::Number(5.0)),
        ("repeats".into(), JsonValue::Number(repeats as f64)),
        ("reference_equal".into(), JsonValue::Bool(reference_equal)),
        ("modes".into(), JsonValue::Array(modes)),
    ])
}

/// The CI guard: the file parses, every workload proved its modes equal to
/// the sort-truncate reference, and every ranked mode's stage counters
/// partition the database.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let workloads = document
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("no workloads recorded".into());
    }
    for workload in workloads {
        let n = workload
            .get("database_len")
            .and_then(JsonValue::as_usize)
            .ok_or("missing database_len")?;
        match workload.get("reference_equal") {
            Some(JsonValue::Bool(true)) => {}
            _ => return Err("workload did not prove top-k ≡ sort-truncate".into()),
        }
        let modes = workload
            .get("modes")
            .and_then(JsonValue::as_array)
            .ok_or("missing modes array")?;
        for mode in modes {
            let name = mode.get("mode").and_then(JsonValue::as_str).unwrap_or("?");
            if !name.starts_with("topk") {
                continue;
            }
            let stats = mode.get("stats").ok_or("missing stats")?;
            let field = |key: &str| {
                stats
                    .get(key)
                    .and_then(JsonValue::as_usize)
                    .ok_or(format!("mode {name}: missing stat {key}"))
            };
            let accounted =
                field("rank_rejected")? + field("postings_resolved")? + field("merged")?;
            if accounted != n {
                return Err(format!(
                    "mode {name}: rank_rejected + postings_resolved + merged ({accounted}) != \
                     database_len ({n}) — rank pruning is silently broken"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let mut workloads = Vec::new();
    for &n in &options.graphs {
        for &k in &options.ks {
            workloads.push(bench_workload(n, k, options.repeats));
        }
    }
    let document = JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("topk".into())),
        ("workloads".into(), JsonValue::Array(workloads)),
    ]);
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => {
                eprintln!("check passed: JSON parses, top-k ≡ sort-truncate, stages accounted for")
            }
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
