//! Regenerates Figures 8 and 9 (query time vs graph size on Syn-1 / Syn-2).
fn main() {
    let sizes = [100usize, 200, 400, 800];
    for scale_free in [true, false] {
        let table =
            gbd_bench::experiments::fig8_9(scale_free, &sizes, 200).expect("offline stage builds");
        table.print();
        let _ = table.save("fig8_9.md");
    }
}
