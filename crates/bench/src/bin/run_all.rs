//! Regenerates every table and figure of the paper in one run, writing the
//! results under `results/`. Pass experiment names (e.g. `fig7 table3`) to
//! run a subset of the registry.
use std::time::Instant;

fn main() {
    let selected: Vec<String> = std::env::args().skip(1).collect();
    let registry = gbd_bench::experiments::registry();
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|s| !registry.iter().any(|e| e.name == s.as_str()))
        .collect();
    if !unknown.is_empty() {
        let names: Vec<&str> = registry.iter().map(|e| e.name).collect();
        eprintln!(
            "error: unknown experiment(s) {unknown:?}; available: {}",
            names.join(", ")
        );
        std::process::exit(2);
    }
    let started = Instant::now();
    println!("# GBDA experiment suite\n");

    for experiment in registry {
        if !selected.is_empty() && !selected.iter().any(|s| s == experiment.name) {
            continue;
        }
        println!("## {} ({})\n", experiment.name, experiment.artefacts);
        let tables = match experiment.run() {
            Ok(tables) => tables,
            Err(error) => {
                eprintln!("error: experiment {} failed: {error}", experiment.name);
                std::process::exit(1);
            }
        };
        for table in tables {
            table.print();
            let _ = table.save("all.md");
        }
    }
    println!(
        "\ntotal experiment-suite time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
    // One introspection snapshot for the whole suite, beside the tables.
    gbd_bench::write_telemetry_sidecar("results/all.json");
}
