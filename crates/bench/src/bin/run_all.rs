//! Regenerates every table and figure of the paper in one run, writing the
//! results under `results/`.
use std::time::Instant;

fn main() {
    let started = Instant::now();
    println!("# GBDA experiment suite\n");

    let t3 = gbd_bench::experiments::table3();
    t3.print();
    let _ = t3.save("all.md");

    let (t4, t5) = gbd_bench::experiments::table4_and_5();
    t4.print();
    t5.print();
    let _ = t4.save("all.md");
    let _ = t5.save("all.md");

    for table in [gbd_bench::experiments::fig5(), gbd_bench::experiments::fig6()] {
        table.print();
        let _ = table.save("all.md");
    }

    let f7 = gbd_bench::experiments::fig7();
    f7.print();
    let _ = f7.save("all.md");

    for scale_free in [true, false] {
        let table = gbd_bench::experiments::fig8_9(scale_free, &[100, 200, 400], 200);
        table.print();
        let _ = table.save("all.md");
    }

    let taus: Vec<u64> = (1..=10).collect();
    for table in gbd_bench::experiments::fig10_21(&taus) {
        table.print();
        let _ = table.save("all.md");
    }
    for table in gbd_bench::experiments::fig22_29(&taus) {
        table.print();
        let _ = table.save("all.md");
    }
    for table in gbd_bench::experiments::fig31_42(&[80, 160], &[15, 20, 25, 30], 160) {
        table.print();
        let _ = table.save("all.md");
    }
    println!("\ntotal experiment-suite time: {:.1}s", started.elapsed().as_secs_f64());
}
