//! Regenerates Figures 22–29 (GBDA vs its V1 / V2 variants).
fn main() {
    let taus: Vec<u64> = (1..=10).collect();
    for table in gbd_bench::experiments::fig22_29(&taus).expect("offline stage builds") {
        table.print();
        let _ = table.save("fig22_29.md");
    }
}
