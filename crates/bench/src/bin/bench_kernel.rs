//! Machine-readable scan-kernel benchmark: times and cross-checks all four
//! kernel instantiation families — threshold, top-k, batch and dynamic — on
//! the synthetic mixed-size workload and writes `results/BENCH_kernel.json`.
//!
//! Every family is asserted **bit-identical to its reference while
//! running** — a divergence aborts before any JSON is written:
//!
//! * `threshold` — `QueryEngine::search` (StaticPhi × CollectAll) vs the
//!   seed-faithful `reference_search`, matches and recorded posterior bits;
//! * `topk` — `QueryEngine::search_top_k` (TighteningRank × TopKSink) vs
//!   the sort-truncate `top_k_reference`;
//! * `batch` — `search_batch` (work-stealing cursor) vs per-query `search`;
//! * `dynamic` — `DynamicEngine::search` over base + delta + tombstones vs
//!   `reference_search` on a fresh rebuild of the survivors.
//!
//! Usage: `bench_kernel [--graphs N[,N…]] [--k K] [--repeats R] [--out PATH]
//! [--check]`. `--check` re-reads the written file, asserts it parses, that
//! every family recorded `identical = true`, and that every mode's stage
//! counters partition the evaluated set
//! (`bound_rejected + bound_accepted + rank_rejected + postings_resolved +
//! merged == evaluated`) — the CI guard against a silently broken kernel.

use std::process::ExitCode;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::mixed_size_online_workload;
use gbda_core::{
    DynamicDatabase, DynamicEngine, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine,
    SearchStats,
};

struct Options {
    graphs: Vec<usize>,
    k: usize,
    repeats: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        graphs: vec![1_000],
        k: 10,
        repeats: 9,
        out: "results/BENCH_kernel.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--graphs" => {
                let value = args.next().ok_or("--graphs needs a value")?;
                options.graphs = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                if options.graphs.iter().any(|&n| n < 64) {
                    return Err("--graphs values must be at least 64".into());
                }
            }
            "--k" => {
                let value = args.next().ok_or("--k needs a value")?;
                options.k = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn stats_json(s: &SearchStats) -> JsonValue {
    let number = |n: usize| JsonValue::Number(n as f64);
    JsonValue::Object(vec![
        ("evaluated".into(), number(s.evaluated)),
        ("bound_rejected".into(), number(s.bound_rejected)),
        ("bound_accepted".into(), number(s.bound_accepted)),
        ("rank_rejected".into(), number(s.rank_rejected)),
        ("postings_resolved".into(), number(s.postings_resolved)),
        ("merged".into(), number(s.merged)),
        ("cache_hits".into(), number(s.cache_hits)),
        ("cache_misses".into(), number(s.cache_misses)),
    ])
}

/// Times one closure: two warm-up runs, then `repeats` timed runs returning
/// the last run's stats alongside the median time.
fn run_mode(repeats: usize, run: impl Fn() -> SearchStats) -> (f64, SearchStats) {
    for _ in 0..2 {
        std::hint::black_box(run());
    }
    let mut samples = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let stats = run();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        last = Some(stats);
    }
    (median_us(samples), last.expect("at least one repeat ran"))
}

fn mode_json(name: &str, median: f64, stats: &SearchStats, identical: bool) -> JsonValue {
    eprintln!(
        "  {name:<18} median {median:>10.1} µs  identical={identical}  \
         (bound_rej {}, bound_acc {}, rank_rej {}, resolved {}, merged {})",
        stats.bound_rejected,
        stats.bound_accepted,
        stats.rank_rejected,
        stats.postings_resolved,
        stats.merged,
    );
    assert!(
        identical,
        "kernel family {name} diverged from its reference"
    );
    JsonValue::Object(vec![
        ("mode".into(), JsonValue::String(name.into())),
        ("median_us".into(), JsonValue::Number(median)),
        ("identical".into(), JsonValue::Bool(identical)),
        ("stats".into(), stats_json(stats)),
    ])
}

fn same_bits(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn bench_workload(n: usize, k: usize, repeats: usize) -> JsonValue {
    eprintln!("# workload: {n} graphs, k = {k}");
    let (graphs, query) = mixed_size_online_workload(n);
    let database = GraphDatabase::from_graphs(graphs.clone());
    let config = GbdaConfig::new(5, 0.8).with_sample_pairs(500);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
    let fast_config = config.clone().with_record_posteriors(false);
    let engine = QueryEngine::new(&database, &index, fast_config.clone());
    let recording = QueryEngine::new(&database, &index, config.clone());

    let mut modes = Vec::new();

    // Family 1 — threshold: StaticPhi × CollectAll vs reference_search.
    let reference = recording.reference_search(&query);
    let recorded = recording.search(&query);
    let threshold_identical = {
        let fast = engine.search(&query);
        fast.matches == reference.matches
            && recorded.matches == reference.matches
            && same_bits(&recorded.posteriors, &reference.posteriors)
    };
    let (median, stats) = run_mode(repeats, || engine.search(&query).stats);
    modes.push(mode_json("threshold", median, &stats, threshold_identical));

    // Family 2 — top-k: TighteningRank × TopKSink vs top_k_reference.
    let expected_top = engine.top_k_reference(&query, k);
    let ranked = engine.search_top_k(&query, k);
    let topk_identical = ranked.hits.len() == expected_top.len()
        && ranked
            .hits
            .iter()
            .zip(&expected_top)
            .all(|(a, b)| a.id == b.id && a.posterior.to_bits() == b.posterior.to_bits());
    let (median, stats) = run_mode(repeats, || engine.search_top_k(&query, k).stats);
    modes.push(mode_json("topk", median, &stats, topk_identical));

    // Family 3 — batch: the work-stealing cursor vs per-query scans.
    let batch_queries: Vec<_> = (0..8)
        .map(|i| database.graph(i * (n / 8)).clone())
        .collect();
    let batch = engine.search_batch(&batch_queries);
    let batch_identical = batch.len() == batch_queries.len()
        && batch.iter().zip(&batch_queries).all(|(outcome, q)| {
            let single = engine.search(q);
            outcome.matches == single.matches && same_bits(&outcome.posteriors, &single.posteriors)
        });
    let (median, stats) = run_mode(repeats, || engine.search_batch_with_stats(&batch_queries).1);
    modes.push(mode_json("batch", median, &stats, batch_identical));

    // Family 4 — dynamic: base + delta + tombstones vs a fresh rebuild.
    let split = n - n / 8;
    let mut dynamic = DynamicDatabase::new(GraphDatabase::from_graphs(graphs[..split].to_vec()));
    for graph in graphs[split..].iter().cloned() {
        dynamic.insert(graph);
    }
    for id in (0..n as u64).step_by(17) {
        dynamic.remove(id).expect("live id removes");
    }
    let (live_ids, survivors): (Vec<u64>, Vec<_>) = dynamic
        .live_graphs()
        .map(|(id, graph)| (id, graph.clone()))
        .unzip();
    let fresh = GraphDatabase::with_alphabets(survivors, dynamic.alphabets());
    let fresh_engine = QueryEngine::new(&fresh, &index, config.clone());
    let dynamic_recording = DynamicEngine::new(&dynamic, &index, config.clone());
    let dynamic_engine = DynamicEngine::new(&dynamic, &index, fast_config.clone());
    let fresh_reference = fresh_engine.reference_search(&query);
    let dynamic_outcome = dynamic_recording.search(&query);
    let expected_ids: Vec<u64> = fresh_reference
        .matches
        .iter()
        .map(|&i| live_ids[i])
        .collect();
    let dynamic_identical = dynamic_outcome.matches == expected_ids
        && same_bits(&dynamic_outcome.posteriors, &fresh_reference.posteriors);
    let (median, stats) = run_mode(repeats, || dynamic_engine.search(&query).stats);
    modes.push(mode_json("dynamic", median, &stats, dynamic_identical));

    JsonValue::Object(vec![
        (
            "database_len".into(),
            JsonValue::Number(database.len() as f64),
        ),
        ("k".into(), JsonValue::Number(k as f64)),
        (
            "batch_queries".into(),
            JsonValue::Number(batch_queries.len() as f64),
        ),
        (
            "dynamic_live".into(),
            JsonValue::Number(live_ids.len() as f64),
        ),
        ("tau_hat".into(), JsonValue::Number(5.0)),
        ("repeats".into(), JsonValue::Number(repeats as f64)),
        ("modes".into(), JsonValue::Array(modes)),
    ])
}

/// The CI guard: the file parses, every kernel family proved itself
/// bit-identical to its reference, and every mode's stage counters partition
/// the evaluated set.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let workloads = document
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("no workloads recorded".into());
    }
    for workload in workloads {
        let modes = workload
            .get("modes")
            .and_then(JsonValue::as_array)
            .ok_or("missing modes array")?;
        if modes.len() < 4 {
            return Err(format!("expected 4 kernel families, found {}", modes.len()));
        }
        for mode in modes {
            let name = mode.get("mode").and_then(JsonValue::as_str).unwrap_or("?");
            match mode.get("identical") {
                Some(JsonValue::Bool(true)) => {}
                _ => {
                    return Err(format!(
                        "family {name} did not prove kernel ≡ reference bit-identity"
                    ))
                }
            }
            let stats = mode.get("stats").ok_or("missing stats")?;
            let field = |key: &str| {
                stats
                    .get(key)
                    .and_then(JsonValue::as_usize)
                    .ok_or(format!("mode {name}: missing stat {key}"))
            };
            let accounted = field("bound_rejected")?
                + field("bound_accepted")?
                + field("rank_rejected")?
                + field("postings_resolved")?
                + field("merged")?;
            let evaluated = field("evaluated")?;
            if accounted != evaluated {
                return Err(format!(
                    "mode {name}: stage counters ({accounted}) do not partition the evaluated \
                     set ({evaluated}) — the kernel accounting is silently broken"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let mut workloads = Vec::new();
    for &n in &options.graphs {
        workloads.push(bench_workload(n, options.k, options.repeats));
    }
    let document = JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("kernel".into())),
        ("workloads".into(), JsonValue::Array(workloads)),
    ]);
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => eprintln!(
                "check passed: JSON parses, all four kernel families ≡ reference, stages \
                 partition"
            ),
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
