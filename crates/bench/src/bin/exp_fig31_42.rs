//! Regenerates Figures 31–42 (effectiveness vs graph size on Syn-1).
fn main() {
    let sizes = [80usize, 160, 320];
    let taus = [15u64, 20, 25, 30];
    for table in gbd_bench::experiments::fig31_42(&sizes, &taus, 160).expect("offline stage builds")
    {
        table.print();
        let _ = table.save("fig31_42.md");
    }
}
