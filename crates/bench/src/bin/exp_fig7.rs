//! Regenerates Figure 7 (query time on real-like datasets).
fn main() {
    let table = gbd_bench::experiments::fig7().expect("offline stage builds");
    table.print();
    let _ = table.save("fig7.md");
}
