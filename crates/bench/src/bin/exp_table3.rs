//! Regenerates Table III (dataset statistics).
fn main() {
    let table = gbd_bench::experiments::table3();
    table.print();
    let _ = table.save("table3.md");
}
