//! Machine-readable online-scan benchmark: times the synthetic mixed-size
//! workload across engine modes and writes `results/BENCH_online_syn.json`
//! so the perf trajectory is tracked across PRs.
//!
//! Modes per database size:
//!
//! * `seed_reference` — the seed-faithful sequential scan
//!   (`reference_search`): one multiset merge + one fresh posterior per
//!   graph;
//! * `merge_memoized` — the PR 2 engine: flat-run merges + posterior memo,
//!   filter cascade off, posteriors recorded;
//! * `cascade_recorded` — filter cascade on, posteriors recorded (the
//!   merge is replaced by the inverted-index count filter);
//! * `cascade_fast` — filter cascade on, posterior recording off (bound
//!   stages resolve whole size buckets before any ϕ is computed).
//!
//! Usage: `bench_online_syn [--graphs N[,N…]] [--repeats K] [--out PATH]
//! [--check]`. `--check` re-reads the written file, asserts it parses and
//! that every mode satisfies `skipped_merges + merged == database_len` —
//! the CI guard against silently disabled filtering.

use std::process::ExitCode;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::{mixed_size_online_workload, MIXED_SIZE_BUCKETS};
use gbda_core::{GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine, SearchOutcome};

/// One timed engine mode: name plus the closure that runs the scan.
type ModeRunner<'a> = (&'a str, Box<dyn Fn() -> SearchOutcome + 'a>);

struct Options {
    graphs: Vec<usize>,
    repeats: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        graphs: vec![1_000, 10_000],
        repeats: 9,
        out: "results/BENCH_online_syn.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--graphs" => {
                let value = args.next().ok_or("--graphs needs a value")?;
                options.graphs = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                if options.graphs.iter().any(|&n| n < 8) {
                    return Err("--graphs values must be at least 8".into());
                }
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn stats_json(outcome: &SearchOutcome) -> JsonValue {
    let s = &outcome.stats;
    let number = |n: usize| JsonValue::Number(n as f64);
    JsonValue::Object(vec![
        ("evaluated".into(), number(s.evaluated)),
        ("bound_rejected".into(), number(s.bound_rejected)),
        ("bound_accepted".into(), number(s.bound_accepted)),
        ("postings_resolved".into(), number(s.postings_resolved)),
        ("merged".into(), number(s.merged)),
        ("threshold_accepts".into(), number(s.threshold_accepts)),
        ("cache_hits".into(), number(s.cache_hits)),
        ("cache_misses".into(), number(s.cache_misses)),
    ])
}

/// Times one engine mode: warm-up runs (enough for the stage planner's
/// profile to reach steady state — it needs 8 observed queries before its
/// measured selectivities take over from the priors), then `repeats` timed
/// runs.
fn run_mode(
    name: &str,
    repeats: usize,
    run: impl Fn() -> SearchOutcome,
) -> (JsonValue, SearchOutcome) {
    for _ in 0..10 {
        std::hint::black_box(run());
    }
    let mut samples = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let outcome = run();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        last = Some(outcome);
    }
    let outcome = last.expect("at least one repeat ran");
    let entry = JsonValue::Object(vec![
        ("mode".into(), JsonValue::String(name.into())),
        ("median_us".into(), JsonValue::Number(median_us(samples))),
        (
            "matches".into(),
            JsonValue::Number(outcome.matches.len() as f64),
        ),
        ("stats".into(), stats_json(&outcome)),
    ]);
    (entry, outcome)
}

fn bench_workload(n: usize, repeats: usize) -> JsonValue {
    eprintln!("# workload: {n} graphs");
    let (graphs, query) = mixed_size_online_workload(n);
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(5, 0.8).with_sample_pairs(500);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");

    let memoized = QueryEngine::new(&database, &index, config.clone().with_filter_cascade(false));
    let cascade = QueryEngine::new(&database, &index, config.clone());
    let fast = QueryEngine::new(
        &database,
        &index,
        config.clone().with_record_posteriors(false),
    );

    let mut modes = Vec::new();
    let mut match_sets: Vec<(String, Vec<usize>)> = Vec::new();
    let runs: Vec<ModeRunner<'_>> = vec![
        (
            "seed_reference",
            Box::new(|| memoized.reference_search(&query)),
        ),
        ("merge_memoized", Box::new(|| memoized.search(&query))),
        ("cascade_recorded", Box::new(|| cascade.search(&query))),
        ("cascade_fast", Box::new(|| fast.search(&query))),
    ];
    for (name, run) in runs {
        let (entry, outcome) = run_mode(name, repeats, run);
        eprintln!(
            "  {name:<18} median {:>10.1} µs  (matches {}, skipped {}, merged {})",
            entry.get("median_us").and_then(JsonValue::as_f64).unwrap(),
            outcome.matches.len(),
            outcome.stats.skipped_merges(),
            outcome.stats.merged,
        );
        modes.push(entry);
        match_sets.push((name.to_owned(), outcome.matches));
    }
    // All modes answer the same question; diverging matches would mean the
    // cascade changed a result.
    for (name, matches) in &match_sets[1..] {
        assert_eq!(
            matches, &match_sets[0].1,
            "mode {name} diverges from seed_reference"
        );
    }

    JsonValue::Object(vec![
        (
            "database_len".into(),
            JsonValue::Number(database.len() as f64),
        ),
        (
            "bucket_sizes".into(),
            JsonValue::Array(
                MIXED_SIZE_BUCKETS
                    .iter()
                    .map(|&s| JsonValue::Number(s as f64))
                    .collect(),
            ),
        ),
        ("tau_hat".into(), JsonValue::Number(5.0)),
        ("gamma".into(), JsonValue::Number(0.8)),
        ("repeats".into(), JsonValue::Number(repeats as f64)),
        ("modes".into(), JsonValue::Array(modes)),
    ])
}

/// The CI guard: the file parses and every mode's counters partition the
/// database (`skipped_merges + merged == database_len`).
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let workloads = document
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("no workloads recorded".into());
    }
    for workload in workloads {
        let n = workload
            .get("database_len")
            .and_then(JsonValue::as_usize)
            .ok_or("missing database_len")?;
        let modes = workload
            .get("modes")
            .and_then(JsonValue::as_array)
            .ok_or("missing modes array")?;
        for mode in modes {
            let name = mode.get("mode").and_then(JsonValue::as_str).unwrap_or("?");
            let stats = mode.get("stats").ok_or("missing stats")?;
            let field = |key: &str| {
                stats
                    .get(key)
                    .and_then(JsonValue::as_usize)
                    .ok_or(format!("mode {name}: missing stat {key}"))
            };
            let skipped =
                field("bound_rejected")? + field("bound_accepted")? + field("postings_resolved")?;
            let merged = field("merged")?;
            if skipped + merged != n {
                return Err(format!(
                    "mode {name}: skipped ({skipped}) + merged ({merged}) != database_len ({n}) — \
                     filtering is silently broken"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let workloads: Vec<JsonValue> = options
        .graphs
        .iter()
        .map(|&n| bench_workload(n, options.repeats))
        .collect();
    let document = JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("online_syn".into())),
        ("workloads".into(), JsonValue::Array(workloads)),
    ]);
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => eprintln!("check passed: JSON parses, every scan stage accounted for"),
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
