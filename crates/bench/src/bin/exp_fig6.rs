//! Regenerates Figure 6 (Jeffreys prior of GEDs over (τ, |V'1|)).
fn main() {
    let table = gbd_bench::experiments::fig6();
    table.print();
    let _ = table.save("fig6.md");
}
