//! Machine-readable storage-engine benchmark: times the snapshot and
//! dynamic-layer lifecycle on the synthetic mixed-size workload and writes
//! `results/BENCH_store.json` so the storage perf trajectory is tracked
//! across PRs.
//!
//! Per database size, the timed phases are:
//!
//! * `build_us` — `GraphDatabase::from_graphs` (the cost a process start
//!   pays without the storage engine);
//! * `save_us` — capturing and writing the snapshot file;
//! * `load_us` — `gbd_store::load_database`: read, decode, validate and
//!   rebuild the database *without* recomputing catalog/aggregates/postings.
//!   `load_speedup` is `build_us / load_us` — the headline number;
//! * `static_scan_us` vs `dynamic_scan_us` — one cascade query over the
//!   compacted equivalent database vs the same query over base + delta +
//!   tombstones (`scan_overhead` is their ratio: the price of serving
//!   un-compacted updates);
//! * `compact_us` — folding delta and tombstones into a fresh base.
//!
//! Usage: `bench_store [--graphs N[,N…]] [--repeats K] [--out PATH]
//! [--check]`. `--check` re-reads the written file and asserts: it parses,
//! every workload's loaded-database scan matched the in-memory scan
//! bit-for-bit, the loaded postings survived a full rebuild audit, and the
//! dynamic scan matched its fresh-rebuild reference — the CI guard that the
//! storage engine round-trips reality, not just bytes.

use std::process::ExitCode;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::mixed_size_online_workload;
use gbd_graph::Vocabulary;
use gbd_store::{load_database, save_database};
use gbda_core::{
    DynamicDatabase, DynamicEngine, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine,
};

struct Options {
    graphs: Vec<usize>,
    repeats: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        graphs: vec![1_000, 10_000],
        repeats: 5,
        out: "results/BENCH_store.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--graphs" => {
                let value = args.next().ok_or("--graphs needs a value")?;
                options.graphs = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                if options.graphs.iter().any(|&n| n < 8) {
                    return Err("--graphs values must be at least 8".into());
                }
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Times one phase: one warm-up run, then `repeats` timed runs; the last
/// run's output is returned alongside the median.
fn timed<T>(repeats: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    std::hint::black_box(run());
    let mut samples = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let value = run();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        last = Some(value);
    }
    (median_us(samples), last.expect("at least one repeat"))
}

fn outcomes_match(a: &[usize], pa: &[f64], b: &[usize], pb: &[f64]) -> bool {
    a == b && pa.len() == pb.len() && pa.iter().zip(pb).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn bench_workload(n: usize, repeats: usize) -> Result<JsonValue, String> {
    eprintln!("# workload: {n} graphs");
    let (graphs, query) = mixed_size_online_workload(n);
    let snapshot_path = std::env::temp_dir().join(format!("gbda-bench-store-{n}.snap"));

    // Phase 1: the cold build (what every process start pays today).
    let (build_us, database) = timed(repeats, || {
        GraphDatabase::from_graphs(std::hint::black_box(graphs.clone()))
    });

    // Phase 2: persist.
    let vocabulary = Vocabulary::new();
    let (save_us, _) = timed(repeats, || {
        save_database(&database, &vocabulary, &snapshot_path).expect("snapshot saves")
    });
    let snapshot_bytes = std::fs::metadata(&snapshot_path)
        .map_err(|e| format!("stat {}: {e}", snapshot_path.display()))?
        .len();

    // Phase 3: reload — the storage engine's raison d'être.
    let (load_us, loaded) = timed(repeats, || {
        load_database(&snapshot_path).expect("snapshot loads").0
    });
    let postings_verified = loaded.verify_postings();

    // The loaded database must answer scans identically to the built one.
    let config = GbdaConfig::new(5, 0.8).with_sample_pairs(500);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
    let built_engine = QueryEngine::new(&database, &index, config.clone());
    let loaded_engine = QueryEngine::new(&loaded, &index, config.clone());
    let built_scan = built_engine.search(&query);
    let loaded_scan = loaded_engine.search(&query);
    let scan_match = outcomes_match(
        &built_scan.matches,
        &built_scan.posteriors,
        &loaded_scan.matches,
        &loaded_scan.posteriors,
    );

    // Phase 4: the dynamic layer. Insert ~5% fresh graphs, remove ~2%.
    let inserts = (n / 20).max(1);
    let removals = (n / 50).max(1);
    let (delta_graphs, _) = mixed_size_online_workload(inserts.max(8));
    let mut dynamic = DynamicDatabase::new(loaded);
    for graph in delta_graphs.into_iter().take(inserts) {
        dynamic.insert(graph);
    }
    for k in 0..removals {
        dynamic
            .remove((k * 7 % n) as u64)
            .expect("base ids are live");
    }
    let dynamic_engine = DynamicEngine::new(&dynamic, &index, config.clone());
    let (dynamic_scan_us, dynamic_scan) = timed(repeats, || dynamic_engine.search(&query));

    // Reference: the compacted equivalent database, scanned statically.
    let survivors: Vec<_> = dynamic.live_graphs().map(|(_, g)| g.clone()).collect();
    let ids = dynamic.live_ids();
    let compacted = GraphDatabase::with_alphabets(survivors, dynamic.alphabets());
    let compacted_engine = QueryEngine::new(&compacted, &index, config);
    let (static_scan_us, static_scan) = timed(repeats, || compacted_engine.search(&query));
    let static_ids: Vec<u64> = static_scan.matches.iter().map(|&i| ids[i]).collect();
    let dynamic_match = dynamic_scan.matches == static_ids
        && dynamic_scan
            .posteriors
            .iter()
            .zip(&static_scan.posteriors)
            .all(|(a, b)| a.to_bits() == b.to_bits())
        && dynamic_scan.posteriors.len() == static_scan.posteriors.len();

    // Phase 5: compaction cost. Compaction consumes the delta, so each run
    // needs its own copy — prepared outside the timed region (`timed` runs
    // one warm-up plus `repeats` measurements).
    let compact_repeats = repeats.min(3);
    let mut copies: Vec<DynamicDatabase> = (0..=compact_repeats).map(|_| dynamic.clone()).collect();
    let (compact_us, _) = timed(compact_repeats, || {
        let mut copy = copies.pop().expect("one copy per run");
        copy.compact();
        copy.base().len()
    });

    std::fs::remove_file(&snapshot_path).ok();

    let load_speedup = build_us / load_us.max(1e-9);
    let scan_overhead = dynamic_scan_us / static_scan_us.max(1e-9);
    eprintln!(
        "  build {build_us:>10.1} µs | save {save_us:>10.1} µs | load {load_us:>10.1} µs \
         ({load_speedup:.2}x faster than build) | snapshot {snapshot_bytes} B"
    );
    eprintln!(
        "  static scan {static_scan_us:>8.1} µs | dynamic scan {dynamic_scan_us:>8.1} µs \
         ({scan_overhead:.2}x) | compact {compact_us:>10.1} µs | scan_match {scan_match} \
         dynamic_match {dynamic_match}"
    );

    let number = |v: f64| JsonValue::Number(v);
    Ok(JsonValue::Object(vec![
        ("database_len".into(), number(database.len() as f64)),
        ("arena_runs".into(), number(database.arena_len() as f64)),
        ("snapshot_bytes".into(), number(snapshot_bytes as f64)),
        ("repeats".into(), number(repeats as f64)),
        ("build_us".into(), number(build_us)),
        ("save_us".into(), number(save_us)),
        ("load_us".into(), number(load_us)),
        ("load_speedup".into(), number(load_speedup)),
        (
            "postings_verified".into(),
            JsonValue::Bool(postings_verified),
        ),
        ("scan_match".into(), JsonValue::Bool(scan_match)),
        ("delta_inserted".into(), number(inserts as f64)),
        ("removed".into(), number(removals as f64)),
        ("static_scan_us".into(), number(static_scan_us)),
        ("dynamic_scan_us".into(), number(dynamic_scan_us)),
        ("scan_overhead".into(), number(scan_overhead)),
        ("dynamic_match".into(), JsonValue::Bool(dynamic_match)),
        ("compact_us".into(), number(compact_us)),
    ]))
}

/// The CI guard: the file parses and every workload's correctness flags are
/// true — the loaded database answered the scan bit-identically, its
/// postings survived the rebuild audit, and the dynamic scan matched its
/// fresh-rebuild reference.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let workloads = document
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("no workloads recorded".into());
    }
    for workload in workloads {
        let n = workload
            .get("database_len")
            .and_then(JsonValue::as_usize)
            .ok_or("missing database_len")?;
        for flag in ["scan_match", "postings_verified", "dynamic_match"] {
            match workload.get(flag) {
                Some(JsonValue::Bool(true)) => {}
                other => {
                    return Err(format!(
                        "workload {n}: {flag} is {other:?} — the storage engine diverged"
                    ))
                }
            }
        }
        for field in ["build_us", "save_us", "load_us", "compact_us"] {
            let value = workload
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("workload {n}: missing {field}"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("workload {n}: {field} = {value} is not a timing"));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let mut workloads = Vec::with_capacity(options.graphs.len());
    for &n in &options.graphs {
        match bench_workload(n, options.repeats) {
            Ok(entry) => workloads.push(entry),
            Err(message) => {
                eprintln!("error: workload {n}: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    let document = JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("store".into())),
        (
            "snapshot_version".into(),
            JsonValue::Number(f64::from(gbd_store::format::VERSION)),
        ),
        ("workloads".into(), JsonValue::Array(workloads)),
    ]);
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => {
                eprintln!("check passed: snapshot round-trip and dynamic scans are bit-identical")
            }
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
