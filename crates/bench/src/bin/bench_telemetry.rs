//! Machine-readable telemetry-overhead benchmark: prices the observability
//! layer and proves it faithful, writing `results/BENCH_telemetry.json`.
//!
//! Three measurements:
//!
//! * **Primitive costs** — nanoseconds per sharded counter increment and
//!   per armed span enter/exit (the two hot-path operations), plus the cost
//!   of a span at `TelemetryLevel::Off` (one relaxed load, the gate every
//!   instrumented call site pays when telemetry is disabled).
//! * **Scan overhead** — the same query stream over the same database at
//!   `Off`, `Metrics` and `MetricsAndTraces`, min-of-repeats;
//!   `metrics_overhead_ratio` is Metrics time over Off time. Counters are
//!   flushed once per finished search from the already-aggregated
//!   [`SearchStats`], so this ratio is the *whole* price of the default
//!   level.
//! * **Partition fidelity** — around a single search on each of the
//!   threshold, top-k and dynamic paths, the registry's counter deltas must
//!   reproduce [`SearchStats::stage_partition`] *bit-exactly*:
//!   `bound_rejected + bound_accepted + rank_rejected + postings_resolved +
//!   merged == evaluated`, with every term equal to its `SearchStats`
//!   counterpart.
//!
//! Usage: `bench_telemetry [--database N] [--queries N] [--repeats K]
//! [--out PATH] [--check]`. `--check` re-reads the written file and asserts
//! the Metrics overhead ratio stays under 1.05 and every partition check
//! matched. CI runs this as a smoke step.

use std::process::ExitCode;
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_bench::workloads::mixed_size_online_workload;
use gbd_telemetry::{global, set_level, span, TelemetryLevel};
use gbda_core::{
    DynamicDatabase, DynamicEngine, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine,
    SearchStats,
};

struct Options {
    database: usize,
    queries: usize,
    repeats: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        database: 10_000,
        queries: 16,
        repeats: 5,
        out: "results/BENCH_telemetry.json".to_owned(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--database" => {
                let value = args.next().ok_or("--database needs a value")?;
                options.database = value.parse::<usize>().map_err(|e| e.to_string())?.max(64);
            }
            "--queries" => {
                let value = args.next().ok_or("--queries needs a value")?;
                options.queries = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse::<usize>().map_err(|e| e.to_string())?.max(1);
            }
            "--out" => options.out = args.next().ok_or("--out needs a value")?,
            "--check" => options.check = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

/// Nanoseconds per operation: `total` timed executions of `op`, min over
/// `repeats` runs (min resists scheduler noise better than the mean).
fn ns_per_op(repeats: usize, total: usize, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..=repeats {
        let started = Instant::now();
        for _ in 0..total {
            op();
        }
        let elapsed = started.elapsed().as_secs_f64() * 1e9 / total as f64;
        // The first (warm-up) run is measured but discarded via min anyway.
        best = best.min(elapsed);
    }
    best
}

/// Seconds for one pass of `queries` searches, min over `repeats` passes.
fn scan_seconds(repeats: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let started = Instant::now();
        pass();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Compares the registry's counter deltas around one search against that
/// search's own [`SearchStats`], term by term.
fn partition_check(
    path: &'static str,
    run: impl FnOnce() -> SearchStats,
) -> (JsonValue, bool, usize) {
    let before = global().snapshot();
    let stats = run();
    let delta = global().snapshot().delta(&before);
    let terms: [(&str, usize); 5] = [
        ("gbda_scan_bound_rejected_total", stats.bound_rejected),
        ("gbda_scan_bound_accepted_total", stats.bound_accepted),
        ("gbda_scan_rank_rejected_total", stats.rank_rejected),
        ("gbda_scan_postings_resolved_total", stats.postings_resolved),
        ("gbda_scan_merged_total", stats.merged),
    ];
    let evaluated = delta.counter("gbda_scan_evaluated_total");
    let partition: u64 = terms.iter().map(|&(name, _)| delta.counter(name)).sum();
    let matched = evaluated == stats.evaluated as u64
        && partition == evaluated
        && stats.stage_partition() == stats.evaluated
        && terms
            .iter()
            .all(|&(name, stat)| delta.counter(name) == stat as u64);
    let number = JsonValue::Number;
    let entry = JsonValue::Object(vec![
        ("path".into(), JsonValue::String(path.into())),
        ("evaluated".into(), number(evaluated as f64)),
        ("partition".into(), number(partition as f64)),
        ("stats_match".into(), JsonValue::Bool(matched)),
    ]);
    (entry, matched, stats.evaluated)
}

fn run_bench(options: &Options) -> Result<JsonValue, String> {
    let number = JsonValue::Number;

    // Primitive costs.
    set_level(TelemetryLevel::Metrics);
    let counter = global().counter(
        "bench_telemetry_increments_total",
        "Scratch counter of the telemetry micro-benchmark.",
    );
    let counter_increment_ns = ns_per_op(options.repeats, 4_000_000, || counter.inc());
    set_level(TelemetryLevel::MetricsAndTraces);
    let span_enter_exit_ns = ns_per_op(options.repeats, 1_000_000, || {
        let _span = span!("bench.span");
    });
    set_level(TelemetryLevel::Off);
    let span_off_ns = ns_per_op(options.repeats, 4_000_000, || {
        let _span = span!("bench.span");
    });
    eprintln!(
        "# primitives: counter inc {counter_increment_ns:.1} ns | span {span_enter_exit_ns:.1} ns \
         | gated-off span {span_off_ns:.2} ns"
    );

    // One database, one index, one engine for every level.
    let (graphs, query) = mixed_size_online_workload(options.database);
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(4, 0.8).with_sample_pairs(200);
    let index = OfflineIndex::build(&database, &config).map_err(|e| format!("offline: {e}"))?;
    let engine = QueryEngine::new(&database, &index, config.clone());

    let mut level_seconds = [0.0f64; 3];
    for (slot, level) in [
        TelemetryLevel::Off,
        TelemetryLevel::Metrics,
        TelemetryLevel::MetricsAndTraces,
    ]
    .into_iter()
    .enumerate()
    {
        set_level(level);
        level_seconds[slot] = scan_seconds(options.repeats, || {
            for _ in 0..options.queries {
                std::hint::black_box(engine.search(std::hint::black_box(&query)));
            }
        });
        eprintln!(
            "# {:>18}: {:>9.1} µs/query",
            level.name(),
            level_seconds[slot] * 1e6 / options.queries as f64
        );
    }
    let [off, metrics, traces] = level_seconds;
    let metrics_overhead_ratio = metrics / off.max(1e-12);
    let traces_overhead_ratio = traces / off.max(1e-12);
    eprintln!(
        "# overhead: metrics/off {metrics_overhead_ratio:.4} | traces/off {traces_overhead_ratio:.4}"
    );

    // Partition fidelity on all three scan paths, at the default level.
    set_level(TelemetryLevel::Metrics);
    let dynamic_database = DynamicDatabase::new(database.clone());
    let dynamic_engine = DynamicEngine::new(&dynamic_database, &index, config.clone());
    let mut checks = Vec::new();
    let mut all_matched = true;
    for (entry, matched, evaluated) in [
        partition_check("threshold", || engine.search(&query).stats),
        partition_check("top_k", || engine.search_top_k(&query, 10).stats),
        partition_check("dynamic", || dynamic_engine.search(&query).stats),
    ] {
        all_matched &= matched && evaluated > 0;
        checks.push(entry);
    }
    eprintln!("# partition bit-match: {all_matched}");

    Ok(JsonValue::Object(vec![
        ("bench".into(), JsonValue::String("telemetry".into())),
        ("database".into(), number(options.database as f64)),
        ("queries".into(), number(options.queries as f64)),
        ("repeats".into(), number(options.repeats as f64)),
        ("counter_increment_ns".into(), number(counter_increment_ns)),
        ("span_enter_exit_ns".into(), number(span_enter_exit_ns)),
        ("span_off_ns".into(), number(span_off_ns)),
        (
            "off_query_us".into(),
            number(off * 1e6 / options.queries as f64),
        ),
        (
            "metrics_query_us".into(),
            number(metrics * 1e6 / options.queries as f64),
        ),
        (
            "traces_query_us".into(),
            number(traces * 1e6 / options.queries as f64),
        ),
        (
            "metrics_overhead_ratio".into(),
            number(metrics_overhead_ratio),
        ),
        (
            "traces_overhead_ratio".into(),
            number(traces_overhead_ratio),
        ),
        ("partition_checks".into(), JsonValue::Array(checks)),
    ]))
}

/// The CI guard: the file parses, the default level costs under 5% on the
/// scan bench, and the telemetry counters reproduced every search's stage
/// partition bit-exactly.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let document = json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    for field in ["counter_increment_ns", "span_enter_exit_ns"] {
        let value = document
            .get(field)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("missing {field}"))?;
        if !value.is_finite() || value <= 0.0 {
            return Err(format!("{field} = {value} is not a timing"));
        }
    }
    let ratio = document
        .get("metrics_overhead_ratio")
        .and_then(JsonValue::as_f64)
        .ok_or("missing metrics_overhead_ratio")?;
    if !(ratio.is_finite() && ratio < 1.05) {
        return Err(format!(
            "metrics_overhead_ratio = {ratio:.4} — the default level must cost < 5%"
        ));
    }
    let checks = document
        .get("partition_checks")
        .and_then(JsonValue::as_array)
        .ok_or("missing partition_checks")?;
    if checks.len() < 3 {
        return Err(format!("only {} partition checks recorded", checks.len()));
    }
    for entry in checks {
        let path = entry.get("path").map(|p| format!("{p:?}"));
        match entry.get("stats_match") {
            Some(JsonValue::Bool(true)) => {}
            other => {
                return Err(format!(
                    "partition check {path:?}: stats_match is {other:?} — telemetry \
                     diverged from SearchStats"
                ))
            }
        }
        let evaluated = entry
            .get("evaluated")
            .and_then(JsonValue::as_usize)
            .ok_or("missing evaluated")?;
        let partition = entry
            .get("partition")
            .and_then(JsonValue::as_usize)
            .ok_or("missing partition")?;
        if evaluated == 0 || evaluated != partition {
            return Err(format!(
                "partition check {path:?}: partition {partition} vs evaluated {evaluated}"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let document = match run_bench(&options) {
        Ok(document) => document,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.out, document.render()) {
        eprintln!("error: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", options.out);
    gbd_bench::write_telemetry_sidecar(&options.out);
    if options.check {
        match check(&options.out) {
            Ok(()) => eprintln!(
                "check passed: metrics cost < 5% and the stage partition bit-matches SearchStats"
            ),
            Err(message) => {
                eprintln!("check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
