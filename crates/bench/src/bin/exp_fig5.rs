//! Regenerates Figure 5 (GBD prior: sampled histogram vs GMM fit).
fn main() {
    let table = gbd_bench::experiments::fig5().expect("offline stage builds");
    table.print();
    let _ = table.save("fig5.md");
}
