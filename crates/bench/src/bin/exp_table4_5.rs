//! Regenerates Tables IV and V (offline prior computation costs).
fn main() {
    let (t4, t5) = gbd_bench::experiments::table4_and_5().expect("offline stage builds");
    t4.print();
    t5.print();
    let _ = t4.save("table4.md");
    let _ = t5.save("table5.md");
}
