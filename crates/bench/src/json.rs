//! Minimal JSON value, writer and parser for machine-readable benchmark
//! results.
//!
//! The workspace's vendored `serde` is a no-op shim (no crates.io access),
//! so the perf-tracking artefacts under `results/` are produced and
//! validated with this self-contained implementation instead. It supports
//! exactly the JSON subset the benchmark files use: objects, arrays,
//! strings with the common escapes, finite numbers, booleans and `null`.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` on other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as usize)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (name, value)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, name);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
/// Returns a human-readable message (with a byte offset) on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\n' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            members.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = text.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let value = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("online_syn".into())),
            ("count".into(), JsonValue::Number(1000.0)),
            ("median_us".into(), JsonValue::Number(123.75)),
            ("ok".into(), JsonValue::Bool(true)),
            ("missing".into(), JsonValue::Null),
            (
                "modes".into(),
                JsonValue::Array(vec![
                    JsonValue::String("a \"quoted\" name".into()),
                    JsonValue::Number(-2.5),
                    JsonValue::Array(Vec::new()),
                    JsonValue::Object(Vec::new()),
                ]),
            ),
        ]);
        let rendered = value.render();
        let parsed = parse(&rendered).expect("rendered JSON parses");
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("count").and_then(JsonValue::as_usize),
            Some(1000)
        );
        assert_eq!(
            parsed.get("median_us").and_then(JsonValue::as_f64),
            Some(123.75)
        );
        assert_eq!(
            parsed.get("name").and_then(JsonValue::as_str),
            Some("online_syn")
        );
        assert_eq!(
            parsed
                .get("modes")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(4)
        );
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let parsed = parse(" { \"s\" : \"line\\nbreak \\u0041\" , \"xs\": [ 1 , 2.5e1 ] } ")
            .expect("valid JSON parses");
        assert_eq!(
            parsed.get("s").and_then(JsonValue::as_str),
            Some("line\nbreak A")
        );
        let xs = parsed.get("xs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(xs[1].as_f64(), Some(25.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_usize_rejects_negatives_and_fractions() {
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1.5).as_usize(), None);
        assert_eq!(JsonValue::Number(7.0).as_usize(), Some(7));
        assert_eq!(JsonValue::Bool(true).as_usize(), None);
    }
}
