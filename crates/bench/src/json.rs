//! Minimal JSON value, writer and parser for machine-readable benchmark
//! results.
//!
//! The workspace's vendored `serde` is a no-op shim (no crates.io access),
//! so the perf-tracking artefacts under `results/` are produced and
//! validated with this self-contained implementation instead. It supports
//! exactly the JSON subset the benchmark files use: objects, arrays,
//! strings with the common escapes, finite numbers, booleans and `null`.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` on other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as usize)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                // `-0.0` must keep its sign through the integer shortcut
                // (`-0.0 as i64` is `0`); `{}` renders it as "-0", which
                // parses back to a negative zero bit-for-bit.
                if n.fract() == 0.0 && n.abs() < 1e15 && !(*n == 0.0 && n.is_sign_negative()) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (name, value)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, name);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
/// Returns a human-readable message (with a byte offset) on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\n' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            members.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape. Expects `pos` to sit
    /// on the `u`; leaves it on the final hex digit (the caller's shared
    /// `pos += 1` then steps past it).
    fn hex_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(code)
    }

    /// Consumes a `\u` escape introducer, leaving `pos` on the `u` (where
    /// [`Self::hex_escape`] expects it).
    fn expect_escape_u(&mut self) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '\\u' at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            let c = match code {
                                // A high surrogate must be followed by a
                                // `\uXXXX` low surrogate; the pair encodes
                                // one supplementary-plane character.
                                0xD800..=0xDBFF => {
                                    self.pos += 1; // past the final hex digit
                                    if self.expect_escape_u().is_err() {
                                        return Err("unpaired high surrogate".into());
                                    }
                                    let low = self.hex_escape()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => return Err("unpaired low surrogate".into()),
                                code => code,
                            };
                            out.push(char::from_u32(c).ok_or("invalid \\u escape")?);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = text.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let value = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("online_syn".into())),
            ("count".into(), JsonValue::Number(1000.0)),
            ("median_us".into(), JsonValue::Number(123.75)),
            ("ok".into(), JsonValue::Bool(true)),
            ("missing".into(), JsonValue::Null),
            (
                "modes".into(),
                JsonValue::Array(vec![
                    JsonValue::String("a \"quoted\" name".into()),
                    JsonValue::Number(-2.5),
                    JsonValue::Array(Vec::new()),
                    JsonValue::Object(Vec::new()),
                ]),
            ),
        ]);
        let rendered = value.render();
        let parsed = parse(&rendered).expect("rendered JSON parses");
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("count").and_then(JsonValue::as_usize),
            Some(1000)
        );
        assert_eq!(
            parsed.get("median_us").and_then(JsonValue::as_f64),
            Some(123.75)
        );
        assert_eq!(
            parsed.get("name").and_then(JsonValue::as_str),
            Some("online_syn")
        );
        assert_eq!(
            parsed
                .get("modes")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(4)
        );
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let parsed = parse(" { \"s\" : \"line\\nbreak \\u0041\" , \"xs\": [ 1 , 2.5e1 ] } ")
            .expect("valid JSON parses");
        assert_eq!(
            parsed.get("s").and_then(JsonValue::as_str),
            Some("line\nbreak A")
        );
        let xs = parsed.get("xs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(xs[1].as_f64(), Some(25.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_usize_rejects_negatives_and_fractions() {
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1.5).as_usize(), None);
        assert_eq!(JsonValue::Number(7.0).as_usize(), Some(7));
        assert_eq!(JsonValue::Bool(true).as_usize(), None);
    }

    /// `-0.0` has an all-integer fractional part but must not take the
    /// `as i64` shortcut — "0" would parse back to `+0.0` and lose the sign
    /// bit.
    #[test]
    fn negative_zero_round_trips_bit_exactly() {
        let rendered = JsonValue::Number(-0.0).render();
        assert_eq!(rendered.trim(), "-0");
        let parsed = parse(&rendered).unwrap();
        let n = parsed.as_f64().unwrap();
        assert_eq!(n.to_bits(), (-0.0f64).to_bits());
        // And the positive zero stays a plain "0".
        assert_eq!(JsonValue::Number(0.0).render().trim(), "0");
    }

    #[test]
    fn extreme_numbers_round_trip_bit_exactly() {
        for value in [
            1e300,
            -1e300,
            5e-324, // smallest subnormal
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            (1u64 << 53) as f64,
            1e15,       // first value past the integer shortcut
            1e15 - 1.0, // last value inside it
            -123456789.000001,
        ] {
            let rendered = JsonValue::Number(value).render();
            let parsed = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), value.to_bits(), "{value} diverges");
        }
    }

    /// JSON encodes supplementary-plane characters as surrogate pairs; the
    /// parser must combine them (and reject unpaired halves).
    #[test]
    fn surrogate_pairs_parse_to_supplementary_characters() {
        let parsed = parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
        let parsed = parse("\"a\\uD834\\uDD1Eb\"").unwrap();
        assert_eq!(parsed.as_str(), Some("a𝄞b"));
        for bad in [
            "\"\\uD83D\"",        // high surrogate at end of string
            "\"\\uD83D rest\"",   // high surrogate without a second escape
            "\"\\uD83D\\n\"",     // high surrogate followed by another escape
            "\"\\uD83D\\u0041\"", // high surrogate with a non-low partner
            "\"\\uDE00\"",        // unpaired low surrogate
        ] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Bit-exact structural equality: the derived `PartialEq` uses `f64 ==`,
    /// which calls `-0.0` and `0.0` equal and can therefore mask a lost sign
    /// bit.
    fn bit_equal(a: &JsonValue, b: &JsonValue) -> bool {
        match (a, b) {
            (JsonValue::Number(x), JsonValue::Number(y)) => x.to_bits() == y.to_bits(),
            (JsonValue::Array(xs), JsonValue::Array(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bit_equal(x, y))
            }
            (JsonValue::Object(xs), JsonValue::Object(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .all(|((ka, va), (kb, vb))| ka == kb && bit_equal(va, vb))
            }
            _ => a == b,
        }
    }

    /// A finite `f64` drawn from the edge-case-heavy corners: signed zeros,
    /// subnormals, huge exponents, exact integers around the writer's
    /// integer-shortcut boundary, and ordinary values.
    fn number(rng: &mut StdRng) -> f64 {
        match rng.gen_range(0u32..8) {
            0 => -0.0,
            1 => 0.0,
            2 => 5e-324 * (1 + rng.gen_range(0u64..5)) as f64,
            3 => {
                (if rng.gen_range(0u32..2) == 0 {
                    1.0
                } else {
                    -1.0
                }) * 1e300
            }
            4 => (rng.gen_range(0i64..4) * 500_000_000_000_000 - 1_000_000_000_000_000) as f64,
            5 => rng.gen_range(-1e15f64..1e15).trunc(),
            6 => rng.gen_range(-1.0e6..1.0e6),
            _ => rng.gen_range(-1.0..1.0) * 10f64.powi(rng.gen_range(-30i32..30)),
        }
    }

    /// A string sampling the escape space: quotes, backslashes, control
    /// characters, multi-byte UTF-8 and supplementary-plane characters.
    fn string(rng: &mut StdRng) -> String {
        let alphabet = [
            "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\r", "\u{0}", "\u{1}", "\u{1f}", "é", "ε",
            "中", "😀", "𝄞", "/",
        ];
        (0..rng.gen_range(0usize..12))
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }

    /// A random JSON document of bounded depth and width.
    fn value(rng: &mut StdRng, depth: usize) -> JsonValue {
        let leaf_only = depth == 0;
        match rng.gen_range(0u32..if leaf_only { 4 } else { 6 }) {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(rng.gen_range(0u32..2) == 0),
            2 => JsonValue::Number(number(rng)),
            3 => JsonValue::String(string(rng)),
            4 => JsonValue::Array(
                (0..rng.gen_range(0usize..5))
                    .map(|_| value(rng, depth - 1))
                    .collect(),
            ),
            _ => JsonValue::Object(
                (0..rng.gen_range(0usize..5))
                    .map(|k| (format!("{}{k}", string(rng)), value(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// render → parse is the identity, bit-for-bit, on nested documents
        /// full of escape and numeric edge cases.
        #[test]
        fn rendered_documents_parse_back_bit_identically(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let document = value(&mut rng, 3);
            let rendered = document.render();
            let parsed = parse(&rendered)
                .unwrap_or_else(|e| panic!("rendered JSON must parse: {e}\n{rendered}"));
            prop_assert!(
                bit_equal(&parsed, &document),
                "round trip diverges:\n{rendered}"
            );
        }

        /// Numbers alone round-trip bit-exactly (denser sampling than the
        /// document test).
        #[test]
        fn numbers_round_trip_bit_exactly(seed in 0u64..50_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = number(&mut rng);
            let rendered = JsonValue::Number(n).render();
            let parsed = parse(&rendered).unwrap().as_f64().unwrap();
            prop_assert_eq!(parsed.to_bits(), n.to_bits());
        }
    }
}
