//! Shared experiment workloads: scaled dataset substitutes and searcher
//! construction used by both the experiment binaries and the Criterion
//! benchmarks.

use gbd_datasets::{
    generate_real_like, generate_synthetic, DatasetProfile, LabeledDataset, RealLikeConfig,
    SyntheticConfig, SyntheticDataset,
};
use gbd_graph::{GeneratorConfig, Graph, LabelAlphabets};
use gbda_core::{EngineResult, GbdaConfig, GraphDatabase, OfflineIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Vertex counts of the four size buckets mixed by
/// [`mixed_size_online_workload`].
pub const MIXED_SIZE_BUCKETS: [usize; 4] = [40, 48, 56, 64];

/// The mixed-size online-scan workload shared by the `online_syn` criterion
/// bench and the `bench_online_syn` JSON binary — one definition so their
/// numbers stay comparable: exactly `n ≥ 1` graphs over
/// [`MIXED_SIZE_BUCKETS`] (seed `0x1000`), with one database member as the
/// query. When `n` is not a multiple of the bucket count, the trailing
/// bucket is truncated; multiples split evenly.
pub fn mixed_size_online_workload(n: usize) -> (Vec<Graph>, Graph) {
    assert!(n >= 1, "a workload needs at least one graph");
    let mut rng = StdRng::seed_from_u64(0x1000);
    let per_bucket = n.div_ceil(MIXED_SIZE_BUCKETS.len());
    let mut graphs: Vec<Graph> = Vec::with_capacity(per_bucket * MIXED_SIZE_BUCKETS.len());
    for size in MIXED_SIZE_BUCKETS {
        let cfg = GeneratorConfig::new(size, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        graphs.extend(
            cfg.generate_many(per_bucket, &mut rng)
                .expect("generation succeeds"),
        );
    }
    graphs.truncate(n);
    let query = graphs[graphs.len().min(18) - 1].clone();
    (graphs, query)
}

/// Default scale applied to the real-dataset profiles so the whole experiment
/// suite runs in minutes on laptop hardware (the paper's counts divided by
/// roughly 50–500 depending on the dataset).
pub fn default_scale(profile: &DatasetProfile) -> f64 {
    match profile.name {
        "AASD" => 0.002,
        _ => 0.02,
    }
}

/// The four real-like dataset substitutes at their default experiment scale.
pub fn real_like_datasets() -> Vec<LabeledDataset> {
    DatasetProfile::all_real()
        .into_iter()
        .map(|profile| {
            let scale = default_scale(&profile);
            let config = RealLikeConfig::new(profile, scale).with_seed(0xBEEF);
            generate_real_like(&config).expect("dataset generation succeeds")
        })
        .collect()
}

/// One real-like dataset by profile name (panics on unknown names).
pub fn real_like_dataset(name: &str) -> LabeledDataset {
    let profile = DatasetProfile::all_real()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown dataset profile {name}"));
    let scale = default_scale(&profile);
    let config = RealLikeConfig::new(profile, scale).with_seed(0xBEEF);
    generate_real_like(&config).expect("dataset generation succeeds")
}

/// Synthetic dataset (Syn-1 scale-free or Syn-2 uniform) at laptop-scale
/// sizes; the paper's axis (1K…100K vertices) is swept at `sizes`.
pub fn synthetic_dataset(sizes: &[usize], scale_free: bool) -> SyntheticDataset {
    let config = SyntheticConfig {
        graphs_per_subset: 6,
        queries_per_subset: 2,
        ..if scale_free {
            SyntheticConfig::syn1(sizes.to_vec())
        } else {
            SyntheticConfig::syn2(sizes.to_vec())
        }
    };
    generate_synthetic(&config).expect("synthetic generation succeeds")
}

/// Builds the database and offline index for one dataset under a GBDA
/// configuration.
///
/// # Errors
/// Propagates [`gbda_core::EngineError`] from the offline stage (e.g. a
/// dataset with fewer than two graphs).
pub fn indexed_database(
    dataset: &LabeledDataset,
    config: &GbdaConfig,
) -> EngineResult<(GraphDatabase, OfflineIndex)> {
    let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);
    let index = OfflineIndex::build(&database, config)?;
    Ok((database, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_like_dataset_lookup_is_case_insensitive() {
        let ds = real_like_dataset("fingerprint");
        assert!(ds.name.starts_with("Fingerprint"));
        assert!(ds.database_size() >= 2);
    }

    #[test]
    #[should_panic(expected = "unknown dataset profile")]
    fn unknown_profiles_panic() {
        let _ = real_like_dataset("nope");
    }

    #[test]
    fn synthetic_dataset_has_requested_sizes() {
        let ds = synthetic_dataset(&[50, 80], true);
        assert_eq!(ds.subsets.len(), 2);
        assert_eq!(ds.subsets[0].vertices, 50);
    }

    #[test]
    fn mixed_size_workload_is_deterministic_and_bucketed() {
        let (graphs, query) = mixed_size_online_workload(40);
        assert_eq!(graphs.len(), 40);
        assert_eq!(graphs[17].vertex_count(), query.vertex_count());
        for (b, &size) in MIXED_SIZE_BUCKETS.iter().enumerate() {
            assert_eq!(graphs[b * 10].vertex_count(), size);
        }
        let (again, _) = mixed_size_online_workload(40);
        assert_eq!(
            gbd_graph::graph_branch_distance(&graphs[0], &again[0]),
            0,
            "same seed must regenerate the same workload"
        );
        // Tiny and non-multiple sizes still return exactly n graphs and an
        // in-range query.
        for n in [1usize, 2, 8, 10] {
            let (small, _) = mixed_size_online_workload(n);
            assert_eq!(small.len(), n);
        }
    }

    #[test]
    fn indexed_database_builds_offline_stage() {
        let ds = real_like_dataset("GREC");
        let config = GbdaConfig::new(3, 0.8).with_sample_pairs(200);
        let (database, index) = indexed_database(&ds, &config).unwrap();
        assert_eq!(database.len(), ds.database_size());
        assert!(index.stats().sampled_pairs > 0);
    }
}
