//! Shared experiment workloads: scaled dataset substitutes and searcher
//! construction used by both the experiment binaries and the Criterion
//! benchmarks.

use gbd_datasets::{
    generate_real_like, generate_synthetic, DatasetProfile, LabeledDataset, RealLikeConfig,
    SyntheticConfig, SyntheticDataset,
};
use gbda_core::{EngineResult, GbdaConfig, GraphDatabase, OfflineIndex};

/// Default scale applied to the real-dataset profiles so the whole experiment
/// suite runs in minutes on laptop hardware (the paper's counts divided by
/// roughly 50–500 depending on the dataset).
pub fn default_scale(profile: &DatasetProfile) -> f64 {
    match profile.name {
        "AASD" => 0.002,
        _ => 0.02,
    }
}

/// The four real-like dataset substitutes at their default experiment scale.
pub fn real_like_datasets() -> Vec<LabeledDataset> {
    DatasetProfile::all_real()
        .into_iter()
        .map(|profile| {
            let scale = default_scale(&profile);
            let config = RealLikeConfig::new(profile, scale).with_seed(0xBEEF);
            generate_real_like(&config).expect("dataset generation succeeds")
        })
        .collect()
}

/// One real-like dataset by profile name (panics on unknown names).
pub fn real_like_dataset(name: &str) -> LabeledDataset {
    let profile = DatasetProfile::all_real()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown dataset profile {name}"));
    let scale = default_scale(&profile);
    let config = RealLikeConfig::new(profile, scale).with_seed(0xBEEF);
    generate_real_like(&config).expect("dataset generation succeeds")
}

/// Synthetic dataset (Syn-1 scale-free or Syn-2 uniform) at laptop-scale
/// sizes; the paper's axis (1K…100K vertices) is swept at `sizes`.
pub fn synthetic_dataset(sizes: &[usize], scale_free: bool) -> SyntheticDataset {
    let config = SyntheticConfig {
        graphs_per_subset: 6,
        queries_per_subset: 2,
        ..if scale_free {
            SyntheticConfig::syn1(sizes.to_vec())
        } else {
            SyntheticConfig::syn2(sizes.to_vec())
        }
    };
    generate_synthetic(&config).expect("synthetic generation succeeds")
}

/// Builds the database and offline index for one dataset under a GBDA
/// configuration.
///
/// # Errors
/// Propagates [`gbda_core::EngineError`] from the offline stage (e.g. a
/// dataset with fewer than two graphs).
pub fn indexed_database(
    dataset: &LabeledDataset,
    config: &GbdaConfig,
) -> EngineResult<(GraphDatabase, OfflineIndex)> {
    let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);
    let index = OfflineIndex::build(&database, config)?;
    Ok((database, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_like_dataset_lookup_is_case_insensitive() {
        let ds = real_like_dataset("fingerprint");
        assert!(ds.name.starts_with("Fingerprint"));
        assert!(ds.database_size() >= 2);
    }

    #[test]
    #[should_panic(expected = "unknown dataset profile")]
    fn unknown_profiles_panic() {
        let _ = real_like_dataset("nope");
    }

    #[test]
    fn synthetic_dataset_has_requested_sizes() {
        let ds = synthetic_dataset(&[50, 80], true);
        assert_eq!(ds.subsets.len(), 2);
        assert_eq!(ds.subsets[0].vertices, 50);
    }

    #[test]
    fn indexed_database_builds_offline_stage() {
        let ds = real_like_dataset("GREC");
        let config = GbdaConfig::new(3, 0.8).with_sample_pairs(200);
        let (database, index) = indexed_database(&ds, &config).unwrap();
        assert_eq!(database.len(), ds.database_size());
        assert!(index.stats().sampled_pairs > 0);
    }
}
