//! Markdown experiment tables written to stdout and `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple experiment result table (title + header row + data rows).
#[derive(Debug, Clone, Default)]
pub struct ExperimentTable {
    /// Table title, e.g. `"Figure 7: query time on real datasets"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }

    /// Appends the table to `results/<file>` (creating the directory).
    pub fn save(&self, file: &str) -> std::io::Result<()> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(file);
        let mut existing = fs::read_to_string(&path).unwrap_or_default();
        existing.push_str(&self.to_markdown());
        existing.push('\n');
        fs::write(path, existing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_contains_all_cells() {
        let mut table = ExperimentTable::new("Demo", &["a", "b"]);
        table.push_row(vec!["1".into(), "2".into()]);
        table.push_row(vec!["x".into(), "y".into()]);
        let md = table.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("| x | y |"));
        // title + blank line + header + separator + 2 data rows
        assert_eq!(md.matches('\n').count(), 6);
    }

    #[test]
    fn empty_table_still_renders_headers() {
        let table = ExperimentTable::new("Empty", &["only"]);
        let md = table.to_markdown();
        assert!(md.contains("| only |"));
    }
}
