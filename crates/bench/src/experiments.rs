//! One function per table / figure of the paper's evaluation (Section VII).
//!
//! Every function returns [`ExperimentTable`]s holding the same rows / series
//! as the corresponding paper artefact, measured on the scaled dataset
//! substitutes of [`crate::workloads`]. Absolute numbers differ from the
//! paper (different hardware, scaled datasets); the *shape* — which method
//! wins, how costs grow with `n` and `τ̂` — is what EXPERIMENTS.md compares.

use std::time::Instant;

use gbd_assignment::{GreedyGed, LsapGed};
use gbd_datasets::LabeledDataset;
use gbd_graph::LabelAlphabets;
use gbd_prob::jeffreys::jeffreys_column;
use gbd_prob::BranchEditModel;
use gbd_seriation::SeriationGed;
use gbda_core::{
    aggregate, Confusion, EngineResult, EstimatorSearcher, GbdaConfig, GbdaVariant, QueryEngine,
    SimilaritySearcher,
};

use crate::table::ExperimentTable;
use crate::workloads::{indexed_database, real_like_datasets, synthetic_dataset};

/// Runs one searcher over every query of `dataset` and returns the
/// micro-averaged confusion plus the mean per-query time in seconds.
pub fn evaluate_searcher(
    searcher: &dyn SimilaritySearcher,
    dataset: &LabeledDataset,
    tau_hat: usize,
) -> (Confusion, f64) {
    let mut confusions = Vec::new();
    let started = Instant::now();
    for (qi, query) in dataset.queries.iter().enumerate() {
        let outcome = searcher.search(query);
        let positives = dataset
            .ground_truth
            .positives(qi, tau_hat, dataset.database_size());
        confusions.push(Confusion::from_sets(&outcome.matches, &positives));
    }
    let per_query = started.elapsed().as_secs_f64() / dataset.queries.len().max(1) as f64;
    (aggregate(confusions.iter()), per_query)
}

fn fmt(x: f64) -> String {
    format!("{x:.3}")
}

fn fmt_time(x: f64) -> String {
    format!("{x:.5}")
}

/// Table III — statistics of every dataset substitute.
pub fn table3() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Table III: statistics of the dataset substitutes",
        &["Data set", "|D|", "|Q|", "Vm", "Em", "d", "Scale-free"],
    );
    for dataset in real_like_datasets() {
        let stats = dataset.stats();
        table.push_row(vec![
            dataset.name.clone(),
            dataset.database_size().to_string(),
            dataset.query_count().to_string(),
            stats.max_vertices.to_string(),
            stats.max_edges.to_string(),
            format!("{:.1}", stats.average_degree),
            if stats.is_scale_free() { "Yes" } else { "No" }.to_string(),
        ]);
    }
    for (name, scale_free) in [("Syn-1", true), ("Syn-2", false)] {
        let syn = synthetic_dataset(&[100, 200], scale_free);
        let graphs: Vec<_> = syn
            .subsets
            .iter()
            .flat_map(|s| s.dataset.graphs.iter().cloned())
            .collect();
        let queries: usize = syn.subsets.iter().map(|s| s.dataset.query_count()).sum();
        let stats = gbd_graph::DatasetStats::compute(graphs.iter());
        table.push_row(vec![
            name.to_string(),
            graphs.len().to_string(),
            queries.to_string(),
            stats.max_vertices.to_string(),
            stats.max_edges.to_string(),
            format!("{:.1}", stats.average_degree),
            if stats.is_scale_free() { "Yes" } else { "No" }.to_string(),
        ]);
    }
    table
}

/// Tables IV and V — time and space costs of the offline stage (GBD prior and
/// GED prior) on every dataset substitute.
pub fn table4_and_5() -> EngineResult<(ExperimentTable, ExperimentTable)> {
    let mut gbd_table = ExperimentTable::new(
        "Table IV: costs of computing the GBD prior distribution",
        &["Data set", "Sampled pairs", "Time (s)", "Stored entries"],
    );
    let mut ged_table = ExperimentTable::new(
        "Table V: costs of computing the GED prior distribution",
        &["Data set", "Time (s)", "Stored entries"],
    );
    let config = GbdaConfig::new(10, 0.9).with_sample_pairs(2000);
    for dataset in real_like_datasets() {
        let (_, index) = indexed_database(&dataset, &config)?;
        let stats = index.stats();
        gbd_table.push_row(vec![
            dataset.name.clone(),
            stats.sampled_pairs.to_string(),
            fmt_time(stats.gbd_prior_seconds),
            stats.gbd_prior_entries.to_string(),
        ]);
        ged_table.push_row(vec![
            dataset.name.clone(),
            fmt_time(stats.ged_prior_seconds),
            stats.ged_prior_entries.to_string(),
        ]);
    }
    for (name, scale_free) in [("Syn-1", true), ("Syn-2", false)] {
        let syn = synthetic_dataset(&[100, 200], scale_free);
        for subset in &syn.subsets {
            let (_, index) = indexed_database(&subset.dataset, &config)?;
            let stats = index.stats();
            let label = format!("{name} ({}v)", subset.vertices);
            gbd_table.push_row(vec![
                label.clone(),
                stats.sampled_pairs.to_string(),
                fmt_time(stats.gbd_prior_seconds),
                stats.gbd_prior_entries.to_string(),
            ]);
            ged_table.push_row(vec![
                label,
                fmt_time(stats.ged_prior_seconds),
                stats.ged_prior_entries.to_string(),
            ]);
        }
    }
    Ok((gbd_table, ged_table))
}

/// Figure 5 — sampled GBD histogram vs the fitted GMM prior on the
/// Fingerprint-like dataset.
pub fn fig5() -> EngineResult<ExperimentTable> {
    let dataset = crate::workloads::real_like_dataset("Fingerprint");
    let config = GbdaConfig::new(10, 0.9).with_sample_pairs(20_000);
    let (database, index) = indexed_database(&dataset, &config)?;
    // Empirical histogram over all pairs (the database is small enough).
    let mut histogram = vec![0usize; database.max_vertices() + 1];
    let mut pairs = 0usize;
    for i in 0..database.len() {
        for j in (i + 1)..database.len() {
            let gbd = database.gbd_between(i, j).min(database.max_vertices());
            histogram[gbd] += 1;
            pairs += 1;
        }
    }
    let mut table = ExperimentTable::new(
        "Figure 5: GBD prior on the Fingerprint-like dataset (sampled vs inferred)",
        &["GBD", "Sampled frequency", "Inferred Pr[GBD = ϕ]"],
    );
    for (phi, &count) in histogram.iter().enumerate() {
        table.push_row(vec![
            phi.to_string(),
            fmt(count as f64 / pairs.max(1) as f64),
            fmt(index.gbd_prior().probability(phi)),
        ]);
    }
    Ok(table)
}

/// Figure 6 — the Jeffreys prior of GEDs over a grid of `(τ, |V'1|)` values.
pub fn fig6() -> ExperimentTable {
    let alphabets = LabelAlphabets::new(4, 4); // Fingerprint-like label domain
    let sizes = [6usize, 10, 14, 18, 26];
    let tau_max = 10u64;
    let mut headers: Vec<String> = vec!["τ \\ |V'1|".to_owned()];
    headers.extend(sizes.iter().map(|v| v.to_string()));
    let mut table = ExperimentTable::new(
        "Figure 6: Jeffreys prior Pr[GED = τ] over (τ, |V'1|) on a Fingerprint-like label domain",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let columns: Vec<Vec<f64>> = sizes
        .iter()
        .map(|&v| jeffreys_column(&BranchEditModel::new(v, alphabets), tau_max))
        .collect();
    for tau in 0..=tau_max {
        let mut row = vec![tau.to_string()];
        row.extend(columns.iter().map(|c| fmt(c[tau as usize])));
        table.push_row(row);
    }
    table
}

/// Figure 7 — average query response time of every method on the real-like
/// datasets, with GBDA at τ̂ = 1, 5, 10.
pub fn fig7() -> EngineResult<ExperimentTable> {
    let mut table = ExperimentTable::new(
        "Figure 7: query time (seconds per query) on real-like datasets",
        &[
            "Data set",
            "LSAP",
            "greedysort",
            "seriation",
            "GBDA(τ̂=1)",
            "GBDA(τ̂=5)",
            "GBDA(τ̂=10)",
        ],
    );
    for dataset in real_like_datasets() {
        let mut row = vec![dataset.name.clone()];
        let base_config = GbdaConfig::new(10, 0.9).with_sample_pairs(2000);
        let (database, _) = indexed_database(&dataset, &base_config)?;
        for estimator_time in [
            evaluate_searcher(
                &EstimatorSearcher::new(&database, LsapGed, 10.0),
                &dataset,
                10,
            )
            .1,
            evaluate_searcher(
                &EstimatorSearcher::new(&database, GreedyGed, 10.0),
                &dataset,
                10,
            )
            .1,
            evaluate_searcher(
                &EstimatorSearcher::new(&database, SeriationGed::default(), 10.0),
                &dataset,
                10,
            )
            .1,
        ] {
            row.push(fmt_time(estimator_time));
        }
        for tau_hat in [1u64, 5, 10] {
            let config = GbdaConfig::new(tau_hat, 0.9).with_sample_pairs(2000);
            let (database, index) = indexed_database(&dataset, &config)?;
            let searcher = QueryEngine::new(&database, &index, config);
            let (_, seconds) = evaluate_searcher(&searcher, &dataset, tau_hat as usize);
            row.push(fmt_time(seconds));
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Figures 8 and 9 — query time versus graph size on the synthetic datasets.
///
/// The expensive `O(n³)` baselines (LSAP, seriation) are only run up to
/// `baseline_size_cap` vertices, mirroring the paper's observation that the
/// competitors stop being able to handle large graphs.
pub fn fig8_9(
    scale_free: bool,
    sizes: &[usize],
    baseline_size_cap: usize,
) -> EngineResult<ExperimentTable> {
    let name = if scale_free {
        "Syn-1 (Figure 8)"
    } else {
        "Syn-2 (Figure 9)"
    };
    let mut table = ExperimentTable::new(
        format!("{name}: query time (seconds per query) vs graph size"),
        &[
            "Graph size",
            "LSAP",
            "greedysort",
            "seriation",
            "GBDA(τ̂=10)",
            "GBDA(τ̂=20)",
            "GBDA(τ̂=30)",
        ],
    );
    let synthetic = synthetic_dataset(sizes, scale_free);
    for subset in &synthetic.subsets {
        let dataset = &subset.dataset;
        let mut row = vec![subset.vertices.to_string()];
        let base_config = GbdaConfig::new(10, 0.8).with_sample_pairs(50);
        let (database, _) = indexed_database(dataset, &base_config)?;
        // LSAP / seriation only below the cap (they are O(n³) per pair).
        if subset.vertices <= baseline_size_cap {
            row.push(fmt_time(
                evaluate_searcher(
                    &EstimatorSearcher::new(&database, LsapGed, 30.0),
                    dataset,
                    30,
                )
                .1,
            ));
        } else {
            row.push("-".into());
        }
        row.push(fmt_time(
            evaluate_searcher(
                &EstimatorSearcher::new(&database, GreedyGed, 30.0),
                dataset,
                30,
            )
            .1,
        ));
        if subset.vertices <= baseline_size_cap {
            row.push(fmt_time(
                evaluate_searcher(
                    &EstimatorSearcher::new(&database, SeriationGed::default(), 30.0),
                    dataset,
                    30,
                )
                .1,
            ));
        } else {
            row.push("-".into());
        }
        for tau_hat in [10u64, 20, 30] {
            let config = GbdaConfig::new(tau_hat, 0.8).with_sample_pairs(50);
            let (database, index) = indexed_database(dataset, &config)?;
            let searcher = QueryEngine::new(&database, &index, config);
            let (_, seconds) = evaluate_searcher(&searcher, dataset, tau_hat as usize);
            row.push(fmt_time(seconds));
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Figures 10–21 — precision, recall and F1 versus τ̂ on every real-like
/// dataset for GBDA (γ = 0.7, 0.8, 0.9) and the three baselines. Returns one
/// table per (dataset, metric).
pub fn fig10_21(tau_values: &[u64]) -> EngineResult<Vec<ExperimentTable>> {
    let gammas = [0.7, 0.8, 0.9];
    let mut tables = Vec::new();
    for dataset in real_like_datasets() {
        let mut per_metric: Vec<ExperimentTable> = ["Precision", "Recall", "F1"]
            .iter()
            .map(|metric| {
                ExperimentTable::new(
                    format!(
                        "Figures 10-21: {metric} vs τ̂ on {} (GBDA γ=0.7/0.8/0.9 vs baselines)",
                        dataset.name
                    ),
                    &[
                        "τ̂",
                        "LSAP",
                        "greedysort",
                        "seriation",
                        "GBDA(γ=0.70)",
                        "GBDA(γ=0.80)",
                        "GBDA(γ=0.90)",
                    ],
                )
            })
            .collect();
        for &tau_hat in tau_values {
            let base_config = GbdaConfig::new(tau_hat, 0.9).with_sample_pairs(2000);
            let (database, index) = indexed_database(&dataset, &base_config)?;
            let mut results: Vec<Confusion> = Vec::new();
            results.push(
                evaluate_searcher(
                    &EstimatorSearcher::new(&database, LsapGed, tau_hat as f64),
                    &dataset,
                    tau_hat as usize,
                )
                .0,
            );
            results.push(
                evaluate_searcher(
                    &EstimatorSearcher::new(&database, GreedyGed, tau_hat as f64),
                    &dataset,
                    tau_hat as usize,
                )
                .0,
            );
            results.push(
                evaluate_searcher(
                    &EstimatorSearcher::new(&database, SeriationGed::default(), tau_hat as f64),
                    &dataset,
                    tau_hat as usize,
                )
                .0,
            );
            for gamma in gammas {
                let config = GbdaConfig::new(tau_hat, gamma).with_sample_pairs(2000);
                let searcher = QueryEngine::new(&database, &index, config);
                results.push(evaluate_searcher(&searcher, &dataset, tau_hat as usize).0);
            }
            for (metric_idx, table) in per_metric.iter_mut().enumerate() {
                let mut row = vec![tau_hat.to_string()];
                for confusion in &results {
                    let value = match metric_idx {
                        0 => confusion.precision(),
                        1 => confusion.recall(),
                        _ => confusion.f1(),
                    };
                    row.push(fmt(value));
                }
                table.push_row(row);
            }
        }
        tables.extend(per_metric);
    }
    Ok(tables)
}

/// Figures 22–29 — F1 of standard GBDA against its V1 (α = 10, 50, 100) and
/// V2 (w = 0.1, 0.5) variants, per real-like dataset (γ = 0.9).
pub fn fig22_29(tau_values: &[u64]) -> EngineResult<Vec<ExperimentTable>> {
    let mut tables = Vec::new();
    for dataset in real_like_datasets() {
        let mut table = ExperimentTable::new(
            format!(
                "Figures 22-29: F1 vs τ̂ on {} — GBDA vs variants V1(α) and V2(w), γ = 0.9",
                dataset.name
            ),
            &[
                "τ̂",
                "GBDA",
                "V1(α=10)",
                "V1(α=50)",
                "V1(α=100)",
                "V2(w=0.1)",
                "V2(w=0.5)",
            ],
        );
        for &tau_hat in tau_values {
            let base_config = GbdaConfig::new(tau_hat, 0.9).with_sample_pairs(2000);
            let (database, index) = indexed_database(&dataset, &base_config)?;
            let variants: Vec<GbdaVariant> = vec![
                GbdaVariant::Standard,
                GbdaVariant::AverageExtendedSize { sample_graphs: 10 },
                GbdaVariant::AverageExtendedSize { sample_graphs: 50 },
                GbdaVariant::AverageExtendedSize { sample_graphs: 100 },
                GbdaVariant::WeightedGbd { weight: 0.1 },
                GbdaVariant::WeightedGbd { weight: 0.5 },
            ];
            let mut row = vec![tau_hat.to_string()];
            for variant in variants {
                let config = base_config.clone().with_variant(variant);
                let searcher = QueryEngine::new(&database, &index, config);
                let (confusion, _) = evaluate_searcher(&searcher, &dataset, tau_hat as usize);
                row.push(fmt(confusion.f1()));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Figures 31–42 — precision / recall / F1 versus graph size on Syn-1 for
/// τ̂ ∈ {15, 20, 25, 30} and GBDA γ ∈ {0.6, 0.7, 0.8}, with the baselines run
/// up to `baseline_size_cap` vertices.
pub fn fig31_42(
    sizes: &[usize],
    tau_values: &[u64],
    baseline_size_cap: usize,
) -> EngineResult<Vec<ExperimentTable>> {
    let gammas = [0.6, 0.7, 0.8];
    let synthetic = synthetic_dataset(sizes, true);
    let mut tables = Vec::new();
    for &tau_hat in tau_values {
        let mut per_metric: Vec<ExperimentTable> = ["Precision", "Recall", "F1"]
            .iter()
            .map(|metric| {
                ExperimentTable::new(
                    format!("Figures 31-42: {metric} vs graph size on Syn-1 (τ̂ = {tau_hat})"),
                    &[
                        "Graph size",
                        "LSAP",
                        "greedysort",
                        "seriation",
                        "GBDA(γ=0.60)",
                        "GBDA(γ=0.70)",
                        "GBDA(γ=0.80)",
                    ],
                )
            })
            .collect();
        for subset in &synthetic.subsets {
            let dataset = &subset.dataset;
            let base_config = GbdaConfig::new(tau_hat, 0.8).with_sample_pairs(50);
            let (database, index) = indexed_database(dataset, &base_config)?;
            let mut results: Vec<Option<Confusion>> = Vec::new();
            if subset.vertices <= baseline_size_cap {
                results.push(Some(
                    evaluate_searcher(
                        &EstimatorSearcher::new(&database, LsapGed, tau_hat as f64),
                        dataset,
                        tau_hat as usize,
                    )
                    .0,
                ));
            } else {
                results.push(None);
            }
            results.push(Some(
                evaluate_searcher(
                    &EstimatorSearcher::new(&database, GreedyGed, tau_hat as f64),
                    dataset,
                    tau_hat as usize,
                )
                .0,
            ));
            if subset.vertices <= baseline_size_cap {
                results.push(Some(
                    evaluate_searcher(
                        &EstimatorSearcher::new(&database, SeriationGed::default(), tau_hat as f64),
                        dataset,
                        tau_hat as usize,
                    )
                    .0,
                ));
            } else {
                results.push(None);
            }
            for gamma in gammas {
                let config = GbdaConfig::new(tau_hat, gamma).with_sample_pairs(50);
                let searcher = QueryEngine::new(&database, &index, config);
                results.push(Some(
                    evaluate_searcher(&searcher, dataset, tau_hat as usize).0,
                ));
            }
            for (metric_idx, table) in per_metric.iter_mut().enumerate() {
                let mut row = vec![subset.vertices.to_string()];
                for result in &results {
                    row.push(match result {
                        Some(confusion) => fmt(match metric_idx {
                            0 => confusion.precision(),
                            1 => confusion.recall(),
                            _ => confusion.f1(),
                        }),
                        None => "-".into(),
                    });
                }
                table.push_row(row);
            }
        }
        tables.extend(per_metric);
    }
    Ok(tables)
}

/// One entry of the experiment registry `run_all` drives.
pub struct Experiment {
    /// Stable identifier (binary name suffix, result-file key).
    pub name: &'static str,
    /// The paper artefacts this experiment regenerates.
    pub artefacts: &'static str,
    runner: fn() -> EngineResult<Vec<ExperimentTable>>,
}

impl Experiment {
    /// Runs the experiment at its registered full scale.
    ///
    /// # Errors
    /// Propagates [`gbda_core::EngineError`] from the offline stage of any
    /// workload the experiment indexes.
    pub fn run(&self) -> EngineResult<Vec<ExperimentTable>> {
        (self.runner)()
    }
}

/// Every experiment of the suite, in the order `run_all` executes them,
/// each bound to the full-scale parameters of the paper reproduction.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table3",
            artefacts: "Table III",
            runner: || Ok(vec![table3()]),
        },
        Experiment {
            name: "table4_5",
            artefacts: "Tables IV and V",
            runner: || {
                let (t4, t5) = table4_and_5()?;
                Ok(vec![t4, t5])
            },
        },
        Experiment {
            name: "fig5",
            artefacts: "Figure 5",
            runner: || Ok(vec![fig5()?]),
        },
        Experiment {
            name: "fig6",
            artefacts: "Figure 6",
            runner: || Ok(vec![fig6()]),
        },
        Experiment {
            name: "fig7",
            artefacts: "Figure 7",
            runner: || Ok(vec![fig7()?]),
        },
        Experiment {
            name: "fig8_9",
            artefacts: "Figures 8 and 9",
            runner: || {
                [true, false]
                    .into_iter()
                    .map(|scale_free| fig8_9(scale_free, &[100, 200, 400], 200))
                    .collect()
            },
        },
        Experiment {
            name: "fig10_21",
            artefacts: "Figures 10-21",
            runner: || fig10_21(&(1..=10).collect::<Vec<u64>>()),
        },
        Experiment {
            name: "fig22_29",
            artefacts: "Figures 22-29",
            runner: || fig22_29(&(1..=10).collect::<Vec<u64>>()),
        },
        Experiment {
            name: "fig31_42",
            artefacts: "Figures 31-42",
            runner: || fig31_42(&[80, 160], &[15, 20, 25, 30], 160),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_the_full_suite_without_running_it() {
        let experiments = registry();
        assert_eq!(experiments.len(), 9, "every experiment must be registered");
        let mut names: Vec<&str> = experiments.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), experiments.len(), "names must be unique");
        for exp in &experiments {
            assert!(!exp.name.is_empty());
            assert!(!exp.artefacts.is_empty());
        }
        // The registry order matches the paper's presentation order.
        assert_eq!(experiments.first().unwrap().name, "table3");
        assert_eq!(experiments.last().unwrap().name, "fig31_42");
    }

    #[test]
    fn registry_runners_are_wired_to_real_experiments() {
        // Run only the cheapest entry (fig6 is closed-form, no search
        // workload) to prove runners execute without driving the full suite.
        let experiments = registry();
        let fig6_entry = experiments.iter().find(|e| e.name == "fig6").unwrap();
        let tables = fig6_entry.run().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 11);
    }

    #[test]
    fn table3_lists_all_six_datasets() {
        let table = table3();
        assert_eq!(table.rows.len(), 6);
        assert!(table.rows.iter().any(|r| r[0].starts_with("AIDS")));
        assert!(table.rows.iter().any(|r| r[0] == "Syn-2"));
    }

    #[test]
    fn fig6_grid_has_expected_shape_and_normalised_columns() {
        let table = fig6();
        assert_eq!(table.rows.len(), 11);
        assert_eq!(table.headers.len(), 6);
        // Each column (fixed |V'1|) sums to ~1 over τ.
        for col in 1..table.headers.len() {
            let total: f64 = table
                .rows
                .iter()
                .map(|r| r[col].parse::<f64>().unwrap())
                .sum();
            assert!((total - 1.0).abs() < 0.02, "column {col} sums to {total}");
        }
    }

    #[test]
    fn effectiveness_tables_have_one_row_per_tau() {
        let tables = fig22_29(&[1, 2]).unwrap();
        assert_eq!(tables.len(), 4);
        assert!(tables.iter().all(|t| t.rows.len() == 2));
    }
}
