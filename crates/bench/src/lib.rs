//! # gbd-bench — experiment harness regenerating every table and figure
//!
//! Each experiment of the paper's evaluation (Section VII) has a function in
//! [`experiments`] that produces one or more [`table::ExperimentTable`]s with
//! the same rows / series the paper reports, at a hardware-appropriate scale
//! (see DESIGN.md §5). Thin binaries under `src/bin/` print individual
//! experiments; `run_all` regenerates everything and writes the results into
//! `results/`. Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod json;
pub mod table;
pub mod workloads;

pub use experiments::{registry, Experiment};
pub use table::ExperimentTable;

/// Writes the global telemetry registry's JSON rendering next to a results
/// file: `results/BENCH_foo.json` → `results/BENCH_foo.telemetry.json`.
///
/// Every bench binary calls this after writing its results, so each run
/// leaves an introspection snapshot (counters, gauges, histograms, trace
/// accounting) beside its numbers. Best-effort: a bench must not fail
/// because the sidecar could not be written.
pub fn write_telemetry_sidecar(results_path: &str) {
    let path = std::path::Path::new(results_path);
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("results");
    let sidecar = path.with_file_name(format!("{stem}.telemetry.json"));
    if let Some(parent) = sidecar.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    match std::fs::write(&sidecar, gbd_telemetry::global().render_json()) {
        Ok(()) => eprintln!("wrote {}", sidecar.display()),
        Err(e) => eprintln!("warning: telemetry sidecar {}: {e}", sidecar.display()),
    }
}
