//! # gbd-bench — experiment harness regenerating every table and figure
//!
//! Each experiment of the paper's evaluation (Section VII) has a function in
//! [`experiments`] that produces one or more [`table::ExperimentTable`]s with
//! the same rows / series the paper reports, at a hardware-appropriate scale
//! (see DESIGN.md §5). Thin binaries under `src/bin/` print individual
//! experiments; `run_all` regenerates everything and writes the results into
//! `results/`. Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod json;
pub mod table;
pub mod workloads;

pub use experiments::{registry, Experiment};
pub use table::ExperimentTable;
