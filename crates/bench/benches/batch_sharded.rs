//! Batch query throughput of the sharded [`QueryEngine`].
//!
//! One engine, one 1 000-graph database, a batch of queries: the scan is
//! distributed over `GbdaConfig::shards` worker threads via
//! `std::thread::scope`, all workers sharing the posterior memo. The shard
//! sweep demonstrates >1 shard scaling against the single-shard engine on
//! the identical workload (results are bit-identical by construction).
//! Shard workers only help with real parallel hardware: on a single-core
//! host the sweep reads as flat (spawn overhead only), so interpret it
//! against the core count of the machine running it.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_graph::{GeneratorConfig, Graph, LabelAlphabets};
use gbda_core::{GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_batch_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_sharded_1k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let mut rng = StdRng::seed_from_u64(0x5AAD);
    let mut graphs: Vec<Graph> = Vec::with_capacity(1000);
    for size in [40usize, 48, 56, 64] {
        let cfg = GeneratorConfig::new(size, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        graphs.extend(
            cfg.generate_many(250, &mut rng)
                .expect("generation succeeds"),
        );
    }
    let queries: Vec<Graph> = (0..16).map(|i| graphs[i * 31].clone()).collect();
    let database = GraphDatabase::from_graphs(graphs);
    let base = GbdaConfig::new(5, 0.8).with_sample_pairs(500);
    let index = OfflineIndex::build(&database, &base).expect("offline stage builds");

    for shards in [1usize, 2, 4] {
        let engine = QueryEngine::new(&database, &index, base.clone().with_shards(shards));
        // Warm the posterior memo once so the sweep measures scan
        // parallelism, not first-touch posterior evaluation.
        let _ = engine.search(&queries[0]);
        group.bench_with_input(BenchmarkId::new("search_batch", shards), &shards, |b, _| {
            b.iter(|| engine.search_batch(&queries))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sharded);
criterion_main!(benches);
