//! Table-IV/V microbenchmark: offline prior construction cost.
use criterion::{criterion_group, criterion_main, Criterion};
use gbd_bench::workloads::real_like_dataset;
use gbd_graph::LabelAlphabets;
use gbd_prob::jeffreys::jeffreys_column;
use gbd_prob::BranchEditModel;
use gbda_core::{GbdaConfig, GraphDatabase, OfflineIndex};
use std::time::Duration;

fn bench_offline(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_priors_table4_5");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dataset = real_like_dataset("GREC");
    let config = GbdaConfig::new(5, 0.9).with_sample_pairs(500);
    group.bench_function("offline_index_grec", |b| {
        b.iter(|| {
            let database = GraphDatabase::with_alphabets(dataset.graphs.clone(), dataset.alphabets);
            OfflineIndex::build(&database, &config)
        })
    });
    group.bench_function("jeffreys_column_v20_tau10", |b| {
        let model = BranchEditModel::new(20, LabelAlphabets::new(12, 6));
        b.iter(|| jeffreys_column(&model, 10))
    });
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
