//! Exact GED (A*) microbenchmark, including the threshold-pruning ablation.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_ged::{bounded_ged, exact_ged};
use gbd_graph::GeneratorConfig;
use rand::SeedableRng;
use std::time::Duration;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_ged_astar");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    for n in [5usize, 7, 8] {
        let cfg = GeneratorConfig::new(n, 2.0);
        let a = cfg.generate(&mut rng).unwrap();
        let b = cfg.generate(&mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("unbounded", n), &n, |bench, _| {
            bench.iter(|| exact_ged(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("bounded_tau3", n), &n, |bench, _| {
            bench.iter(|| bounded_ged(&a, &b, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
