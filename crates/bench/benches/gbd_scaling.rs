//! Benchmarks the O(nd) GBD computation (Section III) as the graph size
//! grows: the flat interned `(id, count)` runs of the engine's arena storage
//! against the pre-computed sorted branch multisets of the seed, and the
//! ablation of recomputing branches per comparison. A second group times
//! building the CSR inverted branch index (the count-filter substrate) as
//! the database grows.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_graph::{BranchCatalog, BranchMultiset, GeneratorConfig, LabelAlphabets};
use gbda_core::GraphDatabase;
use rand::SeedableRng;
use std::time::Duration;

fn bench_gbd(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbd_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for n in [100usize, 400, 1600] {
        let cfg = GeneratorConfig::new(n, 6.0);
        let a = cfg.generate(&mut rng).unwrap();
        let b = cfg.generate(&mut rng).unwrap();
        let ba = BranchMultiset::from_graph(&a);
        let bb = BranchMultiset::from_graph(&b);
        let mut catalog = BranchCatalog::new();
        let fa = catalog.flatten(&ba);
        let fb = catalog.flatten(&bb);
        assert_eq!(fa.gbd(&fb), ba.gbd(&bb));
        group.bench_with_input(
            BenchmarkId::new("flat_interned_runs", n),
            &n,
            |bencher, _| bencher.iter(|| fa.gbd(&fb)),
        );
        group.bench_with_input(
            BenchmarkId::new("precomputed_branches", n),
            &n,
            |bencher, _| bencher.iter(|| ba.gbd(&bb)),
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_branches", n),
            &n,
            |bencher, _| bencher.iter(|| gbd_graph::graph_branch_distance(&a, &b)),
        );
    }
    group.finish();

    // Building the inverted branch index: two counting passes over the
    // arena, no sorting. Timed apart from full database construction so
    // index cost is visible on its own as databases grow.
    let mut group = c.benchmark_group("postings_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for n in [250usize, 1000, 4000] {
        let cfg = GeneratorConfig::new(48, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        let graphs = cfg.generate_many(n, &mut rng).unwrap();
        let db = GraphDatabase::from_graphs(graphs);
        assert_eq!(db.postings_len(), db.arena_len());
        group.bench_with_input(BenchmarkId::new("inverted_index", n), &n, |bencher, _| {
            bencher.iter(|| db.rebuild_inverted_index())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gbd);
criterion_main!(benches);
