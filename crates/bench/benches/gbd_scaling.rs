//! Benchmarks the O(nd) GBD computation (Section III) as the graph size
//! grows, plus the ablation of the pre-computed sorted branch multisets
//! against recomputing branches per comparison.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_graph::{BranchMultiset, GeneratorConfig};
use rand::SeedableRng;
use std::time::Duration;

fn bench_gbd(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbd_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for n in [100usize, 400, 1600] {
        let cfg = GeneratorConfig::new(n, 6.0);
        let a = cfg.generate(&mut rng).unwrap();
        let b = cfg.generate(&mut rng).unwrap();
        let ba = BranchMultiset::from_graph(&a);
        let bb = BranchMultiset::from_graph(&b);
        group.bench_with_input(
            BenchmarkId::new("precomputed_branches", n),
            &n,
            |bencher, _| bencher.iter(|| ba.gbd(&bb)),
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_branches", n),
            &n,
            |bencher, _| bencher.iter(|| gbd_graph::graph_branch_distance(&a, &b)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gbd);
criterion_main!(benches);
