//! Benchmarks the O(nd) GBD computation (Section III) as the graph size
//! grows: the flat interned `(id, count)` runs of the engine's arena storage
//! against the pre-computed sorted branch multisets of the seed, and the
//! ablation of recomputing branches per comparison.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_graph::{BranchCatalog, BranchMultiset, GeneratorConfig};
use rand::SeedableRng;
use std::time::Duration;

fn bench_gbd(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbd_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for n in [100usize, 400, 1600] {
        let cfg = GeneratorConfig::new(n, 6.0);
        let a = cfg.generate(&mut rng).unwrap();
        let b = cfg.generate(&mut rng).unwrap();
        let ba = BranchMultiset::from_graph(&a);
        let bb = BranchMultiset::from_graph(&b);
        let mut catalog = BranchCatalog::new();
        let fa = catalog.flatten(&ba);
        let fb = catalog.flatten(&bb);
        assert_eq!(fa.gbd(&fb), ba.gbd(&bb));
        group.bench_with_input(
            BenchmarkId::new("flat_interned_runs", n),
            &n,
            |bencher, _| bencher.iter(|| fa.gbd(&fb)),
        );
        group.bench_with_input(
            BenchmarkId::new("precomputed_branches", n),
            &n,
            |bencher, _| bencher.iter(|| ba.gbd(&bb)),
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_branches", n),
            &n,
            |bencher, _| bencher.iter(|| gbd_graph::graph_branch_distance(&a, &b)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gbd);
criterion_main!(benches);
