//! Assignment-solver microbenchmarks: Hungarian O(n³) vs greedy O(n² log n).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_assignment::{greedy_assignment, hungarian};
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_solvers");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for n in [20usize, 60, 120] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("hungarian", n), &n, |b, _| {
            b.iter(|| hungarian(&cost))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| greedy_assignment(&cost))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
