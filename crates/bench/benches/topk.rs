//! Ranked-query (top-k) microbenchmark.
//!
//! One group, `topk`, at 1 000 and 10 000 mixed-size graphs with k = 10:
//!
//! * `full_scan_sort` — the definitional baseline: a recording cascade scan
//!   followed by sort-truncate;
//! * `cascade` — `search_top_k` with the cascade on, so the running
//!   k-th-best posterior tightens the ϕ cutoff that rejects graphs from
//!   bounds alone;
//! * `merge` — `search_top_k` with the cascade off (flat merge per graph).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_bench::workloads::mixed_size_online_workload;
use gbda_core::{rank_by_posterior, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine};
use std::time::Duration;

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let k = 10usize;
    for &n in &[1_000usize, 10_000] {
        let (graphs, query) = mixed_size_online_workload(n);
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(5, 0.8).with_sample_pairs(500);
        let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
        let recording = QueryEngine::new(&database, &index, config.clone());
        let cascade = QueryEngine::new(
            &database,
            &index,
            config.clone().with_record_posteriors(false),
        );
        let merge = QueryEngine::new(
            &database,
            &index,
            config
                .clone()
                .with_record_posteriors(false)
                .with_filter_cascade(false),
        );
        // All three answer the same ranked question.
        let reference = rank_by_posterior(&recording.search(&query).posteriors, k);
        for hits in [
            cascade.search_top_k(&query, k).hits,
            merge.search_top_k(&query, k).hits,
        ] {
            assert_eq!(hits.len(), reference.len());
            for (a, b) in hits.iter().zip(&reference) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.posterior.to_bits(), b.posterior.to_bits());
            }
        }
        group.bench_with_input(BenchmarkId::new("full_scan_sort", n), &n, |b, _| {
            b.iter(|| rank_by_posterior(&recording.search(&query).posteriors, k))
        });
        group.bench_with_input(BenchmarkId::new("cascade", n), &n, |b, _| {
            b.iter(|| cascade.search_top_k(&query, k))
        });
        group.bench_with_input(BenchmarkId::new("merge", n), &n, |b, _| {
            b.iter(|| merge.search_top_k(&query, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
