//! Benchmarks the O(τ̂³) likelihood-table construction (Section VI-B) and the
//! ablation of the Equation-22 reuse (weight-vector form) against the naive
//! per-(τ, ϕ) evaluation.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_graph::LabelAlphabets;
use gbd_prob::{lambda1, BranchEditModel, Lambda1Table};
use std::time::Duration;

fn bench_lambda1(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda1_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let model = BranchEditModel::new(50, LabelAlphabets::new(10, 4));
    for tau_hat in [3u64, 6, 10, 20] {
        group.bench_with_input(
            BenchmarkId::new("table_with_reuse", tau_hat),
            &tau_hat,
            |b, &t| b.iter(|| Lambda1Table::build(&model, t)),
        );
    }
    for tau_hat in [3u64, 6, 10] {
        group.bench_with_input(
            BenchmarkId::new("naive_per_cell", tau_hat),
            &tau_hat,
            |b, &t| {
                b.iter(|| {
                    let mut total = 0.0;
                    for tau in 0..=t {
                        for phi in 0..=(2 * tau) {
                            total += lambda1(&model, tau, phi);
                        }
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lambda1);
criterion_main!(benches);
