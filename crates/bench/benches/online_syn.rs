//! Online-stage microbenchmark on synthetic workloads.
//!
//! Three groups:
//!
//! * `online_query_syn_fig8` — per-query time vs graph size (GBDA vs the
//!   cheapest competitor), the Figure-8 axis;
//! * `online_query_syn_1k` — one query against a 1 000-graph database:
//!   the memoized + flat-storage engine scan against the seed-faithful
//!   sequential scan (`reference_search`), which re-evaluates the posterior
//!   per graph and merges heap-allocated branch multisets;
//! * `filter_cascade` — the cascade on/off ablation at 1 000 and 10 000
//!   graphs (posterior recording off, so the bound stages can skip whole
//!   size buckets).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_assignment::GreedyGed;
use gbd_bench::workloads::{indexed_database, mixed_size_online_workload, synthetic_dataset};
use gbda_core::{
    EstimatorSearcher, GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine, SimilaritySearcher,
};
use std::time::Duration;

fn bench_online_syn(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_query_syn_fig8");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[100usize, 200, 400] {
        let synthetic = synthetic_dataset(&[n], true);
        let dataset = &synthetic.subsets[0].dataset;
        let query = dataset.queries[0].clone();
        let config = GbdaConfig::new(10, 0.8).with_sample_pairs(30);
        let (database, index) = indexed_database(dataset, &config).expect("offline stage builds");
        let gbda = QueryEngine::new(&database, &index, config);
        group.bench_with_input(BenchmarkId::new("GBDA_tau10", n), &n, |b, _| {
            b.iter(|| gbda.search(&query))
        });
        let greedy = EstimatorSearcher::new(&database, GreedyGed, 10.0);
        group.bench_with_input(BenchmarkId::new("greedysort", n), &n, |b, _| {
            b.iter(|| greedy.search(&query))
        });
    }
    group.finish();

    // The acceptance workload: 1 000 database graphs of mixed sizes. The
    // engine pays |sizes| × ϕ_max posterior evaluations once, then answers
    // every other pair from the memo over flat integer runs; the seed path
    // pays a full posterior evaluation and a multiset merge per graph.
    let mut group = c.benchmark_group("online_query_syn_1k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let (graphs, query) = mixed_size_online_workload(1000);
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(5, 0.8).with_sample_pairs(500);
    let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
    let engine = QueryEngine::new(&database, &index, config.clone());
    let merge_engine =
        QueryEngine::new(&database, &index, config.clone().with_filter_cascade(false));
    group.bench_function("engine_cascade_flat", |b| b.iter(|| engine.search(&query)));
    group.bench_function("engine_memoized_flat", |b| {
        b.iter(|| merge_engine.search(&query))
    });
    group.bench_function("seed_sequential_scan", |b| {
        b.iter(|| engine.reference_search(&query))
    });
    group.finish();

    // The cascade on/off ablation at 1k and 10k graphs, posterior recording
    // off: with the cascade on, whole size buckets resolve from the L1 bound
    // and the remainder from the inverted-index count filter; with it off,
    // every graph pays a flat merge (plus the ϕ-threshold compare).
    let mut group = c.benchmark_group("filter_cascade");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 10_000] {
        let (graphs, query) = mixed_size_online_workload(n);
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(5, 0.8)
            .with_sample_pairs(500)
            .with_record_posteriors(false);
        let index = OfflineIndex::build(&database, &config).expect("offline stage builds");
        let cascade_on = QueryEngine::new(&database, &index, config.clone());
        let cascade_off =
            QueryEngine::new(&database, &index, config.clone().with_filter_cascade(false));
        assert_eq!(
            cascade_on.search(&query).matches,
            cascade_off.search(&query).matches
        );
        group.bench_with_input(BenchmarkId::new("cascade_on", n), &n, |b, _| {
            b.iter(|| cascade_on.search(&query))
        });
        group.bench_with_input(BenchmarkId::new("cascade_off", n), &n, |b, _| {
            b.iter(|| cascade_off.search(&query))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online_syn);
criterion_main!(benches);
