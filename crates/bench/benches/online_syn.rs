//! Figure-8/9 microbenchmark: per-query time vs graph size on synthetic data
//! (GBDA vs the cheapest competitor).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_assignment::GreedyGed;
use gbd_bench::workloads::{indexed_database, synthetic_dataset};
use gbda_core::{EstimatorSearcher, GbdaConfig, GbdaSearcher, SimilaritySearcher};
use std::time::Duration;

fn bench_online_syn(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_query_syn_fig8");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[100usize, 200, 400] {
        let synthetic = synthetic_dataset(&[n], true);
        let dataset = &synthetic.subsets[0].dataset;
        let query = dataset.queries[0].clone();
        let config = GbdaConfig::new(10, 0.8).with_sample_pairs(30);
        let (database, index) = indexed_database(dataset, &config);
        let gbda = GbdaSearcher::new(&database, &index, config);
        group.bench_with_input(BenchmarkId::new("GBDA_tau10", n), &n, |b, _| {
            b.iter(|| gbda.search(&query))
        });
        let greedy = EstimatorSearcher::new(&database, GreedyGed, 10.0);
        group.bench_with_input(BenchmarkId::new("greedysort", n), &n, |b, _| {
            b.iter(|| greedy.search(&query))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online_syn);
criterion_main!(benches);
