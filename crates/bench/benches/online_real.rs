//! Figure-7 microbenchmark: one similarity query on a real-like dataset with
//! every method.
use criterion::{criterion_group, criterion_main, Criterion};
use gbd_assignment::{GreedyGed, LsapGed};
use gbd_bench::workloads::{indexed_database, real_like_dataset};
use gbd_seriation::SeriationGed;
use gbda_core::{EstimatorSearcher, GbdaConfig, QueryEngine, SimilaritySearcher};
use std::time::Duration;

fn bench_online_real(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_query_real_fig7");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dataset = real_like_dataset("AIDS");
    let query = dataset.queries[0].clone();
    let config = GbdaConfig::new(5, 0.9).with_sample_pairs(1000);
    let (database, index) = indexed_database(&dataset, &config).expect("offline stage builds");

    let gbda = QueryEngine::new(&database, &index, config);
    group.bench_function("GBDA_tau5", |b| b.iter(|| gbda.search(&query)));
    let lsap = EstimatorSearcher::new(&database, LsapGed, 5.0);
    group.bench_function("LSAP", |b| b.iter(|| lsap.search(&query)));
    let greedy = EstimatorSearcher::new(&database, GreedyGed, 5.0);
    group.bench_function("greedysort", |b| b.iter(|| greedy.search(&query)));
    let seriation = EstimatorSearcher::new(&database, SeriationGed::default(), 5.0);
    group.bench_function("seriation", |b| b.iter(|| seriation.search(&query)));
    group.finish();
}

criterion_group!(benches, bench_online_real);
criterion_main!(benches);
