//! A tiny blocking HTTP/1.1 client — just enough to exercise the server
//! from the smoke mode, the benchmarks and the tests without external
//! tooling. One request per connection (`Connection: close`).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Performs one request and returns `(status, body)`.
///
/// # Errors
/// Connection/write/read failures and malformed response framing, as
/// [`io::Error`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: gbd-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let bad = |message: &str| io::Error::new(io::ErrorKind::InvalidData, message.to_owned());
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| bad("response has no status code"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?
        .1
        .to_owned();
    Ok((status, body))
}
