//! The endpoint layer: JSON codecs for graphs and the request dispatcher
//! over a shared [`gbda_core::ConcurrentEngine`].
//!
//! Every query endpoint pins one published generation and answers entirely
//! from it, echoing the generation's `epoch` in the response — the wire
//! form of the serving layer's consistency guarantee: the results are
//! bit-identical to a static engine over that generation's live set.
//!
//! | Method | Path            | Body                                  | Response |
//! |--------|-----------------|---------------------------------------|----------|
//! | POST   | `/search`       | `{"graph": …}`                        | `{"epoch", "matches", "evaluated", "seconds"}` |
//! | POST   | `/search_top_k` | `{"graph": …, "k": N}`                | `{"epoch", "hits": [{"id", "posterior"}]}` |
//! | POST   | `/insert`       | `{"graph": …}`                        | `{"id", "epoch"}` |
//! | POST   | `/remove`       | `{"id": N}`                           | `{"epoch"}` (404 on unknown id) |
//! | GET    | `/healthz`      | —                                     | `{"status", "epoch", "live_graphs"}` |
//! | GET    | `/metrics`      | —                                     | Prometheus text exposition |
//! | GET    | `/metrics.json` | —                                     | JSON exposition |
//! | POST   | `/shutdown`     | —                                     | `{"status": "shutting down"}` |
//!
//! A graph travels as `{"vertices": [label, …], "edges": [[a, b, label],
//! …]}` with `u32` labels and vertex indices into the `vertices` array.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use gbd_bench::json::{self, JsonValue};
use gbd_graph::{Graph, Label};
use gbd_telemetry::{global, metrics_enabled};
use gbda_core::ConcurrentEngine;

use crate::http::{Request, Response};

/// The shared serving state: the engine plus the graceful-shutdown latch
/// that `POST /shutdown` trips.
pub struct ServeState {
    engine: ConcurrentEngine,
    shutdown: AtomicBool,
}

impl ServeState {
    /// Wraps an engine for serving.
    pub fn new(engine: ConcurrentEngine) -> Self {
        ServeState {
            engine,
            shutdown: AtomicBool::new(false),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ConcurrentEngine {
        &self.engine
    }

    /// Whether `POST /shutdown` was received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Decodes `{"vertices": …, "edges": …}` into a [`Graph`].
///
/// # Errors
/// A human-readable message naming the offending member.
pub fn graph_from_json(value: &JsonValue) -> Result<Graph, String> {
    let labels = value
        .get("vertices")
        .and_then(JsonValue::as_array)
        .ok_or("graph needs a \"vertices\" array")?;
    let mut graph = Graph::with_capacity(labels.len());
    let mut vertices = Vec::with_capacity(labels.len());
    for (i, label) in labels.iter().enumerate() {
        let label = label
            .as_usize()
            .and_then(|l| u32::try_from(l).ok())
            .ok_or(format!("vertex {i} is not a u32 label"))?;
        vertices.push(graph.add_vertex(Label(label)));
    }
    let edges = value
        .get("edges")
        .and_then(JsonValue::as_array)
        .ok_or("graph needs an \"edges\" array")?;
    for (i, edge) in edges.iter().enumerate() {
        let parts = edge
            .as_array()
            .filter(|parts| parts.len() == 3)
            .ok_or(format!("edge {i} is not an [a, b, label] triple"))?;
        let index = |k: usize| -> Result<usize, String> {
            parts[k]
                .as_usize()
                .filter(|&v| v < vertices.len())
                .ok_or(format!("edge {i} endpoint {k} is out of range"))
        };
        let label = parts[2]
            .as_usize()
            .and_then(|l| u32::try_from(l).ok())
            .ok_or(format!("edge {i} label is not a u32"))?;
        graph
            .add_edge(vertices[index(0)?], vertices[index(1)?], Label(label))
            .map_err(|e| format!("edge {i}: {e}"))?;
    }
    Ok(graph)
}

fn parse_body(request: &Request) -> Result<JsonValue, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "body is not UTF-8"))?;
    json::parse(text).map_err(|e| Response::error(400, &format!("body is not JSON: {e}")))
}

fn body_graph(document: &JsonValue) -> Result<Graph, Response> {
    let member = document
        .get("graph")
        .ok_or_else(|| Response::error(400, "body needs a \"graph\" member"))?;
    graph_from_json(member).map_err(|e| Response::error(400, &e))
}

fn number(n: f64) -> JsonValue {
    JsonValue::Number(n)
}

fn ids(ids: &[u64]) -> JsonValue {
    JsonValue::Array(ids.iter().map(|&id| number(id as f64)).collect())
}

/// Dispatches one request against the serving state.
pub fn handle(state: &ServeState, request: &Request) -> Response {
    let started = Instant::now();
    let response = dispatch(state, request);
    record_request(request, &response, started.elapsed().as_secs_f64());
    response
}

fn dispatch(state: &ServeState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/search") => {
            let document = match parse_body(request) {
                Ok(document) => document,
                Err(response) => return response,
            };
            let query = match body_graph(&document) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let generation = state.engine.pin();
            let outcome = state.engine.reader().search_pinned(&generation, &query);
            Response::json(
                200,
                JsonValue::Object(vec![
                    ("epoch".into(), number(generation.epoch() as f64)),
                    ("matches".into(), ids(&outcome.matches)),
                    ("evaluated".into(), number(outcome.stats.evaluated as f64)),
                    ("seconds".into(), number(outcome.seconds)),
                ])
                .render(),
            )
        }
        ("POST", "/search_top_k") => {
            let document = match parse_body(request) {
                Ok(document) => document,
                Err(response) => return response,
            };
            let query = match body_graph(&document) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let Some(k) = document.get("k").and_then(JsonValue::as_usize) else {
                return Response::error(400, "body needs a non-negative integer \"k\"");
            };
            let generation = state.engine.pin();
            let outcome = state
                .engine
                .reader()
                .search_top_k_pinned(&generation, &query, k);
            let hits = outcome
                .hits
                .iter()
                .map(|hit| {
                    JsonValue::Object(vec![
                        ("id".into(), number(hit.id as f64)),
                        ("posterior".into(), number(hit.posterior)),
                    ])
                })
                .collect();
            Response::json(
                200,
                JsonValue::Object(vec![
                    ("epoch".into(), number(generation.epoch() as f64)),
                    ("hits".into(), JsonValue::Array(hits)),
                    ("seconds".into(), number(outcome.seconds)),
                ])
                .render(),
            )
        }
        ("POST", "/insert") => {
            let document = match parse_body(request) {
                Ok(document) => document,
                Err(response) => return response,
            };
            let graph = match body_graph(&document) {
                Ok(graph) => graph,
                Err(response) => return response,
            };
            let id = state.engine.insert(graph);
            Response::json(
                200,
                JsonValue::Object(vec![
                    ("id".into(), number(id as f64)),
                    ("epoch".into(), number(state.engine.reader().epoch() as f64)),
                ])
                .render(),
            )
        }
        ("POST", "/remove") => {
            let document = match parse_body(request) {
                Ok(document) => document,
                Err(response) => return response,
            };
            let Some(id) = document.get("id").and_then(JsonValue::as_usize) else {
                return Response::error(400, "body needs a non-negative integer \"id\"");
            };
            match state.engine.remove(id as u64) {
                Ok(()) => Response::json(
                    200,
                    JsonValue::Object(vec![(
                        "epoch".into(),
                        number(state.engine.reader().epoch() as f64),
                    )])
                    .render(),
                ),
                Err(e) => Response::error(404, &e.to_string()),
            }
        }
        ("GET", "/healthz") => {
            let generation = state.engine.pin();
            Response::json(
                200,
                JsonValue::Object(vec![
                    ("status".into(), JsonValue::String("ok".into())),
                    ("epoch".into(), number(generation.epoch() as f64)),
                    ("live_graphs".into(), number(generation.len() as f64)),
                ])
                .render(),
            )
        }
        ("GET", "/metrics") => Response::text(200, global().render_prometheus()),
        ("GET", "/metrics.json") => Response::json(200, global().render_json()),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            Response::json(200, "{\"status\": \"shutting down\"}\n")
        }
        (
            _,
            "/search" | "/search_top_k" | "/insert" | "/remove" | "/healthz" | "/metrics"
            | "/metrics.json" | "/shutdown",
        ) => Response::error(405, "method not allowed for this path"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Books one finished request into the workspace telemetry.
fn record_request(request: &Request, response: &Response, seconds: f64) {
    if !metrics_enabled() {
        return;
    }
    let g = global();
    g.counter(
        "gbd_serve_requests_total",
        "HTTP requests answered by the serving layer.",
    )
    .inc();
    if response.status >= 400 {
        g.counter(
            "gbd_serve_errors_total",
            "HTTP requests answered with a 4xx/5xx status.",
        )
        .inc();
    }
    if request.method == "POST" && (request.path == "/search" || request.path == "/search_top_k") {
        g.histogram(
            "gbd_serve_query_seconds",
            "End-to-end latency of one HTTP query request.",
        )
        .record(seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::{GeneratorConfig, LabelAlphabets};
    use gbda_core::{GbdaConfig, GraphDatabase, OfflineIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn state() -> ServeState {
        let mut rng = StdRng::seed_from_u64(7);
        let graphs = GeneratorConfig::new(8, 2.0)
            .with_alphabets(LabelAlphabets::new(4, 2))
            .generate_many(10, &mut rng)
            .unwrap();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(2, 0.5).with_sample_pairs(60);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine =
            ConcurrentEngine::new(gbda_core::DynamicDatabase::new(database), index, config);
        ServeState::new(engine)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            close: false,
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            close: false,
            body: Vec::new(),
        }
    }

    const TRIANGLE: &str =
        "{\"vertices\": [1, 2, 3], \"edges\": [[0, 1, 0], [1, 2, 1], [0, 2, 0]]}";

    #[test]
    fn graph_codec_round_trips_the_triangle() {
        let graph = graph_from_json(&json::parse(TRIANGLE).unwrap()).unwrap();
        assert_eq!(graph.vertex_count(), 3);
        assert_eq!(graph.edge_count(), 3);
    }

    #[test]
    fn graph_codec_rejects_malformed_members() {
        for bad in [
            "{}",
            "{\"vertices\": 3}",
            "{\"vertices\": [1], \"edges\": [[0, 1, 0]]}",
            "{\"vertices\": [1, 2], \"edges\": [[0, 1]]}",
            "{\"vertices\": [-1], \"edges\": []}",
        ] {
            assert!(
                graph_from_json(&json::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn search_insert_remove_round_trip_with_epochs() {
        let state = state();
        let body = format!("{{\"graph\": {TRIANGLE}}}");

        let response = handle(&state, &post("/search", &body));
        assert_eq!(response.status, 200);
        let document = json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(document.get("epoch").and_then(JsonValue::as_usize), Some(0));
        assert_eq!(
            document.get("evaluated").and_then(JsonValue::as_usize),
            Some(10)
        );

        let response = handle(&state, &post("/insert", &body));
        let document = json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let id = document.get("id").and_then(JsonValue::as_usize).unwrap();
        assert_eq!(id, 10);
        assert_eq!(document.get("epoch").and_then(JsonValue::as_usize), Some(1));

        // The inserted triangle matches itself on the next search.
        let response = handle(&state, &post("/search", &body));
        let document = json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(document.get("epoch").and_then(JsonValue::as_usize), Some(1));
        let matches = document
            .get("matches")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(matches.iter().any(|m| m.as_usize() == Some(id)));

        let response = handle(&state, &post("/remove", &format!("{{\"id\": {id}}}")));
        assert_eq!(response.status, 200);
        let response = handle(&state, &post("/remove", "{\"id\": 999}"));
        assert_eq!(response.status, 404);
    }

    #[test]
    fn top_k_health_metrics_and_errors() {
        let state = state();
        let body = format!("{{\"graph\": {TRIANGLE}, \"k\": 3}}");
        let response = handle(&state, &post("/search_top_k", &body));
        assert_eq!(response.status, 200);
        let document = json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert!(
            document
                .get("hits")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len()
                <= 3
        );

        assert_eq!(handle(&state, &get("/healthz")).status, 200);
        let metrics = handle(&state, &get("/metrics"));
        assert_eq!(metrics.status, 200);
        assert!(String::from_utf8(metrics.body)
            .unwrap()
            .contains("gbda_generations_published_total"));
        let metrics_json = handle(&state, &get("/metrics.json"));
        assert!(json::parse(std::str::from_utf8(&metrics_json.body).unwrap()).is_ok());

        assert_eq!(handle(&state, &post("/search", "{not json")).status, 400);
        assert_eq!(handle(&state, &get("/search")).status, 405);
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        assert!(!state.shutdown_requested());
        assert_eq!(handle(&state, &post("/shutdown", "")).status, 200);
        assert!(state.shutdown_requested());
    }
}
