//! A hand-rolled HTTP/1.1 subset: exactly what the serving layer needs
//! (request line + headers + `Content-Length` bodies in; fixed-length
//! responses out), dependency-free and defensive.
//!
//! The parser is strict about the framing it supports and returns a typed
//! [`HttpError`] on anything else — an unsupported transfer encoding,
//! oversized headers or bodies, a malformed request line. The server maps
//! those to `400`/`413`/`505` responses instead of tearing the connection
//! down silently. Keep-alive is honored (HTTP/1.1 default) until the peer
//! asks for `Connection: close`, EOF, or a read timeout.

use std::io::{self, BufRead, Read, Write};

/// Upper bound on the header block (request line included).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub(crate) const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parse-level failure with the response status it should produce.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived.
    ConnectionClosed,
    /// An I/O error (including read timeouts) on the socket.
    Io(io::Error),
    /// A malformed or unsupported request; carries status + message.
    Bad(u16, &'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request: method, path (query string included, the API layer
/// does not use one), whether the peer asked to close, and the body.
#[derive(Debug)]
pub struct Request {
    /// The request method, uppercased by the peer per HTTP (`GET`, `POST`).
    pub method: String,
    /// The request target, e.g. `/search`.
    pub path: String,
    /// `true` when the peer sent `Connection: close`.
    pub close: bool,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request off `stream`.
///
/// # Errors
/// [`HttpError::ConnectionClosed`] on EOF before the first byte,
/// [`HttpError::Bad`] on malformed/unsupported framing, [`HttpError::Io`]
/// on socket errors (timeouts included).
pub fn read_request<S: BufRead>(stream: &mut S) -> Result<Request, HttpError> {
    let request_line = read_line(stream, true)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Bad(400, "empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or(HttpError::Bad(400, "request line has no target"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or(HttpError::Bad(400, "request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(505, "only HTTP/1.x is supported"));
    }

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    let mut header_bytes = request_line.len();
    loop {
        let line = read_line(stream, false)?;
        header_bytes += line.len() + 2;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::Bad(431, "header block too large"));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(400, "malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Bad(400, "unparsable content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::Bad(413, "request body too large"));
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Bad(501, "transfer encodings are not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::Bad(400, "body shorter than content-length")
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(Request {
        method,
        path,
        close,
        body,
    })
}

/// Reads one CRLF-terminated line (the LF alone is tolerated). EOF before
/// any byte of the *first* line is a clean [`HttpError::ConnectionClosed`].
fn read_line<S: BufRead>(stream: &mut S, first: bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut take = stream.take(MAX_HEADER_BYTES as u64 + 1);
    let read = take.read_until(b'\n', &mut line)?;
    if read == 0 {
        if first {
            return Err(HttpError::ConnectionClosed);
        }
        return Err(HttpError::Bad(400, "connection closed mid-request"));
    }
    if line.len() > MAX_HEADER_BYTES {
        return Err(HttpError::Bad(431, "header line too large"));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad(400, "non-UTF-8 header bytes"))
}

/// One response: status, content type and a fixed-length body.
#[derive(Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body (its length becomes `Content-Length`).
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// The canonical JSON error body `{"error": …}`.
    pub fn error(status: u16, message: &str) -> Self {
        let escaped: String = message
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        Response::json(status, format!("{{\"error\": \"{escaped}\"}}"))
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes `response` (with `Connection: close` when `close`), flushing.
///
/// # Errors
/// Propagates socket write errors (timeouts included).
pub fn write_response<S: Write>(
    stream: &mut S,
    response: &Response,
    close: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let request =
            parse("POST /insert HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/insert");
        assert_eq!(request.body, b"abcd");
        assert!(!request.close);
    }

    #[test]
    fn parses_a_get_and_connection_close() {
        let request = parse("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.close);
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_bad_framing_with_typed_statuses() {
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(
            parse("GET /\r\n\r\n"),
            Err(HttpError::Bad(400, _))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Bad(505, _))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Bad(501, _))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nine\r\n\r\n"),
            Err(HttpError::Bad(400, _))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Bad(400, _))
        ));
    }

    #[test]
    fn responses_carry_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
