//! The TCP front door: a `std`-only connection-per-thread HTTP server.
//!
//! An acceptor thread hands accepted connections to a fixed pool of worker
//! threads over an mpsc channel; each worker runs one connection at a time
//! through the keep-alive loop (read request → [`crate::api::handle`] →
//! write response). Every socket gets read *and* write timeouts so a stuck
//! peer can neither pin a worker forever nor block shutdown.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]): the stop latch is set,
//! the acceptor is woken with a loop-back connection and exits, the channel
//! sender drops, the workers finish their in-flight request and drain out,
//! and everything is joined before the call returns — no connection is
//! aborted mid-response.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::{handle, ServeState};
use crate::http::{read_request, write_response, HttpError, Response};

/// Tunables of the front door.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port — the bound address is on the [`ServerHandle`]).
    pub addr: String,
    /// Worker threads (connections served concurrently).
    pub threads: usize,
    /// Per-socket read timeout (also bounds how long an idle keep-alive
    /// connection holds a worker).
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A running server; dropping it without [`ServerHandle::shutdown`] leaks
/// the threads (they keep serving), so call it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully stops the server: wakes the acceptor, drains the
    /// workers, joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway loop-back connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `config.addr` and starts serving `state`.
///
/// # Errors
/// The bind error, verbatim. Accept errors after that are retried (the
/// acceptor never dies while the server runs).
pub fn serve(state: Arc<ServeState>, config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (sender, receiver) = mpsc::channel::<TcpStream>();
    let receiver = Arc::new(Mutex::new(receiver));

    let workers = (0..config.threads.max(1))
        .map(|k| {
            let receiver = Arc::clone(&receiver);
            let state = Arc::clone(&state);
            let read_timeout = config.read_timeout;
            let write_timeout = config.write_timeout;
            std::thread::Builder::new()
                .name(format!("gbd-serve-{k}"))
                .spawn(move || worker_loop(&state, &receiver, read_timeout, write_timeout))
                .expect("spawn worker thread")
        })
        .collect();

    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("gbd-serve-accept".into())
            .spawn(move || accept_loop(&listener, &sender, &stop))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        stop,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, sender: &Sender<TcpStream>, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::Acquire) {
                    // The wake-up connection (or a late client); dropping
                    // the sender below drains the workers.
                    return;
                }
                // A send can only fail if every worker died; nothing to do.
                let _ = sender.send(stream);
            }
            Err(_) if stop.load(Ordering::Acquire) => return,
            Err(_) => std::thread::yield_now(),
        }
    }
}

fn worker_loop(
    state: &ServeState,
    receiver: &Mutex<Receiver<TcpStream>>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    loop {
        // Holding the lock only for the recv keeps the other workers free
        // to pick up connections while this one serves.
        let stream = match receiver.lock() {
            Ok(receiver) => receiver.recv(),
            Err(_) => return,
        };
        let Ok(stream) = stream else {
            return; // Sender dropped: graceful shutdown.
        };
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_write_timeout(Some(write_timeout));
        let _ = stream.set_nodelay(true);
        serve_connection(state, stream);
    }
}

/// The keep-alive loop of one connection; all errors just end it.
fn serve_connection(state: &ServeState, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(request) => {
                let response = handle(state, &request);
                let close = request.close;
                if write_response(&mut writer, &response, close).is_err() || close {
                    return;
                }
            }
            Err(HttpError::ConnectionClosed) => return,
            Err(HttpError::Io(_)) => return, // Timeout or reset: drop it.
            Err(HttpError::Bad(status, message)) => {
                // Framing is unreliable after a parse error; answer, close.
                let _ = write_response(&mut writer, &Response::error(status, message), true);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::request;
    use gbd_graph::{GeneratorConfig, LabelAlphabets};
    use gbda_core::{ConcurrentEngine, DynamicDatabase, GbdaConfig, GraphDatabase, OfflineIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn boot() -> (Arc<ServeState>, ServerHandle) {
        let mut rng = StdRng::seed_from_u64(11);
        let graphs = GeneratorConfig::new(8, 2.0)
            .with_alphabets(LabelAlphabets::new(4, 2))
            .generate_many(8, &mut rng)
            .unwrap();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(2, 0.5).with_sample_pairs(60);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = ConcurrentEngine::new(DynamicDatabase::new(database), index, config);
        let state = Arc::new(ServeState::new(engine));
        let server = serve(
            Arc::clone(&state),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        (state, server)
    }

    #[test]
    fn serves_real_http_and_shuts_down_gracefully() {
        let (state, server) = boot();
        let addr = server.addr();

        let (status, body) = request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\": \"ok\""));

        let graph = "{\"graph\": {\"vertices\": [1, 2], \"edges\": [[0, 1, 0]]}}";
        let (status, body) = request(addr, "POST", "/insert", graph).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"id\": 8"));

        let (status, body) = request(addr, "POST", "/search", graph).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\": 1"));

        let (status, body) = request(addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("gbd_serve_requests_total"));

        let (status, _body) = request(addr, "POST", "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        assert!(state.shutdown_requested());
        server.shutdown();

        // The socket no longer answers once shutdown returns.
        assert!(request(addr, "GET", "/healthz", "").is_err());
    }
}
