//! # gbd-serve — the std-only HTTP front door of the GBDA workspace
//!
//! Serves a [`gbda_core::ConcurrentEngine`] — snapshot-isolated reads
//! under writes, background compaction — over a hand-rolled HTTP/1.1
//! server built from nothing but `std::net`:
//!
//! * [`http`] — the wire layer: a strict request parser (typed errors,
//!   size limits, no transfer encodings) and fixed-length responses,
//! * [`api`] — the endpoint layer: graph JSON codec, dispatch, per-request
//!   telemetry; every query pins one published generation and echoes its
//!   epoch,
//! * [`server`] — the connection-per-thread pool with read/write timeouts
//!   and graceful drain-and-join shutdown,
//! * [`client`] — a minimal blocking client for the smoke mode, the
//!   benchmarks and CI.
//!
//! The consistency guarantee on the wire: a response with `"epoch": e` is
//! bit-identical to what a fresh static engine would return over the live
//! set of the published generation `e` — see `gbda_core::concurrent`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod client;
pub mod http;
pub mod server;

pub use api::{graph_from_json, handle, ServeState};
pub use http::{HttpError, Request, Response};
pub use server::{serve, ServerConfig, ServerHandle};
