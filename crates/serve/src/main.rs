//! The `gbd-serve` binary: boots a synthetic (seeded) database behind the
//! snapshot-isolated serving layer and answers HTTP until `POST /shutdown`.
//!
//! ```text
//! gbd-serve [--addr HOST:PORT] [--threads N] [--database N] [--seed S]
//!           [--tau T] [--gamma G] [--compact-threshold N] [--smoke]
//! ```
//!
//! `--smoke` is the CI mode: bind an ephemeral port, issue a real HTTP
//! conversation against it (health, search, insert, re-search on the new
//! epoch, top-k, remove, metrics scrape in both formats, shutdown), verify
//! every step, and exit non-zero on the first mismatch. The process exits
//! through the same graceful drain-and-join path as production shutdown.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gbd_bench::json::{self, JsonValue};
use gbd_graph::{GeneratorConfig, LabelAlphabets};
use gbd_serve::client::request;
use gbd_serve::{serve, ServeState, ServerConfig};
use gbda_core::{ConcurrentEngine, DynamicDatabase, GbdaConfig, GraphDatabase, OfflineIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    addr: String,
    threads: usize,
    database: usize,
    seed: u64,
    tau: u64,
    gamma: f64,
    compact_threshold: usize,
    smoke: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".into(),
        threads: 4,
        database: 2_000,
        seed: 42,
        tau: 3,
        gamma: 0.8,
        compact_threshold: 256,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--threads" => {
                options.threads = value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| e.to_string())?
                    .max(1)
            }
            "--database" => {
                options.database = value("--database")?
                    .parse::<usize>()
                    .map_err(|e| e.to_string())?
                    .max(8)
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--tau" => {
                options.tau = value("--tau")?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--gamma" => {
                options.gamma = value("--gamma")?
                    .parse()
                    .map_err(|e: std::num::ParseFloatError| e.to_string())?
            }
            "--compact-threshold" => {
                options.compact_threshold = value("--compact-threshold")?
                    .parse::<usize>()
                    .map_err(|e| e.to_string())?
                    .max(1)
            }
            "--smoke" => options.smoke = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn build_state(options: &Options) -> Result<ServeState, String> {
    eprintln!(
        "# building a {}-graph synthetic database (seed {})",
        options.database, options.seed
    );
    let mut rng = StdRng::seed_from_u64(options.seed);
    let graphs = GeneratorConfig::new(10, 2.0)
        .with_alphabets(LabelAlphabets::new(5, 3))
        .generate_many(options.database, &mut rng)
        .map_err(|e| format!("generate: {e}"))?;
    let database = GraphDatabase::from_graphs(graphs);
    let config = GbdaConfig::new(options.tau, options.gamma).with_sample_pairs(200);
    let index = OfflineIndex::build(&database, &config).map_err(|e| format!("offline: {e}"))?;
    let engine = ConcurrentEngine::with_auto_compact(
        DynamicDatabase::new(database),
        index,
        config,
        options.compact_threshold,
    );
    Ok(ServeState::new(engine))
}

/// The CI conversation; every step asserts on the real HTTP responses.
fn smoke(addr: std::net::SocketAddr) -> Result<(), String> {
    let json_of = |body: &str| json::parse(body).map_err(|e| format!("bad JSON response: {e}"));
    let expect = |step: &str, status: u16, want: u16| {
        if status == want {
            Ok(())
        } else {
            Err(format!("{step}: status {status}, wanted {want}"))
        }
    };
    let get = |path: &str| request(addr, "GET", path, "").map_err(|e| format!("{path}: {e}"));
    let post = |path: &str, body: &str| {
        request(addr, "POST", path, body).map_err(|e| format!("{path}: {e}"))
    };

    let (status, body) = get("/healthz")?;
    expect("healthz", status, 200)?;
    let health = json_of(&body)?;
    let live = health
        .get("live_graphs")
        .and_then(JsonValue::as_usize)
        .ok_or("healthz lacks live_graphs")?;
    eprintln!("# healthz ok: {live} live graphs");

    let triangle = "{\"vertices\": [1, 2, 3], \"edges\": [[0, 1, 0], [1, 2, 1]]}";
    let graph = &format!("{{\"graph\": {triangle}}}");
    let (status, body) = post("/search", graph)?;
    expect("search", status, 200)?;
    let epoch_before = json_of(&body)?
        .get("epoch")
        .and_then(JsonValue::as_usize)
        .ok_or("search lacks epoch")?;

    let (status, body) = post("/insert", graph)?;
    expect("insert", status, 200)?;
    let inserted = json_of(&body)?;
    let id = inserted
        .get("id")
        .and_then(JsonValue::as_usize)
        .ok_or("insert lacks id")?;
    let epoch_after = inserted
        .get("epoch")
        .and_then(JsonValue::as_usize)
        .ok_or("insert lacks epoch")?;
    if epoch_after <= epoch_before {
        return Err(format!(
            "insert did not advance the epoch ({epoch_before} -> {epoch_after})"
        ));
    }

    let (status, body) = post("/search", graph)?;
    expect("re-search", status, 200)?;
    let document = json_of(&body)?;
    let matches = document
        .get("matches")
        .and_then(JsonValue::as_array)
        .ok_or("search lacks matches")?;
    if !matches.iter().any(|m| m.as_usize() == Some(id)) {
        return Err(format!("inserted graph {id} does not match itself"));
    }
    eprintln!("# insert + re-search ok: id {id}, epoch {epoch_after}");

    let ranked = format!("{{\"graph\": {triangle}, \"k\": 5}}");
    let (status, body) = post("/search_top_k", &ranked)?;
    expect("search_top_k", status, 200)?;
    let hits = json_of(&body)?
        .get("hits")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::len)
        .ok_or("search_top_k lacks hits")?;
    if hits == 0 || hits > 5 {
        return Err(format!("search_top_k returned {hits} hits, wanted 1..=5"));
    }

    let (status, _body) = post("/remove", &format!("{{\"id\": {id}}}"))?;
    expect("remove", status, 200)?;
    let (status, _body) = post("/remove", "{\"id\": 18446744073709551615}")?;
    expect("remove-unknown", status, 404)?;

    let (status, body) = get("/metrics")?;
    expect("metrics", status, 200)?;
    for metric in [
        "gbda_generations_published_total",
        "gbda_queries_total",
        "gbd_serve_requests_total",
    ] {
        if !body.contains(metric) {
            return Err(format!("metrics scrape lacks {metric}"));
        }
    }
    let (status, body) = get("/metrics.json")?;
    expect("metrics.json", status, 200)?;
    json_of(&body)?;
    eprintln!("# metrics scrape ok (text + json)");

    let (status, _body) = post("/shutdown", "")?;
    expect("shutdown", status, 200)?;
    Ok(())
}

fn main() -> ExitCode {
    let mut options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if options.smoke {
        options.addr = "127.0.0.1:0".into();
        options.database = options.database.min(256);
    }
    let state = match build_state(&options) {
        Ok(state) => Arc::new(state),
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        addr: options.addr.clone(),
        threads: options.threads,
        ..ServerConfig::default()
    };
    let server = match serve(Arc::clone(&state), &config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("# serving on http://{}", server.addr());

    if options.smoke {
        let verdict = smoke(server.addr());
        // The smoke conversation ends with POST /shutdown; drain and join
        // regardless of the verdict so failures exit cleanly too.
        server.shutdown();
        return match verdict {
            Ok(()) => {
                eprintln!(
                    "smoke passed: HTTP round trip, epoch advance, metrics, graceful shutdown"
                );
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("smoke FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }

    while !state.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("# shutdown requested; draining");
    server.shutdown();
    ExitCode::SUCCESS
}
