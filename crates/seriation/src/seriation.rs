//! Seriation orders and spectral signatures of labeled graphs.
//!
//! The seriation baseline converts a graph into a one-dimensional object in
//! two steps: (1) the leading eigenvector of the (weighted) adjacency matrix
//! induces a serial ordering of the vertices, and (2) reading the vertex
//! labels in that order gives a string whose edit distance against the string
//! of another graph approximates the GED. The leading eigenvalues themselves
//! form a small *spectral signature* that captures global structure.

use gbd_graph::{Graph, Label, VertexId};

use crate::eigen::jacobi_eigen;
use crate::matrix::SymmetricMatrix;

/// Number of leading eigenvalues kept in the spectral signature.
pub const SIGNATURE_LENGTH: usize = 6;

/// The spectral part of a graph's seriation representation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralSignature {
    /// Leading eigenvalues of the adjacency matrix, descending, padded with
    /// zeros up to [`SIGNATURE_LENGTH`].
    pub leading_eigenvalues: Vec<f64>,
    /// Vertex labels read in seriation order.
    pub label_sequence: Vec<Label>,
}

/// Serial ordering of the vertices: descending magnitude of the leading
/// eigenvector entries, ties broken by vertex id.
pub fn seriation_order(graph: &Graph) -> Vec<VertexId> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let adjacency = SymmetricMatrix::adjacency(graph);
    let decomposition = jacobi_eigen(&adjacency);
    let leading = decomposition
        .eigenvectors
        .first()
        .cloned()
        .unwrap_or_else(|| vec![0.0; n]);
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_by(|&a, &b| {
        let xa = leading[a.index()].abs();
        let xb = leading[b.index()].abs();
        xb.partial_cmp(&xa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Builds the full seriation signature (`O(n²)` space and `O(n³)` worst-case
/// time for the dense eigen decomposition, matching the baseline's published
/// costs at the scales it can handle).
pub fn seriation_signature(graph: &Graph) -> SpectralSignature {
    let adjacency = SymmetricMatrix::adjacency(graph);
    let decomposition = jacobi_eigen(&adjacency);
    let mut leading_eigenvalues: Vec<f64> = decomposition
        .eigenvalues
        .iter()
        .copied()
        .take(SIGNATURE_LENGTH)
        .collect();
    leading_eigenvalues.resize(SIGNATURE_LENGTH, 0.0);

    let order = seriation_order(graph);
    let label_sequence = order
        .iter()
        .map(|&v| graph.vertex_label(v).expect("vertex from same graph"))
        .collect();
    SpectralSignature {
        leading_eigenvalues,
        label_sequence,
    }
}

/// Unit-cost Levenshtein distance between two label sequences — the string
/// alignment step of the seriation estimate.
pub fn sequence_edit_distance(a: &[Label], b: &[Label]) -> usize {
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut current = vec![0usize; m + 1];
    for i in 1..=n {
        current[0] = i;
        for j in 1..=m {
            let substitution = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            current[j] = substitution.min(prev[j] + 1).min(current[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    #[test]
    fn seriation_order_is_a_permutation() {
        let (g1, _) = figure1_g1();
        let order = seriation_order(&g1);
        let mut ids: Vec<usize> = order.iter().map(|v| v.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn signature_has_fixed_spectral_length() {
        let (g1, _) = figure1_g1();
        let s = seriation_signature(&g1);
        assert_eq!(s.leading_eigenvalues.len(), SIGNATURE_LENGTH);
        assert_eq!(s.label_sequence.len(), 3);
        // The real (non-padded) eigenvalues are descending; padding entries
        // are zero.
        for w in s.leading_eigenvalues[..3].windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert_eq!(&s.leading_eigenvalues[3..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn identical_graphs_have_identical_signatures() {
        let (g1, _) = figure1_g1();
        let a = seriation_signature(&g1);
        let b = seriation_signature(&g1.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn different_graphs_have_different_signatures() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let a = seriation_signature(&g1);
        let b = seriation_signature(&g2);
        assert_ne!(a.label_sequence, b.label_sequence);
    }

    #[test]
    fn sequence_edit_distance_basics() {
        let l = |xs: &[u32]| xs.iter().map(|&x| Label::new(x)).collect::<Vec<_>>();
        assert_eq!(sequence_edit_distance(&l(&[]), &l(&[])), 0);
        assert_eq!(sequence_edit_distance(&l(&[1, 2, 3]), &l(&[1, 2, 3])), 0);
        assert_eq!(sequence_edit_distance(&l(&[1, 2, 3]), &l(&[1, 3])), 1);
        assert_eq!(sequence_edit_distance(&l(&[1, 2]), &l(&[3, 4])), 2);
        assert_eq!(sequence_edit_distance(&l(&[]), &l(&[9, 9])), 2);
        // Symmetric.
        assert_eq!(
            sequence_edit_distance(&l(&[1, 2, 3, 4]), &l(&[2, 3])),
            sequence_edit_distance(&l(&[2, 3]), &l(&[1, 2, 3, 4]))
        );
    }

    #[test]
    fn empty_graph_has_empty_order() {
        let g = Graph::new();
        assert!(seriation_order(&g).is_empty());
        let s = seriation_signature(&g);
        assert!(s.label_sequence.is_empty());
    }

    use gbd_graph::Graph;
}
