//! # gbd-seriation — spectral seriation GED baseline
//!
//! The third competitor of the paper (Robles-Kelly & Hancock \[13\]) estimates
//! the GED through *graph seriation*: the adjacency matrix of each graph is
//! decomposed spectrally, its leading eigenvector induces a serial ordering
//! of the vertices, and the edit distance between the resulting label strings
//! (plus the difference of the leading eigenvalues) serves as the GED
//! estimate.
//!
//! As recorded in DESIGN.md (§5), we implement the standard pipeline the
//! paper describes — `O(n²)` spectra via a cyclic Jacobi eigen-solver, the
//! leading-eigenvector seriation order, and a probabilistically motivated
//! string alignment (Levenshtein with unit costs) — rather than the authors'
//! exact semidefinite machinery. The asymptotic costs and the qualitative
//! behaviour (no bound guarantee, moderate precision, dense `O(n²)` memory)
//! match the role the method plays in the paper's evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eigen;
pub mod estimator;
pub mod matrix;
pub mod seriation;

pub use eigen::{jacobi_eigen, leading_eigen, EigenDecomposition};
pub use estimator::SeriationGed;
pub use matrix::SymmetricMatrix;
pub use seriation::{seriation_order, seriation_signature, SpectralSignature};

pub use gbd_ged::GedEstimate;
