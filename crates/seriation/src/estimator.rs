//! The seriation GED estimator.
//!
//! The estimate combines the two components of the seriation representation:
//! the Levenshtein distance between the seriated label sequences (vertex-level
//! structure) and the absolute differences of the leading eigenvalues scaled
//! into an edge-operation count (global structure). Like the original method
//! it carries no bound guarantee.

use gbd_ged::GedEstimate;
use gbd_graph::Graph;

use crate::seriation::{sequence_edit_distance, seriation_signature};

/// The graph-seriation baseline \[13\].
#[derive(Debug, Clone, Copy)]
pub struct SeriationGed {
    /// Weight of the spectral (eigenvalue) component relative to the label
    /// sequence component. The default of `0.5` reproduces the qualitative
    /// middle-of-the-pack behaviour the paper reports for this baseline.
    pub spectral_weight: f64,
}

impl Default for SeriationGed {
    fn default() -> Self {
        SeriationGed {
            spectral_weight: 0.5,
        }
    }
}

impl GedEstimate for SeriationGed {
    fn name(&self) -> &str {
        "seriation"
    }

    fn estimate_ged(&self, g1: &Graph, g2: &Graph) -> f64 {
        let s1 = seriation_signature(g1);
        let s2 = seriation_signature(g2);
        let label_part = sequence_edit_distance(&s1.label_sequence, &s2.label_sequence) as f64;
        let spectral_part: f64 = s1
            .leading_eigenvalues
            .iter()
            .zip(&s2.leading_eigenvalues)
            .map(|(a, b)| (a - b).abs())
            .sum();
        label_part + self.spectral_weight * spectral_part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2, figure4_g1, figure4_g2};
    use gbd_graph::{GeneratorConfig, KnownGedConfig, KnownGedFamily};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_graphs_estimate_zero() {
        let (g1, _) = figure1_g1();
        assert_eq!(SeriationGed::default().estimate_ged(&g1, &g1), 0.0);
    }

    #[test]
    fn different_graphs_estimate_positive() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        assert!(SeriationGed::default().estimate_ged(&g1, &g2) > 0.0);
        let (h1, _) = figure4_g1();
        let (h2, _) = figure4_g2();
        // Figure 4 graphs differ only in edge labels; the estimate is small
        // but the estimator still has to produce a finite value.
        assert!(SeriationGed::default().estimate_ged(&h1, &h2).is_finite());
    }

    #[test]
    fn estimate_is_symmetric() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let e = SeriationGed::default();
        assert!((e.estimate_ged(&g1, &g2) - e.estimate_ged(&g2, &g1)).abs() < 1e-9);
    }

    #[test]
    fn estimate_grows_with_true_distance_within_a_family() {
        // Within a known-GED family, members at larger known distance from
        // the template should on average receive larger estimates — a weak
        // monotonicity sanity check.
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = KnownGedConfig::new(GeneratorConfig::new(14, 2.5), 6, 20, 6);
        let fam = KnownGedFamily::generate(&cfg, &mut rng).unwrap();
        let est = SeriationGed::default();
        let mut near = Vec::new();
        let mut far = Vec::new();
        for i in 1..fam.len() {
            let d = fam.known_ged(0, i);
            let e = est.estimate_ged(fam.member_graph(0), fam.member_graph(i));
            if d <= 1 {
                near.push(e);
            } else if d >= 4 {
                far.push(e);
            }
        }
        if !near.is_empty() && !far.is_empty() {
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                avg(&far) >= avg(&near),
                "far members should not look closer than near members"
            );
        }
    }

    #[test]
    fn metadata() {
        let e = SeriationGed::default();
        assert_eq!(e.name(), "seriation");
        assert!(!e.is_lower_bound());
    }
}
