//! Symmetric eigen decomposition via the cyclic Jacobi method.
//!
//! Jacobi iteration is simple, numerically robust for symmetric matrices and
//! entirely dependency-free, which is all the seriation baseline needs: the
//! paper only extracts the *leading* eigenvalues/eigenvector of adjacency
//! matrices (\[13\], \[14\]).

use crate::matrix::SymmetricMatrix;

/// Eigenvalues (descending) and the corresponding eigenvectors (columns).
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// `eigenvectors[k]` is the eigenvector of `eigenvalues[k]`.
    pub eigenvectors: Vec<Vec<f64>>,
}

/// Full eigen decomposition of a symmetric matrix by cyclic Jacobi sweeps.
pub fn jacobi_eigen(matrix: &SymmetricMatrix) -> EigenDecomposition {
    let n = matrix.dim();
    if n == 0 {
        return EigenDecomposition {
            eigenvalues: Vec::new(),
            eigenvectors: Vec::new(),
        };
    }
    let mut a = matrix.clone();
    // Eigenvector accumulator, starts as identity.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    let max_sweeps = 100;
    let tolerance = 1e-12;
    for _ in 0..max_sweeps {
        if a.off_diagonal_norm() < tolerance {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Classical symmetric Jacobi update: compute every affected
                // entry from the *old* values, exploiting the mirrored `set`.
                for k in 0..n {
                    if k == p || k == q {
                        continue;
                    }
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                a.set(p, p, app - t * apq);
                a.set(q, q, aqq + t * apq);
                a.set(p, q, 0.0);
                // Accumulate the rotation into the eigenvectors.
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a.get(j, j)
            .partial_cmp(&a.get(i, i))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a.get(i, i)).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    EigenDecomposition {
        eigenvalues,
        eigenvectors,
    }
}

/// Leading eigenvalue and eigenvector (by largest eigenvalue). For large
/// matrices a handful of power iterations would suffice; Jacobi keeps the
/// behaviour deterministic and is fast enough at the sizes the baseline can
/// handle anyway (its memory is `O(n²)` regardless).
pub fn leading_eigen(matrix: &SymmetricMatrix) -> (f64, Vec<f64>) {
    let decomposition = jacobi_eigen(matrix);
    match decomposition.eigenvalues.first() {
        Some(&l) => (l, decomposition.eigenvectors[0].clone()),
        None => (0.0, Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(m: &SymmetricMatrix, lambda: f64, v: &[f64]) -> f64 {
        let mv = m.multiply(v);
        mv.iter()
            .zip(v)
            .map(|(a, b)| (a - lambda * b).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_entries() {
        let mut m = SymmetricMatrix::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        let d = jacobi_eigen(&m);
        assert!((d.eigenvalues[0] - 3.0).abs() < 1e-9);
        assert!((d.eigenvalues[1] - 2.0).abs() < 1e-9);
        assert!((d.eigenvalues[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_by_two_known_decomposition() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let mut m = SymmetricMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(1, 1, 2.0);
        m.set(0, 1, 1.0);
        let d = jacobi_eigen(&m);
        assert!((d.eigenvalues[0] - 3.0).abs() < 1e-9);
        assert!((d.eigenvalues[1] - 1.0).abs() < 1e-9);
        assert!(residual(&m, d.eigenvalues[0], &d.eigenvectors[0]) < 1e-9);
    }

    #[test]
    fn eigenpairs_satisfy_the_definition_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for n in [3usize, 5, 8] {
            let mut m = SymmetricMatrix::zeros(n);
            for i in 0..n {
                for j in i..n {
                    m.set(i, j, rng.gen_range(-2.0..2.0));
                }
            }
            let d = jacobi_eigen(&m);
            // Trace is preserved.
            let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
            let eigsum: f64 = d.eigenvalues.iter().sum();
            assert!((trace - eigsum).abs() < 1e-6);
            for k in 0..n {
                assert!(
                    residual(&m, d.eigenvalues[k], &d.eigenvectors[k]) < 1e-6,
                    "eigenpair {k} residual too large for n={n}"
                );
            }
        }
    }

    #[test]
    fn leading_eigen_of_empty_matrix() {
        let (l, v) = leading_eigen(&SymmetricMatrix::zeros(0));
        assert_eq!(l, 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn leading_eigenvalue_of_a_path_graph_adjacency() {
        // Path on 3 vertices: eigenvalues of [[0,1,0],[1,0,1],[0,1,0]] are
        // {√2, 0, −√2}.
        let mut m = SymmetricMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        let (l, v) = leading_eigen(&m);
        assert!((l - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(v.len(), 3);
    }
}
