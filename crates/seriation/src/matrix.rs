//! Dense symmetric matrices (adjacency matrices of labeled graphs).

use gbd_graph::Graph;

/// A dense symmetric `n × n` matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymmetricMatrix {
    /// Creates the zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymmetricMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Writes entry `(i, j)` and its mirror `(j, i)`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.n + j] = value;
        self.data[j * self.n + i] = value;
    }

    /// Weighted adjacency matrix of a graph: `A[i][j] = 1 + label_id(i,j) mod 7 / 8`
    /// for existing edges (so differently labelled edges receive slightly
    /// different weights, as the seriation literature does by encoding edge
    /// attributes into weights) and `0` otherwise.
    pub fn adjacency(graph: &Graph) -> Self {
        let n = graph.vertex_count();
        let mut m = SymmetricMatrix::zeros(n);
        for (key, label) in graph.edges() {
            let weight = 1.0 + f64::from(label.id() % 7) / 8.0;
            m.set(key.u.index(), key.v.index(), weight);
        }
        m
    }

    /// Matrix–vector product.
    pub fn multiply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n);
        self.data
            .chunks_exact(self.n)
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm of the off-diagonal part — the Jacobi convergence
    /// criterion.
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    sum += self.get(i, j).powi(2);
                }
            }
        }
        sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::figure1_g1;

    #[test]
    fn adjacency_matrix_is_symmetric_and_weighted() {
        let (g1, _) = figure1_g1();
        let a = SymmetricMatrix::adjacency(&g1);
        assert_eq!(a.dim(), 3);
        for i in 0..3 {
            assert_eq!(a.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
        }
        assert!(a.get(0, 1) >= 1.0);
    }

    #[test]
    fn multiply_matches_hand_computation() {
        let mut m = SymmetricMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 1, 3.0);
        let out = m.multiply(&[1.0, 2.0]);
        assert_eq!(out, vec![4.0, 7.0]);
    }

    #[test]
    fn off_diagonal_norm_is_zero_for_diagonal_matrices() {
        let mut m = SymmetricMatrix::zeros(3);
        m.set(0, 0, 5.0);
        m.set(1, 1, -2.0);
        assert_eq!(m.off_diagonal_norm(), 0.0);
        m.set(0, 2, 3.0);
        assert!(m.off_diagonal_norm() > 0.0);
    }
}
