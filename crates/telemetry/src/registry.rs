//! The metrics registry: sharded counters, gauges and log-bucketed latency
//! histograms, plus the [`Snapshot`] / delta API tests and benches consume.
//!
//! Every instrument is a cheap cloneable handle over shared atomic state.
//! Increments are wait-free (`fetch_add` on a thread-sharded slot — no
//! compare-and-swap loop, no lock) so the `QueryEngine`'s scan shards never
//! contend on a cache line. The registry's lock is taken only on
//! registration and on read-side operations (snapshots, rendering), never
//! on the increment path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of atomic slots every counter and histogram is striped over.
/// A power of two so the shard pick is a mask, sized comfortably above the
/// shard parallelism the query engine uses in practice.
pub const COUNTER_SHARDS: usize = 16;

/// Upper bucket boundaries of every latency histogram, in seconds:
/// ~2×-spaced from 100 ns to 6.71 s plus a final 10 s bound. Values above
/// 10 s land in the implicit `+Inf` overflow bucket. A bucket counts
/// observations with `value <= bound` (Prometheus `le` semantics).
pub const HISTOGRAM_BOUNDS: [f64; 28] = [
    1e-7,
    2e-7,
    4e-7,
    8e-7,
    1.6e-6,
    3.2e-6,
    6.4e-6,
    1.28e-5,
    2.56e-5,
    5.12e-5,
    1.024e-4,
    2.048e-4,
    4.096e-4,
    8.192e-4,
    1.6384e-3,
    3.2768e-3,
    6.5536e-3,
    1.31072e-2,
    2.62144e-2,
    5.24288e-2,
    1.048576e-1,
    2.097152e-1,
    4.194304e-1,
    8.388608e-1,
    1.6777216,
    3.3554432,
    6.7108864,
    10.0,
];

/// Total bucket count of a histogram: every finite bound plus `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = HISTOGRAM_BOUNDS.len() + 1;

/// One cache-line-padded atomic slot, so two shards never share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedSlot(AtomicU64);

/// Hands every thread a fixed shard index, assigned round-robin on first
/// use, so a thread's increments always hit the same cache line and
/// threads spread over distinct lines.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|cell| {
        let mut shard = cell.get();
        if shard == usize::MAX {
            shard = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (COUNTER_SHARDS - 1);
            cell.set(shard);
        }
        shard
    })
}

struct CounterInner {
    name: &'static str,
    help: &'static str,
    shards: [PaddedSlot; COUNTER_SHARDS],
}

/// A monotonically increasing counter. Increments are wait-free and
/// relaxed; [`Counter::value`] sums the shards.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    fn new(name: &'static str, help: &'static str) -> Self {
        Counter {
            inner: Arc::new(CounterInner {
                name,
                help,
                shards: std::array::from_fn(|_| PaddedSlot::default()),
            }),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// The registered help text.
    pub fn help(&self) -> &'static str {
        self.inner.help
    }

    /// Adds `n` to the counter (wait-free, relaxed ordering).
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total over all shards.
    pub fn value(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|slot| slot.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("name", &self.name())
            .field("value", &self.value())
            .finish()
    }
}

struct GaugeInner {
    name: &'static str,
    help: &'static str,
    /// The gauge's `f64` value, stored as its bit pattern.
    bits: AtomicU64,
}

/// A gauge: a level that can move both ways (delta size, tombstone count,
/// last compaction duration). Stores an `f64`.
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Gauge {
    fn new(name: &'static str, help: &'static str) -> Self {
        Gauge {
            inner: Arc::new(GaugeInner {
                name,
                help,
                bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// The registered help text.
    pub fn help(&self) -> &'static str {
        self.inner.help
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.inner.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.inner.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("name", &self.name())
            .field("value", &self.value())
            .finish()
    }
}

/// One shard of a histogram: its own bucket row plus sum/count, padded so
/// concurrent recorders on different shards never share a cache line.
#[repr(align(64))]
struct HistogramShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        HistogramShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

struct HistogramInner {
    name: &'static str,
    help: &'static str,
    shards: [HistogramShard; COUNTER_SHARDS],
}

/// A latency histogram over the fixed log-spaced [`HISTOGRAM_BOUNDS`]
/// buckets. Records are wait-free: one `fetch_add` on the bucket, sum and
/// count of the calling thread's shard.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(name: &'static str, help: &'static str) -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                name,
                help,
                shards: std::array::from_fn(|_| HistogramShard::default()),
            }),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// The registered help text.
    pub fn help(&self) -> &'static str {
        self.inner.help
    }

    /// The bucket a value falls into: the first bound with
    /// `value <= bound`, or the `+Inf` overflow bucket.
    pub fn bucket_index(value: f64) -> usize {
        HISTOGRAM_BOUNDS.partition_point(|&bound| bound < value)
    }

    /// Records one observation in seconds. Negative and non-finite values
    /// are clamped to zero (they can only come from clock anomalies).
    #[inline]
    pub fn record(&self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let shard = &self.inner.shards[shard_index()];
        shard.buckets[Self::bucket_index(seconds)].fetch_add(1, Ordering::Relaxed);
        let nanos = (seconds * 1e9).round().min(u64::MAX as f64) as u64;
        shard.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation from a [`std::time::Duration`].
    #[inline]
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(elapsed.as_secs_f64());
    }

    /// The current per-bucket counts, sum and count, folded over shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut sum_nanos = 0u64;
        let mut count = 0u64;
        for shard in &self.inner.shards {
            for (total, bucket) in buckets.iter_mut().zip(&shard.buckets) {
                *total += bucket.load(Ordering::Relaxed);
            }
            sum_nanos += shard.sum_nanos.load(Ordering::Relaxed);
            count += shard.count.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_nanos,
            count,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.name())
            .field("count", &self.snapshot().count)
            .finish()
    }
}

/// The frozen state of one histogram: per-bucket (non-cumulative) counts
/// aligned with [`HISTOGRAM_BOUNDS`] plus the overflow bucket, the sum of
/// observations in nanoseconds, and the observation count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (not cumulative); index `i` counts observations in
    /// `(bound[i-1], bound[i]]`, the last entry is the `+Inf` bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observations, in nanoseconds.
    pub sum_nanos: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The sum of observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// The cumulative bucket counts (Prometheus `le` series): entry `i` is
    /// the number of observations `<= HISTOGRAM_BOUNDS[i]`, the last entry
    /// (`+Inf`) equals [`Self::count`].
    pub fn cumulative(&self) -> Vec<u64> {
        let mut running = 0u64;
        self.buckets
            .iter()
            .map(|&b| {
                running += b;
                running
            })
            .collect()
    }

    /// This snapshot minus an earlier one, bucket-wise (saturating).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(now, before)| now.saturating_sub(*before))
                .collect(),
            sum_nanos: self.sum_nanos.saturating_sub(earlier.sum_nanos),
            count: self.count.saturating_sub(earlier.count),
        }
    }
}

/// A registry of named instruments. Registration is idempotent per name —
/// asking twice returns handles over the same shared state — so call sites
/// can lazily initialize `OnceLock` handles without coordination.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<Vec<Counter>>,
    gauges: RwLock<Vec<Gauge>>,
    histograms: RwLock<Vec<Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry. Most callers use the process-wide
    /// [`crate::global`] registry instead.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or retrieves) a counter by name.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        if let Some(existing) = self
            .counters
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .find(|c| c.name() == name)
        {
            return existing.clone();
        }
        let mut counters = self.counters.write().expect("metrics registry poisoned");
        if let Some(existing) = counters.iter().find(|c| c.name() == name) {
            return existing.clone();
        }
        let counter = Counter::new(name, help);
        counters.push(counter.clone());
        counter
    }

    /// Registers (or retrieves) a gauge by name.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        if let Some(existing) = self
            .gauges
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .find(|g| g.name() == name)
        {
            return existing.clone();
        }
        let mut gauges = self.gauges.write().expect("metrics registry poisoned");
        if let Some(existing) = gauges.iter().find(|g| g.name() == name) {
            return existing.clone();
        }
        let gauge = Gauge::new(name, help);
        gauges.push(gauge.clone());
        gauge
    }

    /// Registers (or retrieves) a histogram by name.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        if let Some(existing) = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .find(|h| h.name() == name)
        {
            return existing.clone();
        }
        let mut histograms = self.histograms.write().expect("metrics registry poisoned");
        if let Some(existing) = histograms.iter().find(|h| h.name() == name) {
            return existing.clone();
        }
        let histogram = Histogram::new(name, help);
        histograms.push(histogram.clone());
        histogram
    }

    /// Clones of every registered counter, sorted by name.
    pub fn counters(&self) -> Vec<Counter> {
        let mut counters = self
            .counters
            .read()
            .expect("metrics registry poisoned")
            .clone();
        counters.sort_by_key(|c| c.name());
        counters
    }

    /// Clones of every registered gauge, sorted by name.
    pub fn gauges(&self) -> Vec<Gauge> {
        let mut gauges = self
            .gauges
            .read()
            .expect("metrics registry poisoned")
            .clone();
        gauges.sort_by_key(|g| g.name());
        gauges
    }

    /// Clones of every registered histogram, sorted by name.
    pub fn histograms(&self) -> Vec<Histogram> {
        let mut histograms = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .clone();
        histograms.sort_by_key(|h| h.name());
        histograms
    }

    /// Freezes the current value of every instrument (plus the global trace
    /// buffer's recorded/dropped totals) into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters()
            .into_iter()
            .map(|c| (c.name(), c.value()))
            .collect();
        let gauges = self
            .gauges()
            .into_iter()
            .map(|g| (g.name(), g.value()))
            .collect();
        let histograms = self
            .histograms()
            .into_iter()
            .map(|h| (h.name(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            traces_recorded: crate::traces().recorded(),
            traces_dropped: crate::traces().dropped(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters().len())
            .field("gauges", &self.gauges().len())
            .field("histograms", &self.histograms().len())
            .finish()
    }
}

/// A frozen view of a [`MetricsRegistry`]: plain maps from metric name to
/// value, comparable and subtractable — the unit tests' and benches' way to
/// assert on exactly the increments one operation produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, HistogramSnapshot>,
    /// Total events ever pushed at the global trace buffer.
    pub traces_recorded: u64,
    /// Events the global trace buffer dropped (overwritten or lapped).
    pub traces_dropped: u64,
}

impl Snapshot {
    /// A counter's value; 0 when the counter was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value; 0 when the gauge was never registered.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// A histogram's frozen state, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Iterates `(name, value)` over all counters.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &value)| (name, value))
    }

    /// Iterates `(name, value)` over all gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&name, &value)| (name, value))
    }

    /// Iterates `(name, state)` over all histograms.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &HistogramSnapshot)> + '_ {
        self.histograms.iter().map(|(&name, h)| (name, h))
    }

    /// This snapshot minus an `earlier` one: counters and histograms
    /// subtract (saturating), gauges keep this snapshot's level (a gauge
    /// difference is rarely meaningful). Instruments registered only in
    /// this snapshot keep their value; ones only in `earlier` are omitted.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| (name, value.saturating_sub(earlier.counter(name))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(&name, h)| {
                    let before = earlier.histogram(name).cloned().unwrap_or_default();
                    (name, h.delta(&before))
                })
                .collect(),
            traces_recorded: self.traces_recorded.saturating_sub(earlier.traces_recorded),
            traces_dropped: self.traces_dropped.saturating_sub(earlier.traces_dropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_idempotently_and_sum_shards() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("test_total", "help");
        let b = registry.counter("test_total", "other help ignored");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        assert_eq!(registry.counters().len(), 1);
        assert_eq!(a.help(), "help");
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        // N threads × M increments must sum exactly: sharding may never
        // lose an update.
        let registry = MetricsRegistry::new();
        let counter = registry.counter("concurrent_total", "");
        let histogram = registry.histogram("concurrent_seconds", "");
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..PER_THREAD {
                        counter.add(1);
                        if i % 100 == 0 {
                            histogram.record(1e-6);
                        }
                    }
                });
            }
        });
        assert_eq!(counter.value(), (THREADS * PER_THREAD) as u64);
        let h = histogram.snapshot();
        assert_eq!(h.count, (THREADS * (PER_THREAD / 100)) as u64);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_and_exact() {
        // A value landing exactly on every boundary must count in that
        // boundary's own bucket (`le` is inclusive), zero lands in the
        // first bucket, and values above the last bound land in `+Inf`.
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("bounds_seconds", "");
        for (i, &bound) in HISTOGRAM_BOUNDS.iter().enumerate() {
            assert_eq!(
                Histogram::bucket_index(bound),
                i,
                "bound {bound} shifted buckets"
            );
            histogram.record(bound);
        }
        histogram.record(0.0);
        histogram.record(11.0);
        histogram.record(f64::INFINITY); // clamped to zero
        let snap = histogram.snapshot();
        assert_eq!(snap.count, HISTOGRAM_BOUNDS.len() as u64 + 3);
        assert_eq!(
            snap.buckets[0], 3,
            "boundary 100ns + zero + clamped non-finite"
        );
        for i in 1..HISTOGRAM_BOUNDS.len() {
            assert_eq!(
                snap.buckets[i], 1,
                "bucket {i} must hold exactly its own boundary"
            );
        }
        assert_eq!(
            snap.buckets[HISTOGRAM_BUCKETS - 1],
            1,
            "11 s must overflow to +Inf"
        );
        // Just above and below a boundary split into neighbouring buckets.
        assert_eq!(Histogram::bucket_index(1.6e-6 + 1e-12), 5);
        assert_eq!(Histogram::bucket_index(1.6e-6 - 1e-12), 4);
    }

    #[test]
    fn snapshots_delta_counters_and_histograms() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("delta_total", "");
        let gauge = registry.gauge("delta_gauge", "");
        let histogram = registry.histogram("delta_seconds", "");
        counter.add(5);
        gauge.set(2.5);
        histogram.record(1e-3);
        let before = registry.snapshot();
        counter.add(7);
        gauge.set(9.0);
        histogram.record(1e-3);
        histogram.record(5.0);
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter("delta_total"), 7);
        assert_eq!(
            delta.gauge("delta_gauge"),
            9.0,
            "gauges keep the newer level"
        );
        let h = delta.histogram("delta_seconds").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.cumulative().last().copied(), Some(2));
        assert_eq!(delta.counter("never_registered"), 0);
    }

    #[test]
    fn gauges_store_floats() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("float_gauge", "");
        assert_eq!(gauge.value(), 0.0);
        gauge.set(-3.25);
        assert_eq!(gauge.value(), -3.25);
    }
}
