//! # gbd-telemetry — runtime observability for the GBDA workspace
//!
//! A dependency-free (std-only) telemetry substrate shared by every layer
//! of the workspace: the scan kernel and planner, the posterior cache, the
//! dynamic storage layer and the crash-safe durability path all report
//! into one process-wide [`MetricsRegistry`] and one [`TraceBuffer`].
//!
//! Three primitives:
//!
//! * **Metrics** — named [`Counter`]s, [`Gauge`]s and log-bucketed latency
//!   [`Histogram`]s (fixed ~2×-spaced buckets from 100 ns to 10 s). All
//!   increments are wait-free `fetch_add`s on thread-sharded,
//!   cache-line-padded atomics, so the `QueryEngine`'s scan shards never
//!   contend.
//! * **Traces** — [`Span`] guards ([`span!`]`("scan.stage3")`-style)
//!   recording start/duration plus structured `key = value` events into a
//!   lock-free fixed-capacity ring ([`TraceBuffer`]) that overwrites the
//!   oldest entries and counts drops, so tracing is safe to leave on.
//! * **Exposition** — [`MetricsRegistry::render_prometheus`] (text format
//!   with `# HELP`/`# TYPE` and `_bucket`/`_sum`/`_count` series) and
//!   [`MetricsRegistry::render_json`], plus the [`Snapshot`] / delta API
//!   tests and benches assert exact increments with.
//!
//! The whole layer is gated by a process-wide [`TelemetryLevel`] under an
//! **escalate-or-explicit-set** contract: engine construction applies
//! `GbdaConfig::telemetry` via [`escalate_level`] (monotone — it can raise
//! the level but never silently lower what another engine in the process
//! asked for), while [`set_level`] is the explicit override that also
//! lowers. [`TelemetryLevel::Off`] reduces every instrumentation site to
//! one relaxed atomic load and a predictable branch; the default
//! [`TelemetryLevel::Metrics`] records metrics only;
//! [`TelemetryLevel::MetricsAndTraces`] additionally arms spans.
//!
//! ```
//! use gbd_telemetry::{global, span, set_level, TelemetryLevel};
//!
//! set_level(TelemetryLevel::MetricsAndTraces);
//! let scans = global().counter("doc_scans_total", "Scans run by the doc test.");
//! let latency = global().histogram("doc_scan_seconds", "Doc-test scan latency.");
//!
//! let before = global().snapshot();
//! {
//!     let _span = span!("doc.scan");
//!     scans.inc();
//!     latency.record(250e-9);
//! }
//! let delta = global().snapshot().delta(&before);
//! assert_eq!(delta.counter("doc_scans_total"), 1);
//! assert_eq!(delta.histogram("doc_scan_seconds").unwrap().count, 1);
//! assert!(global().render_prometheus().contains("doc_scans_total"));
//! set_level(TelemetryLevel::Metrics);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod expose;
mod registry;
mod trace;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot, COUNTER_SHARDS,
    HISTOGRAM_BOUNDS, HISTOGRAM_BUCKETS,
};
pub use trace::{now_ns, trace_event, Span, TraceBuffer, TraceEvent, TraceKind};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How much the telemetry layer records, process-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum TelemetryLevel {
    /// Record nothing. Every instrumentation site compiles down to one
    /// relaxed atomic load and a predictable branch.
    Off = 0,
    /// Record counters, gauges and histograms (the default).
    #[default]
    Metrics = 1,
    /// Additionally arm [`Span`] guards and structured trace events.
    MetricsAndTraces = 2,
}

impl TelemetryLevel {
    /// The level's canonical name (`"off"` / `"metrics"` /
    /// `"metrics_and_traces"`).
    pub fn name(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Metrics => "metrics",
            TelemetryLevel::MetricsAndTraces => "metrics_and_traces",
        }
    }
}

/// The process-wide level; defaults to [`TelemetryLevel::Metrics`].
static LEVEL: AtomicU8 = AtomicU8::new(TelemetryLevel::Metrics as u8);

/// Sets the process-wide telemetry level.
///
/// This is the *explicit* override: it lowers as well as raises, and it is
/// the only way to lower. Code that merely *requires* a level — engine
/// construction applying `GbdaConfig::telemetry`, for instance — must use
/// [`escalate_level`] instead, so that building one component can never
/// silently stop another component's recording.
pub fn set_level(level: TelemetryLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Raises the process-wide telemetry level to at least `level`; never
/// lowers it. Returns the level in effect afterwards.
///
/// This is the escalate half of the escalate-or-explicit-set contract: a
/// component that wants recording calls this with the level it needs, and
/// concurrent callers compose monotonically (one atomic `fetch_max`, no
/// read-modify-write race). Lowering — e.g. turning telemetry off for a
/// benchmark — stays an explicit, deliberate [`set_level`] call.
pub fn escalate_level(level: TelemetryLevel) -> TelemetryLevel {
    let previous = LEVEL.fetch_max(level as u8, Ordering::Relaxed);
    match previous.max(level as u8) {
        0 => TelemetryLevel::Off,
        1 => TelemetryLevel::Metrics,
        _ => TelemetryLevel::MetricsAndTraces,
    }
}

/// The current process-wide telemetry level.
pub fn level() -> TelemetryLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => TelemetryLevel::Off,
        1 => TelemetryLevel::Metrics,
        _ => TelemetryLevel::MetricsAndTraces,
    }
}

/// `true` when metrics are recorded (level ≥ [`TelemetryLevel::Metrics`]).
/// Instrumentation sites branch on this before touching any instrument.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= TelemetryLevel::Metrics as u8
}

/// `true` when spans and trace events are recorded
/// (level = [`TelemetryLevel::MetricsAndTraces`]).
#[inline(always)]
pub fn traces_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= TelemetryLevel::MetricsAndTraces as u8
}

/// Capacity of the global trace ring: enough for the spans and events of
/// many queries between scrapes without unbounded memory.
const GLOBAL_TRACE_CAPACITY: usize = 4096;

/// The process-wide metrics registry every workspace crate reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// The process-wide trace ring [`Span`]s and [`trace_event`]s record into.
pub fn traces() -> &'static TraceBuffer {
    static TRACES: OnceLock<TraceBuffer> = OnceLock::new();
    TRACES.get_or_init(|| TraceBuffer::with_capacity(GLOBAL_TRACE_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gates_metrics_and_traces() {
        // One test owns the global level end-to-end so parallel tests in
        // this binary never race on it (the others leave it alone).
        set_level(TelemetryLevel::Off);
        assert!(!metrics_enabled());
        assert!(!traces_enabled());
        assert_eq!(level(), TelemetryLevel::Off);
        {
            let span = Span::enter("test.unarmed");
            span.event("ignored", 1);
        }
        let recorded_while_off = traces().recorded();

        set_level(TelemetryLevel::Metrics);
        assert!(metrics_enabled());
        assert!(!traces_enabled());
        assert_eq!(
            traces().recorded(),
            recorded_while_off,
            "no traces below MetricsAndTraces"
        );

        set_level(TelemetryLevel::MetricsAndTraces);
        assert!(traces_enabled());
        {
            let span = span!("test.armed");
            span.event("step", 7);
        }
        trace_event("test.free", "value", 9);
        assert!(traces().recorded() >= recorded_while_off + 3);

        set_level(TelemetryLevel::Metrics);
        assert_eq!(level(), TelemetryLevel::Metrics);
        assert_eq!(TelemetryLevel::default(), TelemetryLevel::Metrics);

        // Escalation is monotone: it raises but never lowers — lowering
        // stays an explicit `set_level` call.
        assert_eq!(
            escalate_level(TelemetryLevel::Off),
            TelemetryLevel::Metrics,
            "escalating to a lower level is a no-op"
        );
        assert_eq!(level(), TelemetryLevel::Metrics);
        assert_eq!(
            escalate_level(TelemetryLevel::MetricsAndTraces),
            TelemetryLevel::MetricsAndTraces,
            "escalating above the current level raises it"
        );
        assert_eq!(level(), TelemetryLevel::MetricsAndTraces);
        set_level(TelemetryLevel::Metrics);
    }

    #[test]
    fn level_names_are_stable() {
        assert_eq!(TelemetryLevel::Off.name(), "off");
        assert_eq!(TelemetryLevel::Metrics.name(), "metrics");
        assert_eq!(
            TelemetryLevel::MetricsAndTraces.name(),
            "metrics_and_traces"
        );
    }

    #[test]
    fn global_registry_and_traces_are_singletons() {
        let a = global() as *const _;
        let b = global() as *const _;
        assert_eq!(a, b);
        assert_eq!(traces().capacity(), GLOBAL_TRACE_CAPACITY);
    }
}
