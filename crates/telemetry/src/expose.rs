//! Exposition surfaces: the Prometheus text format and a JSON rendering
//! compatible with the workspace's benchmark artefacts.

use std::fmt::Write as _;

use crate::registry::{MetricsRegistry, HISTOGRAM_BOUNDS};

/// Formats an `f64` the way both exposition surfaces need it: shortest
/// round-trip decimal, with non-finite values clamped to 0 (JSON has no
/// NaN/Inf and our instruments never legitimately produce them).
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_owned()
    }
}

/// Escapes a string for a JSON string literal (instrument names are plain
/// identifiers, but the renderer must not rely on that).
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsRegistry {
    /// Renders every instrument in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, one sample line per counter and gauge,
    /// and the `_bucket{le="…"}` (cumulative) / `_sum` / `_count` series
    /// per histogram, all sorted by metric name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for counter in self.counters() {
            let name = counter.name();
            let _ = writeln!(out, "# HELP {name} {}", counter.help());
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.value());
        }
        for gauge in self.gauges() {
            let name = gauge.name();
            let _ = writeln!(out, "# HELP {name} {}", gauge.help());
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", number(gauge.value()));
        }
        for histogram in self.histograms() {
            let name = histogram.name();
            let snap = histogram.snapshot();
            let _ = writeln!(out, "# HELP {name} {}", histogram.help());
            let _ = writeln!(out, "# TYPE {name} histogram");
            let cumulative = snap.cumulative();
            for (&bound, &count) in HISTOGRAM_BOUNDS.iter().zip(&cumulative) {
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {count}", number(bound));
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
            let _ = writeln!(out, "{name}_sum {}", number(snap.sum_seconds()));
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
        out
    }

    /// Renders every instrument as pretty-printed JSON (the same dialect
    /// as the committed `results/BENCH_*.json` artefacts: objects, arrays,
    /// finite numbers), so bench runs can drop a telemetry snapshot next
    /// to their results files.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"level\": \"{}\",", crate::level().name());

        out.push_str("  \"counters\": {");
        let counters = self.counters();
        for (i, counter) in counters.iter().enumerate() {
            let comma = if i + 1 < counters.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {}{comma}",
                json_escape(counter.name()),
                counter.value()
            );
        }
        out.push_str(if counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"gauges\": {");
        let gauges = self.gauges();
        for (i, gauge) in gauges.iter().enumerate() {
            let comma = if i + 1 < gauges.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {}{comma}",
                json_escape(gauge.name()),
                number(gauge.value())
            );
        }
        out.push_str(if gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        let histograms = self.histograms();
        for (i, histogram) in histograms.iter().enumerate() {
            let snap = histogram.snapshot();
            let _ = write!(
                out,
                "\n    \"{}\": {{\n      \"count\": {},\n      \"sum_seconds\": {},\n      \"buckets\": [",
                json_escape(histogram.name()),
                snap.count,
                number(snap.sum_seconds())
            );
            let cumulative = snap.cumulative();
            for (j, (&bound, &count)) in HISTOGRAM_BOUNDS.iter().zip(&cumulative).enumerate() {
                let comma = if j + 1 < HISTOGRAM_BOUNDS.len() {
                    ","
                } else {
                    ""
                };
                let _ = write!(
                    out,
                    "\n        {{ \"le\": {}, \"cumulative\": {count} }}{comma}",
                    number(bound)
                );
            }
            let comma = if i + 1 < histograms.len() { "," } else { "" };
            let _ = write!(out, "\n      ]\n    }}{comma}");
        }
        out.push_str(if histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        let traces = crate::traces();
        let _ = write!(
            out,
            "  \"traces\": {{\n    \"recorded\": {},\n    \"dropped\": {}\n  }}\n}}\n",
            traces.recorded(),
            traces.dropped()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry.counter("demo_total", "A demo counter.").add(7);
        registry.gauge("demo_gauge", "A demo gauge.").set(1.5);
        let h = registry.histogram("demo_seconds", "A demo histogram.");
        h.record(1e-7);
        h.record(3e-3);
        h.record(42.0);
        registry
    }

    #[test]
    fn prometheus_rendering_has_headers_and_consistent_series() {
        let text = populated_registry().render_prometheus();
        assert!(text.contains("# HELP demo_total A demo counter.\n"));
        assert!(text.contains("# TYPE demo_total counter\ndemo_total 7\n"));
        assert!(text.contains("# TYPE demo_gauge gauge\ndemo_gauge 1.5\n"));
        assert!(text.contains("# TYPE demo_seconds histogram\n"));
        assert!(text.contains("demo_seconds_bucket{le=\"0.0000001\"} 1\n"));
        assert!(text.contains("demo_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("demo_seconds_count 3\n"));
        // Cumulative buckets are monotone non-decreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("demo_seconds_bucket"))
        {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "bucket counts must be cumulative: {line}");
            last = count;
        }
        assert_eq!(last, 3);
    }

    #[test]
    fn json_rendering_is_structurally_sound() {
        let text = populated_registry().render_json();
        assert!(text.contains("\"demo_total\": 7"));
        assert!(text.contains("\"demo_gauge\": 1.5"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"traces\""));
        // Balanced braces/brackets and no trailing commas before closers.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(
            !text.contains(",\n  }") || text.contains("},\n"),
            "no dangling commas"
        );
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.render_prometheus(), "");
        let json = registry.render_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn json_escaping_covers_the_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
