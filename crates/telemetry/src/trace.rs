//! Per-query span tracing: [`Span`] guard objects and the lock-free
//! fixed-capacity [`TraceBuffer`] ring they record into.
//!
//! Tracing is designed to be safe to leave enabled: pushes are lock-free
//! (one `fetch_add` for a ticket plus one uncontended flag swap), the ring
//! keeps the most recent `capacity` events, and everything older — or
//! pushed while its slot is busy — is counted in
//! [`TraceBuffer::dropped`] instead of blocking or allocating.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What one [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A completed span: `start_ns`/`duration_ns` bracket the guarded
    /// scope.
    Span,
    /// A point-in-time structured `key = value` event.
    Event,
}

/// One recorded trace entry. `Copy` so ring slots hand out torn-free
/// copies under a per-slot claim flag without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or event name (`"scan.stage3"`-style dotted path).
    pub name: &'static str,
    /// Span end or structured event.
    pub kind: TraceKind,
    /// Structured event key; empty for plain span ends.
    pub key: &'static str,
    /// Structured event value; 0 for plain span ends.
    pub value: u64,
    /// Nanoseconds since the process's trace epoch at which the span
    /// started (or the event fired).
    pub start_ns: u64,
    /// Span duration in nanoseconds; 0 for point events.
    pub duration_ns: u64,
}

impl TraceEvent {
    const EMPTY: TraceEvent = TraceEvent {
        name: "",
        kind: TraceKind::Event,
        key: "",
        value: 0,
        start_ns: 0,
        duration_ns: 0,
    };
}

/// Nanoseconds since the first telemetry timestamp this process took — the
/// time base of every [`TraceEvent`].
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One ring slot: a claim flag serializing writers (a writer that finds
/// the slot busy drops its event rather than spin), the ticket of the
/// event currently stored (`u64::MAX` = never written), and the payload.
struct Slot {
    busy: AtomicBool,
    ticket: AtomicU64,
    data: UnsafeCell<TraceEvent>,
}

// SAFETY: `data` is only accessed while the accessor holds the `busy`
// flag (acquired with a swap, released with a store), so there is never a
// concurrent read or write of the cell.
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            busy: AtomicBool::new(false),
            ticket: AtomicU64::new(u64::MAX),
            data: UnsafeCell::new(TraceEvent::EMPTY),
        }
    }
}

/// A lock-free fixed-capacity ring of [`TraceEvent`]s keeping the most
/// recent `capacity` entries. Every push takes a monotone ticket; once the
/// ring has wrapped, each push overwrites the oldest entry and counts it
/// as dropped, so `recorded = kept + dropped` always holds.
pub struct TraceBuffer {
    slots: Box<[Slot]>,
    next: AtomicU64,
    dropped: AtomicU64,
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of events kept.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes one event, overwriting (and drop-counting) the oldest once
    /// the ring is full. Lock-free: a writer that catches a slot mid-write
    /// (only possible when producers lap the whole ring) drops its own
    /// event instead of waiting.
    pub fn push(&self, event: TraceEvent) {
        let capacity = self.slots.len() as u64;
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % capacity) as usize];
        if slot.busy.swap(true, Ordering::Acquire) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if ticket >= capacity {
            // The ring wrapped: this write evicts the event `capacity`
            // tickets older.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: the busy flag was clear, so this thread is the only
        // accessor of the cell until the release store below.
        unsafe { *slot.data.get() = event };
        slot.ticket.store(ticket, Ordering::Relaxed);
        slot.busy.store(false, Ordering::Release);
    }

    /// Total events ever pushed (kept + dropped).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events lost to wraparound (overwritten) or to catching a slot
    /// mid-write.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events().len()
    }

    /// `true` when no event has been kept.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the current contents, oldest first. Slots caught
    /// mid-write are skipped (their event is still in flight).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut tagged: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            if slot.busy.swap(true, Ordering::Acquire) {
                continue;
            }
            let ticket = slot.ticket.load(Ordering::Relaxed);
            // SAFETY: this thread holds the busy flag (see `Slot`).
            let event = unsafe { *slot.data.get() };
            slot.busy.store(false, Ordering::Release);
            if ticket != u64::MAX {
                tagged.push((ticket, event));
            }
        }
        tagged.sort_by_key(|(ticket, _)| *ticket);
        tagged.into_iter().map(|(_, event)| event).collect()
    }

    /// Empties the ring and resets the recorded/dropped totals.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            if slot.busy.swap(true, Ordering::Acquire) {
                continue;
            }
            slot.ticket.store(u64::MAX, Ordering::Relaxed);
            slot.busy.store(false, Ordering::Release);
        }
        self.next.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// A scope guard timing one named region. Created by [`Span::enter`] (or
/// the [`span!`](crate::span) macro); on drop it records a
/// [`TraceKind::Span`] event with the scope's duration into the global
/// trace buffer — but only when the telemetry level enables traces, so an
/// unarmed span costs one relaxed load and nothing on drop.
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    armed: bool,
}

impl Span {
    /// Opens a span. The span is armed only when the current
    /// [`crate::TelemetryLevel`] records traces.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !crate::traces_enabled() {
            return Span {
                name,
                start_ns: 0,
                armed: false,
            };
        }
        Span {
            name,
            start_ns: now_ns(),
            armed: true,
        }
    }

    /// Records a structured `key = value` event under this span's name at
    /// the current instant (no-op on an unarmed span).
    pub fn event(&self, key: &'static str, value: u64) {
        if self.armed {
            crate::traces().push(TraceEvent {
                name: self.name,
                kind: TraceKind::Event,
                key,
                value,
                start_ns: now_ns(),
                duration_ns: 0,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            let end = now_ns();
            crate::traces().push(TraceEvent {
                name: self.name,
                kind: TraceKind::Span,
                key: "",
                value: 0,
                start_ns: self.start_ns,
                duration_ns: end.saturating_sub(self.start_ns),
            });
        }
    }
}

/// Records a free-standing structured `key = value` event (no-op unless
/// the telemetry level records traces).
#[inline]
pub fn trace_event(name: &'static str, key: &'static str, value: u64) {
    if crate::traces_enabled() {
        crate::traces().push(TraceEvent {
            name,
            kind: TraceKind::Event,
            key,
            value,
            start_ns: now_ns(),
            duration_ns: 0,
        });
    }
}

/// Opens a [`Span`] guard: `let _guard = span!("scan.stage3");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_the_latest_and_counts_drops() {
        let ring = TraceBuffer::with_capacity(8);
        for i in 0..11u64 {
            ring.push(TraceEvent {
                name: "wrap",
                kind: TraceKind::Event,
                key: "i",
                value: i,
                start_ns: i,
                duration_ns: 0,
            });
        }
        assert_eq!(ring.recorded(), 11);
        assert_eq!(ring.dropped(), 3, "three oldest events were overwritten");
        let events = ring.events();
        assert_eq!(events.len(), 8);
        assert_eq!(ring.len(), 8);
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(
            values,
            (3..11).collect::<Vec<u64>>(),
            "oldest-first, latest kept"
        );
        assert_eq!(ring.recorded(), ring.len() as u64 + ring.dropped());
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 0);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let ring = TraceBuffer::with_capacity(4);
        ring.push(TraceEvent::EMPTY);
        ring.push(TraceEvent::EMPTY);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn concurrent_pushes_account_for_every_event() {
        let ring = TraceBuffer::with_capacity(64);
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 1000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..PER_THREAD {
                        ring.push(TraceEvent {
                            value: i,
                            ..TraceEvent::EMPTY
                        });
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), THREADS * PER_THREAD);
        // kept + dropped covers every push, whether overwritten or lapped.
        assert_eq!(ring.len() as u64 + ring.dropped(), THREADS * PER_THREAD);
    }

    #[test]
    fn bucket_of_time_is_monotone() {
        assert!(now_ns() <= now_ns());
    }
}
