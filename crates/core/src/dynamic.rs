//! The dynamic layer of the storage engine: [`DynamicDatabase`] and
//! [`DynamicEngine`].
//!
//! [`crate::GraphDatabase`] is immutable by design — its arena, aggregates
//! and CSR postings are sealed at construction, which is exactly what makes
//! the scan fast. Production workloads also need *inserts* and *deletes*
//! without a stop-the-world rebuild, so the dynamic layer follows the
//! classic LSM shape:
//!
//! * an immutable **base segment** (a plain [`GraphDatabase`], possibly
//!   loaded from a snapshot file),
//! * an append-only **delta segment** holding inserted graphs with the same
//!   per-graph structures (flat interned runs, aggregates, a small inverted
//!   index), so delta graphs go through the same filter cascade as base
//!   graphs,
//! * **tombstone bitsets** marking removed graphs in either segment,
//! * a growing [`BranchCatalog`] whose ids extend the base catalog — base
//!   ids are a strict prefix, so one query flattening serves both segments.
//!
//! [`DynamicDatabase::compact`] folds delta and tombstones into a fresh base
//! segment; afterwards the database is structurally identical to
//! [`GraphDatabase::with_alphabets`] over the surviving graphs. At *any*
//! point — compacted or not — [`DynamicEngine`] returns bit-identical
//! matches and posteriors to a [`crate::QueryEngine`] over a freshly built
//! database of the survivors (given the same [`OfflineIndex`]), for every
//! variant and cascade mode; the equivalence proptests in the workspace
//! exercise random insert/remove/compact interleavings.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use gbd_graph::{
    BranchCatalog, BranchMultiset, BranchRun, FlatBranchSet, FlatBranchView, Graph, LabelAlphabets,
};

use crate::config::{GbdaConfig, GbdaVariant};
use crate::database::{BucketRun, GraphAggregate, GraphDatabase, Posting};
use crate::error::{EngineError, EngineResult};
use crate::filter::planner::{Planner, QueryPlan};
use crate::filter::{
    compute_rank_decision, compute_size_decision, RankDecision, SegmentIndex, SizeDecision,
};
use crate::kernel::{CollectAll, ScanKernel, StaticPhi, Subscriber, TighteningRank, TopKSink};
use crate::offline::OfflineIndex;
use crate::posterior_cache::PosteriorCache;
use crate::search::SearchStats;
use crate::topk::DynamicTopKOutcome;

/// A fixed-universe bitset marking removed graphs of one segment.
///
/// Slots are appended unset (a new graph is alive) and can only flip from
/// alive to tombstoned — removal is monotone until a compaction resets the
/// segment.
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    words: Vec<u64>,
    len: usize,
    set: usize,
}

impl Tombstones {
    /// An all-alive bitset over `len` slots.
    pub fn new(len: usize) -> Self {
        Tombstones {
            words: vec![0; len.div_ceil(64)],
            len,
            set: 0,
        }
    }

    /// Number of slots tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no slots are tracked at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tombstoned slots.
    pub fn set_count(&self) -> usize {
        self.set
    }

    /// Whether slot `i` is tombstoned.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Appends one alive slot.
    fn push_alive(&mut self) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
    }

    /// Tombstones slot `i`; returns `false` when it already was.
    fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask != 0 {
            return false;
        }
        self.words[i / 64] |= mask;
        self.set += 1;
        true
    }
}

/// The append-only delta segment: inserted graphs with the same per-graph
/// structures as the base [`GraphDatabase`] — flat interned runs in a
/// contiguous arena, scan aggregates, and a small inverted index — so the
/// filter cascade prunes delta graphs exactly like base graphs.
#[derive(Debug, Clone, Default)]
pub struct DeltaSegment {
    graphs: Vec<Graph>,
    arena: Vec<BranchRun>,
    spans: Vec<(u32, u32)>,
    /// One packed [`GraphAggregate`] per graph — the same cache-line-conscious
    /// scan layout as the base segment, so the chunked bound sweep reads one
    /// contiguous stream here too.
    aggregates: Vec<GraphAggregate>,
    /// Distinct vertex counts in first-seen order; each aggregate's `bucket`
    /// indexes its vertex count here so per-size cutoff tables are shared.
    distinct_sizes: Vec<usize>,
    /// Maximal constant-bucket index intervals over `aggregates`, maintained
    /// incrementally on append for the kernel's interval stage-1 sweep.
    bucket_runs: Vec<BucketRun>,
    /// Branch id → postings, sorted by delta-local graph index (appends
    /// arrive in insertion order, so sortedness is free).
    postings: HashMap<u32, Vec<Posting>>,
}

impl DeltaSegment {
    /// Number of graphs in the delta (tombstoned ones included).
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Returns `true` when nothing has been inserted since the last
    /// compaction.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The `i`-th delta graph.
    pub fn graph(&self, i: usize) -> &Graph {
        &self.graphs[i]
    }

    /// Total `(id, count)` runs stored in the delta arena.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Appends one graph whose runs are already flattened against the
    /// owning database's catalog.
    fn push(&mut self, graph: Graph, flat: &FlatBranchSet) {
        let delta_index = self.graphs.len() as u32;
        let start = u32::try_from(self.arena.len()).expect("fewer than 2^32 delta runs");
        let runs = flat.runs();
        self.arena.extend_from_slice(runs);
        self.spans.push((start, runs.len() as u32));
        let size = graph.vertex_count();
        let bucket = self
            .distinct_sizes
            .iter()
            .position(|&s| s == size)
            .unwrap_or_else(|| {
                self.distinct_sizes.push(size);
                self.distinct_sizes.len() - 1
            });
        self.aggregates.push(GraphAggregate {
            size: size as u32,
            bucket: bucket as u32,
            runs: runs.len() as u32,
            max_run: runs.iter().map(|r| r.count).max().unwrap_or(0),
        });
        match self.bucket_runs.last_mut() {
            Some(run) if run.bucket == bucket as u32 => run.end = delta_index + 1,
            _ => self.bucket_runs.push(BucketRun {
                end: delta_index + 1,
                bucket: bucket as u32,
            }),
        }
        for run in runs {
            self.postings.entry(run.id).or_default().push(Posting {
                graph: delta_index,
                count: run.count,
            });
        }
        self.graphs.push(graph);
    }
}

impl SegmentIndex for DeltaSegment {
    fn aggregates(&self) -> &[GraphAggregate] {
        &self.aggregates
    }

    fn bucket_runs(&self) -> &[BucketRun] {
        &self.bucket_runs
    }

    fn distinct_sizes(&self) -> &[usize] {
        &self.distinct_sizes
    }

    fn postings_of(&self, branch_id: u32) -> &[Posting] {
        self.postings
            .get(&branch_id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn flat_view(&self, i: usize) -> FlatBranchView<'_> {
        let (start, len) = self.spans[i];
        FlatBranchView::new(
            &self.arena[start as usize..(start + len) as usize],
            self.aggregates[i].size as usize,
        )
    }
}

/// Where a live graph id currently resides.
#[derive(Debug, Clone, Copy)]
enum Location {
    Base(usize),
    Delta(usize),
}

/// A graph database that absorbs inserts and deletes without rebuilding its
/// immutable base segment. See the [module docs](self) for the layout.
///
/// Graph ids are stable `u64`s: the initial base graphs get `0..len` (their
/// base indices), every insert gets the next fresh id, and ids survive
/// [`Self::compact`].
#[derive(Debug, Clone)]
pub struct DynamicDatabase {
    /// The sealed base segment. Behind an [`Arc`] so publishing a
    /// [`crate::concurrent::Generation`] shares it instead of copying it —
    /// the base never mutates in place, it is only *replaced* by
    /// [`Self::compact`].
    base: Arc<GraphDatabase>,
    /// The base catalog plus every branch first seen by an insert; base ids
    /// are a strict prefix of this catalog's id space. Clone-on-grow: an
    /// insert whose branches are all catalogued shares the [`Arc`]; only an
    /// insert that interns a new branch clones a shared catalog first.
    catalog: Arc<BranchCatalog>,
    alphabets: LabelAlphabets,
    delta: DeltaSegment,
    base_tombstones: Tombstones,
    delta_tombstones: Tombstones,
    /// Stable ids of the base graphs by base index; replaced wholesale by
    /// [`Self::compact`], never edited, hence shareable like the base.
    base_ids: Arc<Vec<u64>>,
    delta_ids: Vec<u64>,
    locations: HashMap<u64, Location>,
    next_id: u64,
    /// Upper bound on the live maximum vertex count (never shrinks on
    /// remove; only used to cap posterior decision tables, so an
    /// overestimate costs nothing but a few extra memo entries).
    max_vertices_hint: usize,
    /// When `true`, mutations skip the per-mutation telemetry (counters
    /// *and* gauges). See [`Self::set_metrics_quiet`].
    metrics_quiet: bool,
}

impl DynamicDatabase {
    /// Wraps an immutable base segment (built by
    /// [`GraphDatabase::from_graphs`] or loaded from a snapshot).
    pub fn new(base: GraphDatabase) -> Self {
        let n = base.len();
        let base_ids: Vec<u64> = (0..n as u64).collect();
        let locations = base_ids
            .iter()
            .map(|&id| (id, Location::Base(id as usize)))
            .collect();
        DynamicDatabase {
            catalog: Arc::new(base.catalog().clone()),
            alphabets: base.alphabets(),
            max_vertices_hint: base.max_vertices(),
            base_tombstones: Tombstones::new(n),
            delta_tombstones: Tombstones::new(0),
            base_ids: Arc::new(base_ids),
            delta_ids: Vec::new(),
            locations,
            next_id: n as u64,
            delta: DeltaSegment::default(),
            base: Arc::new(base),
            metrics_quiet: false,
        }
    }

    /// Reconstructs a database around a base segment whose graphs carry
    /// pre-assigned stable ids — the replay hook of the durable storage
    /// layer, mirroring [`GraphDatabase::from_parts`]. `ids[i]` is the
    /// stable id of base graph `i` (the order [`Self::compact`] preserves),
    /// and `next_id` is where the id counter resumes, so replayed inserts
    /// re-assign exactly the ids they were originally acknowledged with.
    ///
    /// # Errors
    /// [`EngineError::CorruptDatabase`] when the id list does not match the
    /// base (wrong length, duplicates, or an id at or above `next_id`).
    pub fn with_base_ids(base: GraphDatabase, ids: Vec<u64>, next_id: u64) -> EngineResult<Self> {
        if ids.len() != base.len() {
            return Err(EngineError::CorruptDatabase {
                reason: format!("{} base ids for {} base graphs", ids.len(), base.len()),
            });
        }
        let mut locations = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            if id >= next_id {
                return Err(EngineError::CorruptDatabase {
                    reason: format!("base id {id} is not below the next id {next_id}"),
                });
            }
            if locations.insert(id, Location::Base(i)).is_some() {
                return Err(EngineError::CorruptDatabase {
                    reason: format!("duplicate base id {id}"),
                });
            }
        }
        let n = base.len();
        Ok(DynamicDatabase {
            catalog: Arc::new(base.catalog().clone()),
            alphabets: base.alphabets(),
            max_vertices_hint: base.max_vertices(),
            base_tombstones: Tombstones::new(n),
            delta_tombstones: Tombstones::new(0),
            base_ids: Arc::new(ids),
            delta_ids: Vec::new(),
            locations,
            next_id,
            delta: DeltaSegment::default(),
            base: Arc::new(base),
            metrics_quiet: false,
        })
    }

    /// The immutable base segment.
    pub fn base(&self) -> &GraphDatabase {
        &self.base
    }

    /// The stable id the next [`Self::insert`] will assign — the export hook
    /// a write-ahead log uses to record an insert's id *before* applying it.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Stable ids of the base-segment graphs by base index (tombstoned
    /// slots included) — with [`Self::next_id`], everything a checkpoint
    /// record needs to make [`Self::with_base_ids`] resume id assignment
    /// exactly where this database left off.
    pub fn base_ids(&self) -> &[u64] {
        &self.base_ids
    }

    /// The append-only delta segment.
    pub fn delta(&self) -> &DeltaSegment {
        &self.delta
    }

    /// Stable ids of the delta-segment graphs by delta index (tombstoned
    /// slots included).
    pub fn delta_ids(&self) -> &[u64] {
        &self.delta_ids
    }

    /// The tombstone bitset of the base segment.
    pub fn base_tombstones(&self) -> &Tombstones {
        &self.base_tombstones
    }

    /// The tombstone bitset of the delta segment.
    pub fn delta_tombstones(&self) -> &Tombstones {
        &self.delta_tombstones
    }

    /// The shared handle of the base segment (for generation capture).
    pub(crate) fn base_arc(&self) -> &Arc<GraphDatabase> {
        &self.base
    }

    /// The shared handle of the base id list (for generation capture).
    pub(crate) fn base_ids_arc(&self) -> &Arc<Vec<u64>> {
        &self.base_ids
    }

    /// The shared handle of the branch catalog (for generation capture).
    pub(crate) fn catalog_arc(&self) -> &Arc<BranchCatalog> {
        &self.catalog
    }

    /// The combined branch catalog (base ids first, delta-discovered ids
    /// after). Queries are flattened against this.
    pub fn catalog(&self) -> &BranchCatalog {
        &self.catalog
    }

    /// Label alphabet sizes of the probabilistic model, fixed at
    /// construction (the domain alphabet, not whatever subset the current
    /// live set happens to exercise).
    pub fn alphabets(&self) -> LabelAlphabets {
        self.alphabets
    }

    /// Number of live graphs.
    pub fn len(&self) -> usize {
        (self.base.len() - self.base_tombstones.set_count()) + self.delta.len()
            - self.delta_tombstones.set_count()
    }

    /// Returns `true` when no graph is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned graphs awaiting compaction (both segments).
    pub fn tombstone_count(&self) -> usize {
        self.base_tombstones.set_count() + self.delta_tombstones.set_count()
    }

    /// Upper bound on the live maximum vertex count.
    pub fn max_vertices_hint(&self) -> usize {
        self.max_vertices_hint
    }

    /// Silences (or re-arms) the per-mutation dynamic-layer telemetry of
    /// this database instance.
    ///
    /// Replay paths use this: recovery re-applies historical, already-
    /// acknowledged mutations, and booking those into the process-wide
    /// insert/remove/compaction counters would misreport them as fresh
    /// traffic — worse, a replay that *fails* midway would leave gauges
    /// describing a database object that is then discarded. Quiet replay
    /// records nothing; after a successful replay,
    /// [`Self::publish_metric_gauges`] resyncs the level gauges in one
    /// step. Fresh databases start loud (`quiet = false`).
    pub fn set_metrics_quiet(&mut self, quiet: bool) {
        self.metrics_quiet = quiet;
    }

    /// Re-publishes the delta/tombstone level gauges from this database's
    /// current state — the companion of [`Self::set_metrics_quiet`]: call
    /// it once after a quiet replay commits, so the gauges describe the
    /// recovered state without the replay inflating mutation counters.
    pub fn publish_metric_gauges(&self) {
        crate::obs::record_dynamic_levels(self.delta.len(), self.tombstone_count());
    }

    /// Whether `id` refers to a live graph.
    pub fn contains(&self, id: u64) -> bool {
        self.locations.contains_key(&id)
    }

    /// The live graph with the given id.
    pub fn graph(&self, id: u64) -> Option<&Graph> {
        match self.locations.get(&id)? {
            Location::Base(i) => Some(self.base.graph(*i)),
            Location::Delta(i) => Some(self.delta.graph(*i)),
        }
    }

    /// Iterates over `(id, graph)` for every live graph in **canonical
    /// order**: base graphs by base index, then delta graphs by insertion
    /// order. This is the order a compaction (and the equivalence tests'
    /// fresh rebuild) preserves.
    pub fn live_graphs(&self) -> impl Iterator<Item = (u64, &Graph)> + '_ {
        let base = (0..self.base.len())
            .filter(|&i| !self.base_tombstones.get(i))
            .map(|i| (self.base_ids[i], self.base.graph(i)));
        let delta = (0..self.delta.len())
            .filter(|&i| !self.delta_tombstones.get(i))
            .map(|i| (self.delta_ids[i], self.delta.graph(i)));
        base.chain(delta)
    }

    /// Live graph ids in canonical order.
    pub fn live_ids(&self) -> Vec<u64> {
        self.live_graphs().map(|(id, _)| id).collect()
    }

    /// Inserts a graph into the delta segment and returns its stable id.
    ///
    /// Cost is proportional to the graph itself: one branch extraction, one
    /// flatten against the shared catalog (interning unseen branches), and
    /// one postings append per distinct run — no base structure is touched.
    /// When the catalog [`Arc`] is shared with published generations, only
    /// an insert that actually interns a *new* branch clones it
    /// (clone-on-grow); inserts over known vocabulary keep sharing.
    pub fn insert(&mut self, graph: Graph) -> u64 {
        let multiset = BranchMultiset::from_graph(&graph);
        let looked_up = self.catalog.flatten_lookup(&multiset);
        let flat = if looked_up.known_len() == looked_up.len() {
            looked_up
        } else {
            Arc::make_mut(&mut self.catalog).flatten(&multiset)
        };
        let id = self.next_id;
        self.next_id += 1;
        self.max_vertices_hint = self.max_vertices_hint.max(graph.vertex_count());
        let delta_index = self.delta.len();
        self.delta.push(graph, &flat);
        self.delta_ids.push(id);
        self.delta_tombstones.push_alive();
        self.locations.insert(id, Location::Delta(delta_index));
        if !self.metrics_quiet {
            crate::obs::record_dynamic_insert(self.delta.len(), self.tombstone_count());
        }
        id
    }

    /// Removes a graph by id (a tombstone mark; storage is reclaimed by the
    /// next [`Self::compact`]).
    ///
    /// # Errors
    /// [`EngineError::UnknownGraphId`] when the id never existed or was
    /// already removed.
    pub fn remove(&mut self, id: u64) -> EngineResult<()> {
        match self.locations.remove(&id) {
            Some(Location::Base(i)) => {
                self.base_tombstones.set(i);
            }
            Some(Location::Delta(i)) => {
                self.delta_tombstones.set(i);
            }
            None => return Err(EngineError::UnknownGraphId(id)),
        }
        if !self.metrics_quiet {
            crate::obs::record_dynamic_remove(self.delta.len(), self.tombstone_count());
        }
        Ok(())
    }

    /// Folds the delta segment and all tombstones into a fresh immutable
    /// base — rebuilding arena, aggregates and CSR postings over exactly the
    /// surviving graphs — and empties the delta. Ids are preserved.
    ///
    /// Afterwards the base segment is structurally identical to
    /// [`GraphDatabase::with_alphabets`] over [`Self::live_graphs`] (same
    /// construction, same canonical order). Returns the number of surviving
    /// graphs.
    pub fn compact(&mut self) -> usize {
        let started = std::time::Instant::now();
        let _span = gbd_telemetry::span!("dynamic.compact");
        let (ids, graphs): (Vec<u64>, Vec<Graph>) = self
            .live_graphs()
            .map(|(id, graph)| (id, graph.clone()))
            .unzip();
        // The old base/catalog/id Arcs are replaced, not mutated: published
        // generations that still share them keep scanning the pre-compaction
        // state untouched.
        self.base = Arc::new(GraphDatabase::with_alphabets(graphs, self.alphabets));
        self.catalog = Arc::new(self.base.catalog().clone());
        self.base_tombstones = Tombstones::new(self.base.len());
        self.delta = DeltaSegment::default();
        self.delta_ids.clear();
        self.delta_tombstones = Tombstones::new(0);
        self.locations = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, Location::Base(i)))
            .collect();
        self.base_ids = Arc::new(ids);
        self.max_vertices_hint = self.base.max_vertices();
        if !self.metrics_quiet {
            crate::obs::record_dynamic_compact(
                started.elapsed().as_secs_f64(),
                self.delta.len(),
                self.tombstone_count(),
            );
        }
        self.base.len()
    }
}

/// Result of one dynamic search: like [`crate::SearchOutcome`], but keyed by
/// stable graph ids instead of database indices.
#[derive(Debug, Clone, Default)]
pub struct DynamicOutcome {
    /// Ids of the live graphs that were scanned, in canonical order.
    pub ids: Vec<u64>,
    /// Ids of the live graphs with `Φ ≥ γ`, in canonical order.
    pub matches: Vec<u64>,
    /// The posterior of every live graph, aligned with [`Self::ids`]
    /// (empty when [`GbdaConfig::record_posteriors`] is off).
    pub posteriors: Vec<f64>,
    /// Wall-clock seconds of the scan.
    pub seconds: f64,
    /// Per-stage counters, directly comparable with a static engine's.
    pub stats: SearchStats,
}

/// A read-only view of one segmented state of the dynamic layer: a base
/// segment and a delta segment, each under a tombstone mask, plus the
/// catalog both were flattened against.
///
/// Implemented by [`DynamicDatabase`] itself (the live, writer-owned state)
/// and by [`crate::concurrent::Generation`] (an immutable published
/// snapshot), so one scan implementation — the crate-private `ScanState`
/// — serves the
/// borrow-checked [`DynamicEngine`] and the snapshot-isolated
/// [`crate::concurrent::ConcurrentEngine`] alike. Method names carry a
/// `view_` prefix so they never shadow the richer inherent accessors.
pub trait DynamicView {
    /// The immutable base segment.
    fn view_base(&self) -> &GraphDatabase;
    /// Stable ids of the base graphs by base index (tombstoned included).
    fn view_base_ids(&self) -> &[u64];
    /// The tombstone bitset of the base segment.
    fn view_base_tombstones(&self) -> &Tombstones;
    /// The delta segment.
    fn view_delta(&self) -> &DeltaSegment;
    /// Stable ids of the delta graphs by delta index (tombstoned included).
    fn view_delta_ids(&self) -> &[u64];
    /// The tombstone bitset of the delta segment.
    fn view_delta_tombstones(&self) -> &Tombstones;
    /// The catalog queries are flattened against (base ids a strict prefix).
    fn view_catalog(&self) -> &BranchCatalog;
    /// Upper bound on the live maximum vertex count.
    fn view_max_vertices_hint(&self) -> usize;

    /// Number of live graphs in this view.
    fn view_len(&self) -> usize {
        (self.view_base().len() - self.view_base_tombstones().set_count()) + self.view_delta().len()
            - self.view_delta_tombstones().set_count()
    }

    /// Vertex counts of the live graphs in canonical order (base by index,
    /// then delta by insertion order) — the GBDA-V1 sampling population.
    fn view_live_vertex_counts(&self) -> Vec<usize> {
        let base = self.view_base();
        let delta = self.view_delta();
        (0..base.len())
            .filter(|&i| !self.view_base_tombstones().get(i))
            .map(|i| base.size_of(i))
            .chain(
                (0..delta.len())
                    .filter(|&i| !self.view_delta_tombstones().get(i))
                    .map(|i| delta.graph(i).vertex_count()),
            )
            .collect()
    }
}

impl DynamicView for DynamicDatabase {
    fn view_base(&self) -> &GraphDatabase {
        &self.base
    }

    fn view_base_ids(&self) -> &[u64] {
        &self.base_ids
    }

    fn view_base_tombstones(&self) -> &Tombstones {
        &self.base_tombstones
    }

    fn view_delta(&self) -> &DeltaSegment {
        &self.delta
    }

    fn view_delta_ids(&self) -> &[u64] {
        &self.delta_ids
    }

    fn view_delta_tombstones(&self) -> &Tombstones {
        &self.delta_tombstones
    }

    fn view_catalog(&self) -> &BranchCatalog {
        &self.catalog
    }

    fn view_max_vertices_hint(&self) -> usize {
        self.max_vertices_hint
    }
}

/// The view-independent scan machinery shared by every dynamic search
/// path: configuration, posterior memo, per-size decision tables and the
/// stage planner. [`DynamicEngine`] owns one and feeds it its borrowed
/// [`DynamicDatabase`]; [`crate::concurrent::SnapshotReader`] owns one and
/// feeds it whatever [`crate::concurrent::Generation`] a reader pinned —
/// all of its state is internally synchronized, so concurrent searches
/// over *different* generations share the memos safely.
///
/// Decision tables are keyed by `(extended_size, cap)` because the
/// vertex-count cap can grow from one generation to the next; for a fixed
/// view (the [`DynamicEngine`] case) the cap is constant and the extra key
/// component is inert.
pub(crate) struct ScanState {
    pub(crate) config: GbdaConfig,
    cache: PosteriorCache,
    decisions: RwLock<HashMap<(usize, u64), SizeDecision>>,
    rank_decisions: RwLock<HashMap<(usize, u64), Arc<RankDecision>>>,
    /// The per-query stage planner, consulted separately for each segment
    /// (a big base and a small delta usually deserve different schedules);
    /// bypassed under [`GbdaConfig::force_fixed_pipeline`].
    planner: Planner,
}

impl ScanState {
    pub(crate) fn new(config: GbdaConfig) -> Self {
        ScanState {
            cache: PosteriorCache::new(config.tau_hat),
            decisions: RwLock::new(HashMap::new()),
            rank_decisions: RwLock::new(HashMap::new()),
            planner: Planner::new(),
            config,
        }
    }

    fn size_decision(&self, index: &OfflineIndex, extended_size: usize, cap: u64) -> SizeDecision {
        if let Some(&decision) = self.decisions.read().get(&(extended_size, cap)) {
            return decision;
        }
        let decision =
            compute_size_decision(&self.cache, index, self.config.gamma, extended_size, cap);
        self.decisions
            .write()
            .insert((extended_size, cap), decision);
        decision
    }

    /// The ranked-scan counterpart of [`Self::size_decision`]: the posterior
    /// suffix-maximum table for one extended size, capped by the view's
    /// vertex-count hint (an overestimated cap costs only memo entries,
    /// never correctness).
    fn rank_decision(
        &self,
        index: &OfflineIndex,
        extended_size: usize,
        cap: u64,
    ) -> Arc<RankDecision> {
        if let Some(decision) = self.rank_decisions.read().get(&(extended_size, cap)) {
            return Arc::clone(decision);
        }
        let decision = Arc::new(compute_rank_decision(
            &self.cache,
            index,
            extended_size,
            cap,
        ));
        Arc::clone(
            self.rank_decisions
                .write()
                .entry((extended_size, cap))
                .or_insert(decision),
        )
    }

    /// The GBDA-V2 weight, `None` for the other variants.
    fn weight(&self) -> Option<f64> {
        match self.config.variant {
            GbdaVariant::WeightedGbd { weight } => Some(weight),
            _ => None,
        }
    }

    /// Builds the [`ScanKernel`] for one flattened query over one segment,
    /// carrying the stage schedule the planner chose for *this* segment.
    fn kernel<'q, S: SegmentIndex>(
        &'q self,
        segment: &'q S,
        query_size: usize,
        query_flat: &'q FlatBranchSet,
        fixed_extended_size: Option<usize>,
    ) -> ScanKernel<'q, S> {
        let plan = if self.config.force_fixed_pipeline {
            QueryPlan::fixed()
        } else {
            self.planner.plan_for(segment, query_flat)
        };
        ScanKernel::new(
            segment,
            query_flat,
            query_size,
            fixed_extended_size,
            self.weight(),
            self.config.filter_cascade,
        )
        .with_plan(plan)
    }

    /// Runs Algorithm 1 over a view's live set: base then delta, each under
    /// its tombstone mask, both through the same filter cascade.
    pub(crate) fn search<V: DynamicView + ?Sized>(
        &self,
        view: &V,
        index: &OfflineIndex,
        fixed_extended_size: Option<usize>,
        query: &Graph,
    ) -> DynamicOutcome {
        let started = Instant::now();
        let _span = gbd_telemetry::span!("dynamic.search");
        let flatten_started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = view.view_catalog().flatten_lookup(&query_branches);
        let query_size = query.vertex_count();
        let mut outcome = DynamicOutcome::default();
        outcome.stats.shards = 1;
        outcome.stats.flatten_seconds = flatten_started.elapsed().as_secs_f64();
        let mut sink = CollectAll::new(self.config.record_posteriors);
        let mut local: HashMap<(usize, u64), f64> = HashMap::new();
        let cap_hint = view.view_max_vertices_hint();

        let scan_started = Instant::now();
        self.scan_segment(
            view.view_base(),
            view.view_base_tombstones(),
            view.view_base_ids(),
            index,
            fixed_extended_size,
            cap_hint,
            query_size,
            &query_flat,
            &mut sink,
            &mut outcome,
            &mut local,
        );
        self.scan_segment(
            view.view_delta(),
            view.view_delta_tombstones(),
            view.view_delta_ids(),
            index,
            fixed_extended_size,
            cap_hint,
            query_size,
            &query_flat,
            &mut sink,
            &mut outcome,
            &mut local,
        );
        outcome.matches = sink.matches;
        outcome.posteriors = sink.posteriors;
        outcome.stats.scan_seconds = scan_started.elapsed().as_secs_f64();
        outcome.seconds = started.elapsed().as_secs_f64();
        if !self.config.force_fixed_pipeline {
            self.planner.observe(&outcome.stats);
        }
        crate::obs::record_search(&outcome.stats, outcome.seconds);
        outcome
    }

    /// The [`Subscriber`]-sink instantiation over a view: hits are delivered
    /// to `on_match` as the scan (base then delta, ascending stable ids)
    /// finds them. Fast-path accepts arrive with `None`; resolved hits carry
    /// `Some(Φ)`. The delivered id set is exactly [`Self::search`]'s
    /// `matches`, in the same order.
    pub(crate) fn search_streaming<V: DynamicView + ?Sized, F>(
        &self,
        view: &V,
        index: &OfflineIndex,
        fixed_extended_size: Option<usize>,
        query: &Graph,
        on_match: F,
    ) -> SearchStats
    where
        F: FnMut(u64, Option<f64>),
    {
        let started = Instant::now();
        let _span = gbd_telemetry::span!("dynamic.search_streaming");
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = view.view_catalog().flatten_lookup(&query_branches);
        let query_size = query.vertex_count();
        let mut outcome = DynamicOutcome::default();
        outcome.stats.shards = 1;
        let mut sink = Subscriber::new(on_match);
        let mut local: HashMap<(usize, u64), f64> = HashMap::new();
        let cap_hint = view.view_max_vertices_hint();
        self.scan_segment(
            view.view_base(),
            view.view_base_tombstones(),
            view.view_base_ids(),
            index,
            fixed_extended_size,
            cap_hint,
            query_size,
            &query_flat,
            &mut sink,
            &mut outcome,
            &mut local,
        );
        self.scan_segment(
            view.view_delta(),
            view.view_delta_tombstones(),
            view.view_delta_ids(),
            index,
            fixed_extended_size,
            cap_hint,
            query_size,
            &query_flat,
            &mut sink,
            &mut outcome,
            &mut local,
        );
        if !self.config.force_fixed_pipeline {
            self.planner.observe(&outcome.stats);
        }
        crate::obs::record_search(&outcome.stats, started.elapsed().as_secs_f64());
        outcome.stats
    }

    /// Scans one segment under its tombstone mask: one [`ScanKernel`]
    /// instantiation under a [`StaticPhi`] cutoff, keyed by stable ids.
    /// Per-graph results are independent of the neighbours, so skipping
    /// tombstoned slots cannot change the survivors' values.
    #[allow(clippy::too_many_arguments)]
    fn scan_segment<S: SegmentIndex, K: crate::kernel::Sink<u64>>(
        &self,
        segment: &S,
        tombstones: &Tombstones,
        ids: &[u64],
        index: &OfflineIndex,
        fixed_extended_size: Option<usize>,
        cap_hint: usize,
        query_size: usize,
        query_flat: &FlatBranchSet,
        sink: &mut K,
        outcome: &mut DynamicOutcome,
        local: &mut HashMap<(usize, u64), f64>,
    ) {
        let kernel = self.kernel(segment, query_size, query_flat, fixed_extended_size);
        let cutoff = StaticPhi::prepare(
            &kernel,
            self.config.gamma,
            self.config.record_posteriors,
            |extended_size| {
                self.size_decision(index, extended_size, cap_hint.max(extended_size) as u64)
            },
        );
        outcome.ids.extend(
            (0..segment.segment_len())
                .filter(|&i| !tombstones.get(i))
                .map(|i| ids[i]),
        );
        kernel.scan(
            0..segment.segment_len(),
            &cutoff,
            sink,
            &mut outcome.stats,
            |i| tombstones.get(i),
            |i| ids[i],
            |stats, extended_size, phi| {
                crate::engine::lookup_posterior_memoized(
                    &self.cache,
                    index,
                    local,
                    stats,
                    extended_size,
                    phi,
                )
            },
        );
        if !self.config.force_fixed_pipeline && segment.segment_len() > 0 {
            Planner::book(kernel.plan(), &mut outcome.stats);
        }
    }

    /// Runs a **ranked** query over a view's live set: the `k` live graphs
    /// with the highest posterior, best first, keyed by stable ids.
    ///
    /// Bit-identical — same ids, same posterior bits — to
    /// [`crate::QueryEngine::search_top_k`] over a freshly built database of
    /// the survivors (given the same [`OfflineIndex`]), because the live set
    /// is scanned in canonical order (ascending stable ids: base then delta)
    /// and both engines rank under the same total order with ascending-id
    /// tie-breaks. One heap spans both segments, so a strong base candidate
    /// tightens the bound that prunes delta graphs and vice versa; `γ` and
    /// [`GbdaConfig::record_posteriors`] play no role, exactly as in the
    /// static engine.
    pub(crate) fn search_top_k<V: DynamicView + ?Sized>(
        &self,
        view: &V,
        index: &OfflineIndex,
        fixed_extended_size: Option<usize>,
        query: &Graph,
        k: usize,
    ) -> DynamicTopKOutcome {
        let started = Instant::now();
        let _span = gbd_telemetry::span!("dynamic.search_top_k");
        if k == 0 {
            return DynamicTopKOutcome::default();
        }
        let flatten_started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = view.view_catalog().flatten_lookup(&query_branches);
        let mut outcome = DynamicTopKOutcome::default();
        outcome.stats.shards = 1;
        outcome.stats.flatten_seconds = flatten_started.elapsed().as_secs_f64();
        // One sink (heap) spans both segments, so the bound tightens across
        // the segment boundary; both segments compete for the same k slots,
        // which is why the cutoff's candidate count is the whole live set.
        let mut sink = TopKSink::new(k);
        let mut local: HashMap<(usize, u64), f64> = HashMap::new();
        let candidates = view.view_len();
        let cap_hint = view.view_max_vertices_hint();

        let scan_started = Instant::now();
        self.scan_segment_top_k(
            view.view_base(),
            view.view_base_tombstones(),
            view.view_base_ids(),
            index,
            fixed_extended_size,
            cap_hint,
            query.vertex_count(),
            &query_flat,
            k,
            candidates,
            &mut sink,
            &mut outcome.stats,
            &mut local,
        );
        self.scan_segment_top_k(
            view.view_delta(),
            view.view_delta_tombstones(),
            view.view_delta_ids(),
            index,
            fixed_extended_size,
            cap_hint,
            query.vertex_count(),
            &query_flat,
            k,
            candidates,
            &mut sink,
            &mut outcome.stats,
            &mut local,
        );
        outcome.hits = sink.into_sorted_hits();
        outcome.stats.scan_seconds = scan_started.elapsed().as_secs_f64();
        outcome.seconds = started.elapsed().as_secs_f64();
        if !self.config.force_fixed_pipeline {
            self.planner.observe(&outcome.stats);
        }
        crate::obs::record_search(&outcome.stats, outcome.seconds);
        outcome
    }

    /// Ranked scan of one segment under its tombstone mask: one
    /// [`ScanKernel`] instantiation under a [`TighteningRank`] cutoff,
    /// sharing the sink (and therefore the tightening rank bound) with the
    /// other segment. The segment is walked in ascending slot order and
    /// slots map to ascending stable ids, which is what makes the heap's
    /// strict admission bound sound (see
    /// [`crate::topk::TopKHeap::threshold`]).
    #[allow(clippy::too_many_arguments)]
    fn scan_segment_top_k<S: SegmentIndex>(
        &self,
        segment: &S,
        tombstones: &Tombstones,
        ids: &[u64],
        index: &OfflineIndex,
        fixed_extended_size: Option<usize>,
        cap_hint: usize,
        query_size: usize,
        query_flat: &FlatBranchSet,
        k: usize,
        candidates: usize,
        sink: &mut TopKSink<u64>,
        stats: &mut SearchStats,
        local: &mut HashMap<(usize, u64), f64>,
    ) {
        let kernel = self.kernel(segment, query_size, query_flat, fixed_extended_size);
        let cutoff = TighteningRank::prepare(&kernel, k, candidates, |extended_size| {
            self.rank_decision(index, extended_size, cap_hint.max(extended_size) as u64)
        });
        kernel.scan(
            0..segment.segment_len(),
            &cutoff,
            sink,
            stats,
            |i| tombstones.get(i),
            |i| ids[i],
            |stats, extended_size, phi| {
                crate::engine::lookup_posterior_memoized(
                    &self.cache,
                    index,
                    local,
                    stats,
                    extended_size,
                    phi,
                )
            },
        );
        if !self.config.force_fixed_pipeline && segment.segment_len() > 0 {
            Planner::book(kernel.plan(), stats);
        }
    }
}

/// Samples the GBDA-V1 fixed `|V'1|` for a view's live set, exactly as
/// [`crate::QueryEngine::new`] samples a static database of the same
/// graphs; `None` for the other variants.
pub(crate) fn fixed_extended_size_for<V: DynamicView + ?Sized>(
    view: &V,
    config: &GbdaConfig,
) -> Option<usize> {
    match config.variant {
        GbdaVariant::AverageExtendedSize { sample_graphs } => {
            let live = view.view_live_vertex_counts();
            Some(crate::engine::average_extended_size(
                config.seed,
                sample_graphs,
                &live,
            ))
        }
        _ => None,
    }
}

/// The segment-aware query engine over a [`DynamicDatabase`].
///
/// Mirrors [`crate::QueryEngine`] — same variants, same cascade, same
/// posterior memo — but scans base and delta segments under their tombstone
/// masks. Given the same [`OfflineIndex`] and configuration, its results are
/// bit-identical to a `QueryEngine` over a freshly built database of the
/// live graphs.
///
/// This engine borrows the database, so overlapping queries and mutations
/// are ruled out at compile time; for snapshot-isolated reads *under*
/// writes, see [`crate::concurrent::ConcurrentEngine`], which runs the same
/// scan machinery over published [`crate::concurrent::Generation`]s.
pub struct DynamicEngine<'a> {
    dynamic: &'a DynamicDatabase,
    index: &'a OfflineIndex,
    /// `|V'1|` override of the GBDA-V1 variant, sampled over the live set in
    /// canonical order — exactly how [`crate::QueryEngine::new`] samples a
    /// static database of the same graphs.
    fixed_extended_size: Option<usize>,
    state: ScanState,
}

impl<'a> DynamicEngine<'a> {
    /// Creates an engine over the database's *current* live set. After an
    /// insert, remove or compact, create a new engine (the borrow checker
    /// enforces this: mutation needs `&mut DynamicDatabase`).
    pub fn new(dynamic: &'a DynamicDatabase, index: &'a OfflineIndex, config: GbdaConfig) -> Self {
        let fixed_extended_size = fixed_extended_size_for(dynamic, &config);
        gbd_telemetry::escalate_level(config.telemetry);
        DynamicEngine {
            dynamic,
            index,
            fixed_extended_size,
            state: ScanState::new(config),
        }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &GbdaConfig {
        &self.state.config
    }

    /// The fixed `|V'1|` of the GBDA-V1 variant, if active.
    pub fn fixed_extended_size(&self) -> Option<usize> {
        self.fixed_extended_size
    }

    /// Runs Algorithm 1 over the live set: base then delta, each under its
    /// tombstone mask, both through the same filter cascade.
    pub fn search(&self, query: &Graph) -> DynamicOutcome {
        self.state
            .search(self.dynamic, self.index, self.fixed_extended_size, query)
    }

    /// Runs Algorithm 1 over the live set, delivering hits to `on_match` as
    /// the scan (base then delta, ascending stable ids) finds them — the
    /// [`Subscriber`]-sink instantiation of the kernel. Fast-path accepts
    /// arrive with `None`; resolved hits carry `Some(Φ)`. The delivered id
    /// set is exactly [`Self::search`]'s `matches`, in the same order.
    pub fn search_streaming<F>(&self, query: &Graph, on_match: F) -> SearchStats
    where
        F: FnMut(u64, Option<f64>),
    {
        self.state.search_streaming(
            self.dynamic,
            self.index,
            self.fixed_extended_size,
            query,
            on_match,
        )
    }

    /// Runs a **ranked** query over the live set: the `k` live graphs with
    /// the highest posterior, best first, keyed by stable ids. See
    /// [`crate::QueryEngine::search_top_k`] for the shared ranking rules;
    /// the dynamic guarantee is bit-identity with a static engine over a
    /// fresh build of the live set.
    pub fn search_top_k(&self, query: &Graph, k: usize) -> DynamicTopKOutcome {
        self.state
            .search_top_k(self.dynamic, self.index, self.fixed_extended_size, query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use gbd_graph::GeneratorConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graphs(seed: u64, count: usize, size: usize) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        GeneratorConfig::new(size, 2.2)
            .with_alphabets(LabelAlphabets::new(6, 3))
            .generate_many(count, &mut rng)
            .unwrap()
    }

    fn setup() -> (DynamicDatabase, OfflineIndex, GbdaConfig) {
        let base = GraphDatabase::from_graphs(graphs(11, 16, 12));
        let config = GbdaConfig::new(4, 0.7).with_sample_pairs(200);
        let index = OfflineIndex::build(&base, &config).unwrap();
        (DynamicDatabase::new(base), index, config)
    }

    #[test]
    fn tombstones_track_set_slots() {
        let mut t = Tombstones::new(70);
        assert_eq!(t.len(), 70);
        assert!(!t.is_empty());
        assert_eq!(t.set_count(), 0);
        assert!(t.set(0));
        assert!(t.set(69));
        assert!(!t.set(69), "double-set is reported");
        assert_eq!(t.set_count(), 2);
        assert!(t.get(0) && t.get(69) && !t.get(35));
        t.push_alive();
        assert_eq!(t.len(), 71);
        assert!(!t.get(70));
        assert!(Tombstones::new(0).is_empty());
    }

    #[test]
    fn ids_are_stable_across_insert_remove_compact() {
        let (mut dynamic, _, _) = setup();
        assert_eq!(dynamic.len(), 16);
        let inserted = dynamic.insert(graphs(99, 1, 10).pop().unwrap());
        assert_eq!(inserted, 16);
        assert!(dynamic.contains(inserted));
        assert_eq!(dynamic.len(), 17);
        dynamic.remove(3).unwrap();
        assert!(!dynamic.contains(3));
        assert_eq!(
            dynamic.remove(3).unwrap_err(),
            EngineError::UnknownGraphId(3)
        );
        assert_eq!(
            dynamic.remove(1000).unwrap_err(),
            EngineError::UnknownGraphId(1000)
        );
        assert_eq!(dynamic.tombstone_count(), 1);
        let live_before = dynamic.live_ids();
        let survivors = dynamic.compact();
        assert_eq!(survivors, 16);
        assert_eq!(dynamic.live_ids(), live_before, "compaction preserves ids");
        assert_eq!(dynamic.tombstone_count(), 0);
        assert!(dynamic.delta().is_empty());
        assert!(dynamic.contains(inserted));
        // The next insert keeps counting upward.
        let next = dynamic.insert(graphs(98, 1, 10).pop().unwrap());
        assert_eq!(next, 17);
    }

    #[test]
    fn with_base_ids_resumes_id_assignment() {
        let (mut dynamic, _, _) = setup();
        dynamic.insert(graphs(42, 1, 10).pop().unwrap());
        dynamic.remove(3).unwrap();
        dynamic.compact();
        let ids = dynamic.base_ids().to_vec();
        let next_id = dynamic.next_id();
        assert_eq!(next_id, 17);
        assert!(!ids.contains(&3));

        let rebuilt =
            DynamicDatabase::with_base_ids(dynamic.base().clone(), ids.clone(), next_id).unwrap();
        assert_eq!(rebuilt.live_ids(), dynamic.live_ids());
        assert_eq!(rebuilt.next_id(), next_id);
        // The next insert in both databases assigns the same id.
        let mut rebuilt = rebuilt;
        let a = dynamic.insert(graphs(43, 1, 10).pop().unwrap());
        let b = rebuilt.insert(graphs(43, 1, 10).pop().unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn with_base_ids_rejects_inconsistent_id_lists() {
        let (dynamic, _, _) = setup();
        let base = dynamic.base().clone();
        let short = DynamicDatabase::with_base_ids(base.clone(), vec![0, 1], 16);
        assert!(matches!(short, Err(EngineError::CorruptDatabase { .. })));
        let mut dup: Vec<u64> = (0..16).collect();
        dup[5] = 4;
        assert!(DynamicDatabase::with_base_ids(base.clone(), dup, 16).is_err());
        let high: Vec<u64> = (0..16).collect();
        assert!(
            DynamicDatabase::with_base_ids(base, high, 10).is_err(),
            "ids at or above next_id are rejected"
        );
    }

    #[test]
    fn delta_segment_mirrors_base_structures() {
        let (mut dynamic, _, _) = setup();
        let extra = graphs(55, 3, 14);
        for g in extra.clone() {
            dynamic.insert(g);
        }
        let delta = dynamic.delta();
        assert_eq!(delta.len(), 3);
        for (i, g) in extra.iter().enumerate() {
            assert_eq!(delta.size_of(i), g.vertex_count());
            let flat = dynamic.catalog().flatten_graph(g);
            assert_eq!(delta.flat_view(i).runs(), flat.runs());
            assert_eq!(delta.distinct_runs(i), flat.runs().len());
            assert_eq!(
                delta.max_run_count(i),
                flat.runs().iter().map(|r| r.count).max().unwrap_or(0)
            );
        }
        // Delta postings reconstruct every delta flat set, like the base CSR.
        let mut gathered: Vec<Vec<(u32, u32)>> = vec![Vec::new(); delta.len()];
        for id in 0..dynamic.catalog().len() as u32 {
            let postings = delta.postings_of(id);
            assert!(postings.windows(2).all(|w| w[0].graph < w[1].graph));
            for p in postings {
                gathered[p.graph as usize].push((id, p.count));
            }
        }
        for (i, mut runs) in gathered.into_iter().enumerate() {
            runs.sort_unstable_by_key(|&(id, _)| id);
            let expected: Vec<(u32, u32)> = delta
                .flat_view(i)
                .runs()
                .iter()
                .map(|r| (r.id, r.count))
                .collect();
            assert_eq!(runs, expected, "delta postings diverge for graph {i}");
        }
    }

    #[test]
    fn compacted_base_equals_a_fresh_build() {
        let (mut dynamic, _, _) = setup();
        for g in graphs(77, 4, 10) {
            dynamic.insert(g);
        }
        dynamic.remove(0).unwrap();
        dynamic.remove(17).unwrap();
        let survivors: Vec<Graph> = dynamic.live_graphs().map(|(_, g)| g.clone()).collect();
        dynamic.compact();
        let fresh = GraphDatabase::with_alphabets(survivors, dynamic.alphabets());
        let base = dynamic.base();
        assert_eq!(base.len(), fresh.len());
        assert_eq!(base.arena_len(), fresh.arena_len());
        assert_eq!(base.postings_len(), fresh.postings_len());
        assert_eq!(base.distinct_sizes(), fresh.distinct_sizes());
        for i in 0..base.len() {
            assert_eq!(base.flat(i).runs(), fresh.flat(i).runs());
            assert_eq!(base.size_of(i), fresh.size_of(i));
        }
        assert!(base.verify_postings());
    }

    /// One engine-level spot check; the cross-mode interleaving equivalence
    /// lives in the workspace-level proptests.
    #[test]
    fn dynamic_search_matches_a_fresh_static_engine() {
        let (mut dynamic, index, config) = setup();
        for g in graphs(123, 5, 13) {
            dynamic.insert(g);
        }
        dynamic.remove(2).unwrap();
        dynamic.remove(18).unwrap();
        let query = dynamic.base().graph(5).clone();

        let survivors: Vec<Graph> = dynamic.live_graphs().map(|(_, g)| g.clone()).collect();
        let ids = dynamic.live_ids();
        let fresh = GraphDatabase::with_alphabets(survivors, dynamic.alphabets());
        for cascade in [true, false] {
            let config = config.clone().with_filter_cascade(cascade);
            let static_engine = QueryEngine::new(&fresh, &index, config.clone());
            let dynamic_engine = DynamicEngine::new(&dynamic, &index, config);
            let expected = static_engine.search(&query);
            let got = dynamic_engine.search(&query);
            assert_eq!(got.ids, ids);
            let expected_ids: Vec<u64> = expected.matches.iter().map(|&i| ids[i]).collect();
            assert_eq!(got.matches, expected_ids, "cascade={cascade}");
            assert_eq!(got.posteriors.len(), expected.posteriors.len());
            for (a, b) in got.posteriors.iter().zip(&expected.posteriors) {
                assert_eq!(a.to_bits(), b.to_bits(), "cascade={cascade}");
            }
            assert_eq!(got.stats.evaluated, fresh.len());
        }
    }

    /// One ranked spot check; the cross-mode interleaving equivalence lives
    /// in the workspace-level proptests.
    #[test]
    fn dynamic_top_k_matches_a_fresh_static_engine() {
        let (mut dynamic, index, config) = setup();
        for g in graphs(123, 5, 13) {
            dynamic.insert(g);
        }
        dynamic.remove(2).unwrap();
        dynamic.remove(18).unwrap();
        let query = dynamic.base().graph(5).clone();

        let survivors: Vec<Graph> = dynamic.live_graphs().map(|(_, g)| g.clone()).collect();
        let ids = dynamic.live_ids();
        let fresh = GraphDatabase::with_alphabets(survivors, dynamic.alphabets());
        for cascade in [true, false] {
            let config = config.clone().with_filter_cascade(cascade);
            let static_engine = QueryEngine::new(&fresh, &index, config.clone());
            let dynamic_engine = DynamicEngine::new(&dynamic, &index, config);
            for k in [1usize, 4, fresh.len(), fresh.len() + 3] {
                let expected = static_engine.search_top_k(&query, k);
                let got = dynamic_engine.search_top_k(&query, k);
                assert_eq!(
                    got.hits.len(),
                    expected.hits.len(),
                    "cascade={cascade} k={k}"
                );
                for (a, b) in got.hits.iter().zip(&expected.hits) {
                    assert_eq!(a.id, ids[b.id], "cascade={cascade} k={k}");
                    assert_eq!(
                        a.posterior.to_bits(),
                        b.posterior.to_bits(),
                        "cascade={cascade} k={k}"
                    );
                }
                assert_eq!(got.stats.evaluated, fresh.len());
            }
        }
        // k = 0 short-circuits without scanning.
        let engine = DynamicEngine::new(&dynamic, &index, config);
        let zero = engine.search_top_k(&query, 0);
        assert!(zero.hits.is_empty());
        assert_eq!(zero.stats.evaluated, 0);
    }

    #[test]
    fn empty_dynamic_database_is_searchable() {
        let base = GraphDatabase::from_graphs(graphs(5, 2, 8));
        let config = GbdaConfig::new(3, 0.8).with_sample_pairs(50);
        let index = OfflineIndex::build(&base, &config).unwrap();
        let mut dynamic = DynamicDatabase::new(base);
        dynamic.remove(0).unwrap();
        dynamic.remove(1).unwrap();
        assert!(dynamic.is_empty());
        let query = graphs(6, 1, 8).pop().unwrap();
        let engine = DynamicEngine::new(&dynamic, &index, config);
        let outcome = engine.search(&query);
        assert!(outcome.ids.is_empty());
        assert!(outcome.matches.is_empty());
        assert_eq!(outcome.stats.evaluated, 0);
        assert_eq!(dynamic.compact(), 0);
        assert!(dynamic.base().is_empty());
    }
}
