//! Configuration of the GBDA search engine.

use gbd_prob::GmmConfig;
pub use gbd_telemetry::TelemetryLevel;

/// Which flavour of the GBDA estimator to run (Section VII-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GbdaVariant {
    /// The standard GBDA of Algorithm 1: `|V'1| = max(|V_Q|, |V_G|)` per pair
    /// and the plain GBD of Definition 4.
    Standard,
    /// GBDA-V1: use the *average* number of vertices over a sample of `α`
    /// database graphs as `|V'1|` in `Λ1` and `Λ3`, instead of the pair's own
    /// extended size.
    AverageExtendedSize {
        /// Number of sampled graphs `α`.
        sample_graphs: usize,
    },
    /// GBDA-V2: replace the GBD by the weighted variant
    /// `VGBD = max{|V1|, |V2|} − w · |B_G1 ∩ B_G2|` (Equation 26).
    WeightedGbd {
        /// The user-defined weight `w`.
        weight: f64,
    },
}

/// Parameters of the GBDA search (Algorithm 1 inputs plus the offline knobs).
#[derive(Debug, Clone)]
pub struct GbdaConfig {
    /// Similarity threshold `τ̂`.
    pub tau_hat: u64,
    /// Probability threshold `γ`.
    pub gamma: f64,
    /// Number of graph pairs `N` sampled for the GBD prior (Section V-B).
    pub sample_pairs: usize,
    /// Gaussian-mixture configuration for the GBD prior.
    pub gmm: GmmConfig,
    /// RNG seed used for pair sampling (reproducible offline stage).
    pub seed: u64,
    /// Which estimator variant to run.
    pub variant: GbdaVariant,
    /// Number of shards a database scan is split into; each shard is scanned
    /// by its own thread under `std::thread::scope`. `1` keeps the scan on
    /// the calling thread.
    pub shards: usize,
    /// Whether [`crate::SearchOutcome::posteriors`] is filled for every
    /// database graph. Disabling it lets the engine answer most graphs with
    /// a single integer comparison against the per-size ϕ threshold.
    pub record_posteriors: bool,
    /// Whether scans run the candidate-pruning cascade of [`crate::filter`]:
    /// monotone GBD bounds plus the inverted-index count filter, resolving
    /// most graphs without merging their branch runs. Results are
    /// bit-identical with the cascade on or off; disabling it forces the
    /// exact flat merge for every graph (the pre-cascade scan).
    pub filter_cascade: bool,
    /// Escape hatch for the per-query stage planner of
    /// [`crate::filter::planner`]. By default (`false`) every scan asks the
    /// planner which cascade stages to run — whether the bound stages pay at
    /// all, whether the stage-2 refinement pays, and whether stage 3 goes
    /// postings-first or bound-first — based on collected [`SearchStats`]
    /// selectivities (static priors before enough queries were observed).
    /// Setting it to `true` pins the fixed stage-1 → stage-2 → count-filter
    /// pipeline. Results are bit-identical either way: planner decisions
    /// only move graphs between a conservative bound stage and the exact
    /// count filter.
    ///
    /// [`SearchStats`]: crate::SearchStats
    pub force_fixed_pipeline: bool,
    /// The telemetry level this engine *requires* of the process-wide
    /// layer (see the `gbd-telemetry` crate). Engine construction applies
    /// it via `gbd_telemetry::escalate_level` — monotone: it can raise the
    /// global level but never lowers it, so building an engine with a
    /// quieter configuration cannot silently stop recording for other
    /// engines in the same process. Lowering the level (e.g. for an
    /// overhead benchmark) is an explicit `gbd_telemetry::set_level` call.
    /// [`TelemetryLevel::Off`] reduces every instrumentation site to one
    /// relaxed load, the default [`TelemetryLevel::Metrics`] records
    /// counters/gauges/histograms, and [`TelemetryLevel::MetricsAndTraces`]
    /// additionally arms spans. Results are bit-identical at every level.
    pub telemetry: TelemetryLevel,
}

impl Default for GbdaConfig {
    fn default() -> Self {
        GbdaConfig {
            tau_hat: 5,
            gamma: 0.9,
            sample_pairs: 10_000,
            gmm: GmmConfig::default(),
            seed: 0x6BDA,
            variant: GbdaVariant::Standard,
            shards: 1,
            record_posteriors: true,
            filter_cascade: true,
            force_fixed_pipeline: false,
            telemetry: TelemetryLevel::Metrics,
        }
    }
}

impl GbdaConfig {
    /// Creates a configuration with the given thresholds and defaults for the
    /// offline stage.
    pub fn new(tau_hat: u64, gamma: f64) -> Self {
        GbdaConfig {
            tau_hat,
            gamma,
            ..GbdaConfig::default()
        }
    }

    /// Overrides the number of sampled pairs used to fit the GBD prior.
    pub fn with_sample_pairs(mut self, sample_pairs: usize) -> Self {
        self.sample_pairs = sample_pairs;
        self
    }

    /// Overrides the estimator variant.
    pub fn with_variant(mut self, variant: GbdaVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of scan shards (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides whether per-graph posteriors are recorded in outcomes.
    pub fn with_record_posteriors(mut self, record: bool) -> Self {
        self.record_posteriors = record;
        self
    }

    /// Overrides whether scans run the filter cascade of [`crate::filter`].
    pub fn with_filter_cascade(mut self, enabled: bool) -> Self {
        self.filter_cascade = enabled;
        self
    }

    /// Overrides the planner escape hatch: `true` pins the fixed
    /// stage-1 → stage-2 → count-filter pipeline instead of letting the
    /// per-query planner skip or reorder stages.
    pub fn with_force_fixed_pipeline(mut self, force: bool) -> Self {
        self.force_fixed_pipeline = force;
        self
    }

    /// Overrides the process-wide [`TelemetryLevel`] applied when an
    /// engine is built from this configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryLevel) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Durability knobs of the crash-safe dynamic layer (the `gbd-store`
/// crate's `DurableDatabase` reads these; the query path ignores them).
///
/// The write path is a length-prefixed, checksummed, sequence-numbered
/// write-ahead log paired with a base snapshot generation under a tiny
/// manifest. These knobs trade acknowledgment latency against the
/// crash-consistency window — correctness (prefix consistency on recovery)
/// holds for every setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Whether every mutation syncs the log before it is acknowledged.
    /// With `true` (the default) an acknowledged insert/remove is durable:
    /// it survives any crash. With `false` acknowledgments only promise
    /// prefix consistency — a crash may roll back a suffix of acknowledged
    /// mutations that were never explicitly synced.
    pub sync_acks: bool,
    /// When set, a mutation that grows the log past this many bytes
    /// triggers an automatic compaction checkpoint (new snapshot
    /// generation, fresh log). `None` (the default) leaves checkpointing
    /// entirely to explicit `compact()` calls.
    pub auto_compact_wal_bytes: Option<u64>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync_acks: true,
            auto_compact_wal_bytes: None,
        }
    }
}

impl DurabilityConfig {
    /// Overrides whether acknowledgments sync the log first.
    pub fn with_sync_acks(mut self, sync_acks: bool) -> Self {
        self.sync_acks = sync_acks;
        self
    }

    /// Overrides the automatic-checkpoint threshold (log bytes).
    pub fn with_auto_compact_wal_bytes(mut self, bytes: Option<u64>) -> Self {
        self.auto_compact_wal_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_defaults_are_sync_on_ack_without_auto_compaction() {
        let d = DurabilityConfig::default();
        assert!(d.sync_acks);
        assert_eq!(d.auto_compact_wal_bytes, None);
        let d = d
            .with_sync_acks(false)
            .with_auto_compact_wal_bytes(Some(4096));
        assert!(!d.sync_acks);
        assert_eq!(d.auto_compact_wal_bytes, Some(4096));
    }

    #[test]
    fn defaults_match_the_papers_common_settings() {
        let c = GbdaConfig::default();
        assert_eq!(c.tau_hat, 5);
        assert!((c.gamma - 0.9).abs() < 1e-12);
        assert_eq!(c.variant, GbdaVariant::Standard);
        assert_eq!(c.shards, 1);
        assert!(c.record_posteriors);
        assert!(c.filter_cascade);
        assert!(!c.force_fixed_pipeline, "the planner is on by default");
        assert_eq!(
            c.telemetry,
            TelemetryLevel::Metrics,
            "metrics are on by default"
        );
    }

    #[test]
    fn telemetry_level_is_overridable() {
        let c = GbdaConfig::default().with_telemetry(TelemetryLevel::Off);
        assert_eq!(c.telemetry, TelemetryLevel::Off);
        let c = c.with_telemetry(TelemetryLevel::MetricsAndTraces);
        assert_eq!(c.telemetry, TelemetryLevel::MetricsAndTraces);
    }

    #[test]
    fn planner_escape_hatch_pins_the_fixed_pipeline() {
        let c = GbdaConfig::default().with_force_fixed_pipeline(true);
        assert!(c.force_fixed_pipeline);
    }

    #[test]
    fn filter_cascade_can_be_disabled() {
        let c = GbdaConfig::default().with_filter_cascade(false);
        assert!(!c.filter_cascade);
    }

    #[test]
    fn shard_count_is_clamped_to_one() {
        let c = GbdaConfig::default().with_shards(0);
        assert_eq!(c.shards, 1);
        let c = GbdaConfig::default()
            .with_shards(8)
            .with_record_posteriors(false);
        assert_eq!(c.shards, 8);
        assert!(!c.record_posteriors);
    }

    #[test]
    fn builders_override_fields() {
        let c = GbdaConfig::new(10, 0.7)
            .with_sample_pairs(500)
            .with_seed(7)
            .with_variant(GbdaVariant::WeightedGbd { weight: 0.5 });
        assert_eq!(c.tau_hat, 10);
        assert_eq!(c.sample_pairs, 500);
        assert_eq!(c.seed, 7);
        assert_eq!(c.variant, GbdaVariant::WeightedGbd { weight: 0.5 });
    }
}
