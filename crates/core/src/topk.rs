//! Ranked (top-k) query primitives: the bounded heap, the ranking order and
//! the sort-truncate reference.
//!
//! A ranked query asks for the `k` database graphs with the **highest**
//! posterior `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]`. The subsystem is built on one
//! total order, [`rank_order`]: higher posterior first (compared bitwise via
//! [`f64::total_cmp`] so results are reproducible), ties broken by
//! **ascending graph id**. Every ranked path in the workspace — the bounded
//! heap of a scan, the deterministic merge of per-shard heaps, the
//! sort-truncate reference of [`rank_by_posterior`] — uses this order and
//! nothing else, which is what makes sharded, batched and dynamic top-k
//! bit-identical to "scan everything, sort, truncate".
//!
//! [`TopKHeap`] keeps the `k` best hits seen so far; once full, its worst
//! kept posterior is the *running rank bound* the engines feed back into the
//! filter cascade (see [`crate::filter::RankDecision`]) so that ever more
//! graphs are rejected from ϕ lower bounds alone as better candidates
//! accumulate.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::search::SearchStats;

/// Result of one ranked query over a static [`crate::GraphDatabase`].
#[derive(Debug, Clone, Default)]
pub struct TopKOutcome {
    /// The `k` best-ranked graphs (database indices), best first under
    /// [`rank_order`]; shorter only when the database has fewer than `k`
    /// graphs.
    pub hits: Vec<RankedHit>,
    /// Wall-clock seconds of the ranked scan.
    pub seconds: f64,
    /// Per-stage counters; ranked scans fill
    /// [`SearchStats::rank_rejected`] and [`SearchStats::heap_inserts`].
    pub stats: SearchStats,
}

/// Result of one ranked query over a [`crate::DynamicDatabase`]: like
/// [`TopKOutcome`], but hits carry stable `u64` graph ids.
#[derive(Debug, Clone, Default)]
pub struct DynamicTopKOutcome {
    /// The `k` best-ranked live graphs (stable ids), best first under
    /// [`rank_order`].
    pub hits: Vec<RankedHit<u64>>,
    /// Wall-clock seconds of the ranked scan.
    pub seconds: f64,
    /// Per-stage counters, directly comparable with a static engine's.
    pub stats: SearchStats,
}

/// One ranked result: a graph identifier plus its posterior.
///
/// `I` is the identifier type — `usize` database indices for
/// [`crate::QueryEngine`], stable `u64` ids for [`crate::DynamicEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedHit<I = usize> {
    /// The graph's identifier.
    pub id: I,
    /// The posterior `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]` of the graph.
    pub posterior: f64,
}

/// The workspace-wide ranking order: descending posterior (bitwise, via
/// [`f64::total_cmp`]), then **ascending id** — so `Less` means "`a` ranks
/// strictly before `b`". Equal posteriors are therefore always ordered by
/// ascending graph id, the documented determinism guarantee of every
/// `search_top_k` API.
pub fn rank_order<I: Ord>(a: &RankedHit<I>, b: &RankedHit<I>) -> Ordering {
    b.posterior
        .total_cmp(&a.posterior)
        .then_with(|| a.id.cmp(&b.id))
}

/// The sort-truncate reference: ranks a full posterior array (indexed by
/// graph position) under [`rank_order`] and keeps the best `k`.
///
/// This is the definitional answer a ranked query must reproduce — the
/// equivalence proptests and `bench_topk --check` compare every engine path
/// against it bit-for-bit.
pub fn rank_by_posterior(posteriors: &[f64], k: usize) -> Vec<RankedHit> {
    let mut hits: Vec<RankedHit> = posteriors
        .iter()
        .enumerate()
        .map(|(id, &posterior)| RankedHit { id, posterior })
        .collect();
    hits.sort_by(rank_order);
    hits.truncate(k);
    hits
}

/// Heap wrapper whose `Ord` makes the **worst-ranked** hit the maximum, so a
/// `BinaryHeap` peeks at the eviction candidate in `O(1)`.
#[derive(Debug, Clone, Copy)]
struct WorstFirst<I>(RankedHit<I>);

impl<I: Ord> PartialEq for WorstFirst<I> {
    fn eq(&self, other: &Self) -> bool {
        rank_order(&self.0, &other.0) == Ordering::Equal
    }
}

impl<I: Ord> Eq for WorstFirst<I> {}

impl<I: Ord> PartialOrd for WorstFirst<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<I: Ord> Ord for WorstFirst<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Under `rank_order` a worse hit compares `Greater` (it sorts
        // later), which is exactly what makes it the `BinaryHeap` maximum.
        rank_order(&self.0, &other.0)
    }
}

/// A bounded heap keeping the `k` best [`RankedHit`]s under [`rank_order`].
///
/// Admission compares against the currently-worst kept hit with the full
/// ranking order (posterior, then id), so the kept set equals the first `k`
/// entries of the sorted input regardless of push order. [`Self::threshold`]
/// exposes the worst kept posterior once the heap is full — the tightening
/// bound ranked scans feed back into the filter cascade.
#[derive(Debug, Clone)]
pub struct TopKHeap<I = usize> {
    k: usize,
    heap: BinaryHeap<WorstFirst<I>>,
}

impl<I: Ord + Copy> TopKHeap<I> {
    /// An empty heap that will keep at most `k` hits.
    pub fn new(k: usize) -> Self {
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 16)),
        }
    }

    /// The capacity `k` this heap was created with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of hits currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no hit is kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The worst kept posterior once the heap holds `k` hits, `None` while
    /// it is still filling (no bound can be derived yet).
    ///
    /// When the heap is full, a *later* candidate (larger id) can only enter
    /// with a posterior **strictly** above this bound: an equal posterior
    /// loses the ascending-id tie-break against every kept hit, whose ids
    /// are all smaller in an ascending-id scan. That strictness is what lets
    /// [`crate::filter::RankDecision::rejects_from`] prune on `≤`.
    pub fn threshold(&self) -> Option<f64> {
        if self.k > 0 && self.heap.len() == self.k {
            self.heap.peek().map(|worst| worst.0.posterior)
        } else {
            None
        }
    }

    /// Offers one hit; returns `true` when it was kept (possibly evicting
    /// the previously-worst hit).
    pub fn push(&mut self, hit: RankedHit<I>) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
            return true;
        }
        let worst = self.heap.peek().expect("full heap has a worst element");
        if rank_order(&hit, &worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(WorstFirst(hit));
            true
        } else {
            false
        }
    }

    /// Consumes the heap and returns the kept hits best-first (sorted by
    /// [`rank_order`]).
    pub fn into_sorted_hits(self) -> Vec<RankedHit<I>> {
        let mut hits: Vec<RankedHit<I>> = self.heap.into_iter().map(|w| w.0).collect();
        hits.sort_by(rank_order);
        hits
    }
}

/// Deterministically merges per-shard ranked results: concatenate, re-sort
/// under [`rank_order`], truncate to `k`. Each shard keeps its own local top
/// `k`, and the global top `k` is a subset of the union of the local ones
/// (at most `k` winners can come from any single shard), so the merge is
/// exact.
pub fn merge_ranked<I: Ord + Copy>(
    shards: impl IntoIterator<Item = Vec<RankedHit<I>>>,
    k: usize,
) -> Vec<RankedHit<I>> {
    let mut all: Vec<RankedHit<I>> = shards.into_iter().flatten().collect();
    all.sort_by(rank_order);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: usize, posterior: f64) -> RankedHit {
        RankedHit { id, posterior }
    }

    #[test]
    fn rank_order_prefers_high_posterior_then_low_id() {
        assert_eq!(rank_order(&hit(5, 0.9), &hit(1, 0.2)), Ordering::Less);
        assert_eq!(rank_order(&hit(1, 0.2), &hit(5, 0.9)), Ordering::Greater);
        assert_eq!(rank_order(&hit(1, 0.5), &hit(2, 0.5)), Ordering::Less);
        assert_eq!(rank_order(&hit(2, 0.5), &hit(1, 0.5)), Ordering::Greater);
        assert_eq!(rank_order(&hit(3, 0.5), &hit(3, 0.5)), Ordering::Equal);
        // total_cmp distinguishes -0.0 from 0.0 deterministically.
        assert_eq!(rank_order(&hit(0, 0.0), &hit(1, -0.0)), Ordering::Less);
    }

    #[test]
    fn heap_keeps_the_k_best_regardless_of_push_order() {
        let posteriors = [0.3, 0.9, 0.1, 0.9, 0.5, 0.7, 0.2];
        let mut heap = TopKHeap::new(3);
        for (id, &p) in posteriors.iter().enumerate() {
            heap.push(hit(id, p));
        }
        assert_eq!(heap.len(), 3);
        let kept = heap.into_sorted_hits();
        assert_eq!(kept, rank_by_posterior(&posteriors, 3));
        // Ties at 0.9 resolve by ascending id: 1 before 3.
        assert_eq!(kept[0].id, 1);
        assert_eq!(kept[1].id, 3);
        assert_eq!(kept[2].id, 5);
    }

    #[test]
    fn threshold_appears_only_when_full_and_tightens() {
        let mut heap = TopKHeap::new(2);
        assert_eq!(heap.threshold(), None);
        heap.push(hit(0, 0.4));
        assert_eq!(heap.threshold(), None, "filling heap has no bound");
        heap.push(hit(1, 0.8));
        assert_eq!(heap.threshold(), Some(0.4));
        // A better hit evicts the worst and tightens the bound.
        assert!(heap.push(hit(2, 0.6)));
        assert_eq!(heap.threshold(), Some(0.6));
        // An equal-posterior later id is rejected (ascending-id tie-break).
        assert!(!heap.push(hit(3, 0.6)));
        // A strictly worse hit is rejected.
        assert!(!heap.push(hit(4, 0.5)));
        assert_eq!(heap.threshold(), Some(0.6));
    }

    #[test]
    fn zero_capacity_heap_keeps_nothing() {
        let mut heap = TopKHeap::new(0);
        assert!(!heap.push(hit(0, 1.0)));
        assert!(heap.is_empty());
        assert_eq!(heap.threshold(), None);
        assert_eq!(heap.k(), 0);
        assert!(heap.into_sorted_hits().is_empty());
    }

    #[test]
    fn oversized_k_keeps_everything() {
        let posteriors = [0.1, 0.5, 0.3];
        let mut heap = TopKHeap::new(10);
        for (id, &p) in posteriors.iter().enumerate() {
            assert!(heap.push(hit(id, p)));
        }
        assert_eq!(heap.threshold(), None, "never full, never a bound");
        assert_eq!(heap.into_sorted_hits(), rank_by_posterior(&posteriors, 10));
    }

    #[test]
    fn reference_truncates_and_orders_ties_by_id() {
        let hits = rank_by_posterior(&[0.5, 0.5, 0.9, 0.5], 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 0);
        assert_eq!(hits[2].id, 1);
        assert!(rank_by_posterior(&[], 4).is_empty());
        assert_eq!(rank_by_posterior(&[0.3, 0.1], 0), Vec::new());
    }

    #[test]
    fn shard_merge_equals_the_global_sort() {
        let posteriors = [0.3, 0.9, 0.1, 0.9, 0.5, 0.7, 0.2, 0.9, 0.4];
        for k in [1usize, 3, 5, 9, 20] {
            for split in [3usize, 4, 8] {
                let mut shards = Vec::new();
                for chunk_start in (0..posteriors.len()).step_by(split) {
                    let mut heap = TopKHeap::new(k);
                    let chunk_end = (chunk_start + split).min(posteriors.len());
                    for (id, &p) in posteriors
                        .iter()
                        .enumerate()
                        .take(chunk_end)
                        .skip(chunk_start)
                    {
                        heap.push(hit(id, p));
                    }
                    shards.push(heap.into_sorted_hits());
                }
                assert_eq!(
                    merge_ranked(shards, k),
                    rank_by_posterior(&posteriors, k),
                    "k = {k}, split = {split}"
                );
            }
        }
    }
}
