//! The offline pre-processing stage (Step 1 of Algorithm 1).
//!
//! Two prior distributions are pre-computed before any query arrives:
//!
//! 1. the **GBD prior** `Λ2` — GBDs of `N` sampled database pairs are fitted
//!    with a Gaussian mixture and discretised via continuity correction
//!    (Section V-B, cost `O(N·n·d)`); the pair GBDs are computed on
//!    `GbdaConfig::shards` scoped threads with a bit-identical result for
//!    any shard count,
//! 2. the **GED prior** `Λ3` — the Jeffreys prior, one normalised column per
//!    extended size `|V'1|` (Section V-C, cost `O(n·τ̂⁵)`).
//!
//! The index additionally caches one `Λ1` likelihood table per extended size
//! so that the online stage shares the `O(τ̂³)` table across all database
//! graphs of equal size, exactly as the complexity analysis assumes.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gbd_graph::LabelAlphabets;
use gbd_prob::{BranchEditModel, GbdPrior, GedPrior, Lambda1Table};

use crate::config::GbdaConfig;
use crate::database::GraphDatabase;
use crate::error::{EngineError, EngineResult};

/// Decodes a linear pair index `p ∈ [0, n(n−1)/2)` into the `(i, j)` pair
/// (`i < j`) it enumerates, rows ordered by `i`.
fn pair_from_index(p: usize, n: usize) -> (usize, usize) {
    // offset(i) = number of pairs in rows 0..i = i(n−1) − i(i−1)/2.
    let offset = |i: usize| i * (2 * n - i - 1) / 2;
    let mut lo = 0usize;
    let mut hi = n - 2;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if offset(mid) <= p {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (lo, lo + 1 + (p - offset(lo)))
}

/// Samples `k` *distinct* pair indices from `[0, total)` without replacement
/// (Robert Floyd's algorithm), returned in sorted order for determinism.
fn sample_distinct_pairs(total: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    debug_assert!(k <= total);
    let mut chosen: HashSet<usize> = HashSet::with_capacity(k);
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    for j in (total - k)..total {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            picked.push(t);
        } else {
            chosen.insert(j);
            picked.push(j);
        }
    }
    picked.sort_unstable();
    picked
}

/// Costs of the offline stage, reported by the Table IV / Table V experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OfflineStats {
    /// Wall-clock seconds spent fitting the GBD prior.
    pub gbd_prior_seconds: f64,
    /// Wall-clock seconds spent computing the GED prior columns.
    pub ged_prior_seconds: f64,
    /// Number of *distinct* graph pairs actually sampled (the sampler draws
    /// without replacement, so this is also the number of unique pairs).
    pub sampled_pairs: usize,
    /// Number of stored `Pr[GBD = ϕ]` entries (space cost `O(n)`).
    pub gbd_prior_entries: usize,
    /// Number of stored `Pr[GED = τ]` entries (space cost `O(n·(1 + τ̂))`).
    pub ged_prior_entries: usize,
}

/// The pre-computed priors plus the per-size likelihood-table cache.
#[derive(Debug)]
pub struct OfflineIndex {
    gbd_prior: GbdPrior,
    ged_prior: GedPrior,
    lambda1_tables: RwLock<HashMap<usize, Arc<Lambda1Table>>>,
    alphabets: LabelAlphabets,
    tau_max: u64,
    stats: OfflineStats,
}

impl OfflineIndex {
    /// Runs the offline stage for `database` under `config`.
    ///
    /// # Errors
    /// Returns [`EngineError::DatabaseTooSmall`] if the database has fewer
    /// than two graphs (no pair to sample the GBD prior from).
    pub fn build(database: &GraphDatabase, config: &GbdaConfig) -> EngineResult<Self> {
        if database.len() < 2 {
            return Err(EngineError::DatabaseTooSmall {
                len: database.len(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Step 1.1–1.4: sample pairs, compute GBDs, fit the GMM, discretise.
        // Pair selection is sequential (it consumes the seeded RNG); the GBD
        // computation of the selected pairs — the offline sampling
        // bottleneck — is spread over `config.shards` scoped threads. Each
        // worker writes a disjoint slice of the pre-sized sample buffer, so
        // the sample order (and therefore the Λ2 fit) is bit-identical for
        // any shard count.
        let started = Instant::now();
        let total_pairs = database.len() * (database.len() - 1) / 2;
        let sample_count = config.sample_pairs.min(total_pairs.max(1));
        let pairs: Vec<(usize, usize)> = if total_pairs <= config.sample_pairs {
            // Small databases: enumerate every pair instead of sampling.
            let mut pairs = Vec::with_capacity(total_pairs);
            for i in 0..database.len() {
                for j in (i + 1)..database.len() {
                    pairs.push((i, j));
                }
            }
            pairs
        } else {
            // Larger databases: draw distinct pairs without replacement so
            // no pair is double-counted in the Λ2 fit.
            sample_distinct_pairs(total_pairs, sample_count, &mut rng)
                .into_iter()
                .map(|p| pair_from_index(p, database.len()))
                .collect()
        };
        let mut samples = vec![0.0f64; pairs.len()];
        let workers = config.shards.max(1).min(pairs.len().max(1));
        if workers <= 1 {
            for (slot, &(i, j)) in samples.iter_mut().zip(&pairs) {
                *slot = database.gbd_between(i, j) as f64;
            }
        } else {
            let chunk = pairs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (pair_chunk, out_chunk) in pairs.chunks(chunk).zip(samples.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (slot, &(i, j)) in out_chunk.iter_mut().zip(pair_chunk) {
                            *slot = database.gbd_between(i, j) as f64;
                        }
                    });
                }
            });
        }
        let gbd_prior = GbdPrior::fit(&samples, database.max_vertices(), &config.gmm);
        let gbd_prior_seconds = started.elapsed().as_secs_f64();

        // GED prior: one Jeffreys column per distinct graph size in the
        // database; query-specific sizes are filled in lazily online. The
        // model clamps sizes to at least 1, so 0 and 1 collapse.
        let started = Instant::now();
        let ged_prior = GedPrior::new(database.alphabets(), config.tau_hat);
        let mut sizes: Vec<usize> = database
            .distinct_sizes()
            .iter()
            .map(|&s| s.max(1))
            .collect();
        sizes.dedup();
        ged_prior.prepare(sizes.iter().copied());
        let ged_prior_seconds = started.elapsed().as_secs_f64();

        let stats = OfflineStats {
            gbd_prior_seconds,
            ged_prior_seconds,
            sampled_pairs: samples.len(),
            gbd_prior_entries: gbd_prior.table().len(),
            ged_prior_entries: sizes.len() * (config.tau_hat as usize + 1),
        };
        Ok(OfflineIndex {
            gbd_prior,
            ged_prior,
            lambda1_tables: RwLock::new(HashMap::new()),
            alphabets: database.alphabets(),
            tau_max: config.tau_hat,
            stats,
        })
    }

    /// The GBD prior `Λ2`.
    pub fn gbd_prior(&self) -> &GbdPrior {
        &self.gbd_prior
    }

    /// The GED prior `Λ3`.
    pub fn ged_prior(&self) -> &GedPrior {
        &self.ged_prior
    }

    /// Label alphabets the model was built with.
    pub fn alphabets(&self) -> LabelAlphabets {
        self.alphabets
    }

    /// Maximal threshold `τ̂` supported by the index.
    pub fn tau_max(&self) -> u64 {
        self.tau_max
    }

    /// Offline cost statistics.
    pub fn stats(&self) -> OfflineStats {
        self.stats
    }

    /// Returns (building and caching on first use) the `Λ1` table for
    /// extended size `v = |V'1|`.
    pub fn lambda1_table(&self, extended_size: usize) -> Arc<Lambda1Table> {
        if let Some(table) = self.lambda1_tables.read().get(&extended_size) {
            return Arc::clone(table);
        }
        let model = BranchEditModel::new(extended_size, self.alphabets);
        let table = Arc::new(Lambda1Table::build(&model, self.tau_max));
        self.lambda1_tables
            .write()
            .insert(extended_size, Arc::clone(&table));
        table
    }

    /// Number of distinct `Λ1` tables currently cached.
    pub fn cached_lambda1_tables(&self) -> usize {
        self.lambda1_tables.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::{GeneratorConfig, LabelAlphabets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_database() -> GraphDatabase {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = GeneratorConfig::new(12, 2.2).with_alphabets(LabelAlphabets::new(6, 3));
        let graphs = cfg.generate_many(20, &mut rng).unwrap();
        GraphDatabase::from_graphs(graphs)
    }

    #[test]
    fn pair_index_decoding_round_trips() {
        for n in [2usize, 3, 5, 12] {
            let mut expected = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    expected.push((i, j));
                }
            }
            for (p, &pair) in expected.iter().enumerate() {
                assert_eq!(pair_from_index(p, n), pair, "p = {p}, n = {n}");
            }
        }
    }

    #[test]
    fn sampler_draws_distinct_sorted_pairs() {
        let mut rng = StdRng::seed_from_u64(11);
        for (total, k) in [(10usize, 10usize), (100, 37), (1000, 999), (50, 1)] {
            let picked = sample_distinct_pairs(total, k, &mut rng);
            assert_eq!(picked.len(), k);
            assert!(
                picked.windows(2).all(|w| w[0] < w[1]),
                "duplicates or unsorted"
            );
            assert!(picked.iter().all(|&p| p < total));
        }
    }

    #[test]
    fn build_produces_usable_priors_and_stats() {
        let db = small_database();
        let config = GbdaConfig::new(4, 0.8).with_sample_pairs(100);
        let index = OfflineIndex::build(&db, &config).unwrap();
        let stats = index.stats();
        assert!(stats.sampled_pairs > 0);
        assert!(stats.gbd_prior_entries >= db.max_vertices());
        assert!(stats.ged_prior_entries > 0);
        assert!(stats.gbd_prior_seconds >= 0.0 && stats.ged_prior_seconds >= 0.0);
        // Priors respond sensibly.
        assert!(index.gbd_prior().probability(3) > 0.0);
        assert!(index.ged_prior().probability(12, 2) > 0.0);
        assert_eq!(index.tau_max(), 4);
    }

    #[test]
    fn small_databases_enumerate_all_pairs() {
        let db = small_database();
        let config = GbdaConfig::new(3, 0.8).with_sample_pairs(100_000);
        let index = OfflineIndex::build(&db, &config).unwrap();
        assert_eq!(index.stats().sampled_pairs, 20 * 19 / 2);
    }

    #[test]
    fn sampled_pairs_reflect_unique_pairs_on_larger_databases() {
        // 20 graphs → 190 pairs; requesting 150 must yield 150 *distinct*
        // pairs (the old with-replacement sampler could double-count).
        let db = small_database();
        let config = GbdaConfig::new(3, 0.8).with_sample_pairs(150);
        let index = OfflineIndex::build(&db, &config).unwrap();
        assert_eq!(index.stats().sampled_pairs, 150);
    }

    #[test]
    fn sharded_offline_build_is_bit_identical_to_sequential() {
        let db = small_database();
        for sample_pairs in [100_000usize, 150] {
            // 100k enumerates every pair, 150 samples without replacement —
            // both paths must be deterministic across shard counts.
            let sequential = GbdaConfig::new(4, 0.8).with_sample_pairs(sample_pairs);
            let index_seq = OfflineIndex::build(&db, &sequential).unwrap();
            for shards in [2usize, 3, 8, 64] {
                let index_par =
                    OfflineIndex::build(&db, &sequential.clone().with_shards(shards)).unwrap();
                assert_eq!(
                    index_seq.stats().sampled_pairs,
                    index_par.stats().sampled_pairs
                );
                let a = index_seq.gbd_prior().table();
                let b = index_par.gbd_prior().table();
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "Λ2 diverges with {shards} shards / {sample_pairs} pairs"
                    );
                }
            }
        }
    }

    #[test]
    fn lambda1_tables_are_cached_per_extended_size() {
        let db = small_database();
        let config = GbdaConfig::new(3, 0.8).with_sample_pairs(50);
        let index = OfflineIndex::build(&db, &config).unwrap();
        assert_eq!(index.cached_lambda1_tables(), 0);
        let a = index.lambda1_table(12);
        let b = index.lambda1_table(12);
        assert!(Arc::ptr_eq(&a, &b));
        let _c = index.lambda1_table(15);
        assert_eq!(index.cached_lambda1_tables(), 2);
    }

    #[test]
    fn refuses_degenerate_databases_with_an_error() {
        let db = GraphDatabase::from_graphs(Vec::new());
        let err = OfflineIndex::build(&db, &GbdaConfig::default()).unwrap_err();
        assert_eq!(err, crate::EngineError::DatabaseTooSmall { len: 0 });
        assert!(err.to_string().contains("at least two graphs"));
    }
}
