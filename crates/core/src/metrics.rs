//! Effectiveness metrics: precision, recall and F1-score (Section VII-C2).

/// Confusion counts of one similarity-search result against the ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Returned graphs that are truly similar.
    pub true_positives: usize,
    /// Returned graphs that are not similar.
    pub false_positives: usize,
    /// Similar graphs that were not returned.
    pub false_negatives: usize,
}

impl Confusion {
    /// Builds the confusion counts from a returned set and the ground-truth
    /// positive set (both as sorted-or-not index lists).
    pub fn from_sets(returned: &[usize], positives: &[usize]) -> Self {
        let mut confusion = Confusion::default();
        for r in returned {
            if positives.contains(r) {
                confusion.true_positives += 1;
            } else {
                confusion.false_positives += 1;
            }
        }
        for p in positives {
            if !returned.contains(p) {
                confusion.false_negatives += 1;
            }
        }
        confusion
    }

    /// Precision `TP / (TP + FP)`. Defined as 1 when nothing was returned and
    /// nothing should have been returned, and 0 when something was returned
    /// but nothing was correct.
    pub fn precision(&self) -> f64 {
        let denominator = self.true_positives + self.false_positives;
        if denominator == 0 {
            if self.false_negatives == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.true_positives as f64 / denominator as f64
        }
    }

    /// Recall `TP / (TP + FN)`. Defined as 1 when the ground-truth answer set
    /// is empty.
    pub fn recall(&self) -> f64 {
        let denominator = self.true_positives + self.false_negatives;
        if denominator == 0 {
            1.0
        } else {
            self.true_positives as f64 / denominator as f64
        }
    }

    /// F1-score: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Component-wise sum, used to micro-average over queries.
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            true_positives: self.true_positives + other.true_positives,
            false_positives: self.false_positives + other.false_positives,
            false_negatives: self.false_negatives + other.false_negatives,
        }
    }
}

/// Micro-averaged metrics over many queries.
pub fn aggregate<'a>(confusions: impl IntoIterator<Item = &'a Confusion>) -> Confusion {
    confusions
        .into_iter()
        .fold(Confusion::default(), |acc, c| acc.merge(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_result() {
        let c = Confusion::from_sets(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn partial_result() {
        let c = Confusion::from_sets(&[1, 2, 9], &[1, 2, 3, 4]);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 2);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        let expected_f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((c.f1() - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn empty_cases_follow_the_conventions() {
        let both_empty = Confusion::from_sets(&[], &[]);
        assert_eq!(both_empty.precision(), 1.0);
        assert_eq!(both_empty.recall(), 1.0);
        assert_eq!(both_empty.f1(), 1.0);

        let nothing_returned = Confusion::from_sets(&[], &[1, 2]);
        assert_eq!(nothing_returned.precision(), 0.0);
        assert_eq!(nothing_returned.recall(), 0.0);
        assert_eq!(nothing_returned.f1(), 0.0);

        let nothing_expected = Confusion::from_sets(&[1], &[]);
        assert_eq!(nothing_expected.precision(), 0.0);
        assert_eq!(nothing_expected.recall(), 1.0);
    }

    #[test]
    fn aggregation_micro_averages() {
        let a = Confusion::from_sets(&[1], &[1, 2]);
        let b = Confusion::from_sets(&[3, 4], &[3]);
        let merged = aggregate([&a, &b]);
        assert_eq!(merged.true_positives, 2);
        assert_eq!(merged.false_positives, 1);
        assert_eq!(merged.false_negatives, 1);
        assert!((merged.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((merged.recall() - 2.0 / 3.0).abs() < 1e-12);
    }
}
