//! The candidate-pruning layer: a cascade of monotone GBD bounds plus the
//! inverted-index count filter.
//!
//! The online decision for one database graph `G` only needs the posterior
//! `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]` compared against `γ`, and `Φ` depends on the
//! pair only through `(|V'1|, ϕ)`. Because the extended size is shared by
//! every graph in a size bucket, the whole decision collapses to "where does
//! ϕ fall inside this bucket's [`SizeDecision`]": an *accepting prefix*
//! `ϕ ≤ accept_max` and a *rejecting suffix* `ϕ ≥ reject_min`, both derived
//! from the same memoized posterior the exact path evaluates. A graph can
//! therefore be resolved from *bounds* on ϕ alone:
//!
//! 1. **L1 size bound** — `|B_Q ∩ B_G| ≤ min(known(Q), |G|)`, so
//!    `ϕ ≥ max(|Q|, |G|) − min(known(Q), |G|)`. Constant per size bucket:
//!    whole buckets are accepted or rejected with two comparisons.
//! 2. **Distinct-run bound** — at most `min(d_Q, d_G)` distinct branches can
//!    match, each at most `min(maxrun_Q, maxrun_G)` times. Per graph, still
//!    only aggregate reads.
//! 3. **Partial-intersection count filter** — walking the query's runs over
//!    the database's inverted postings accumulates the *exact*
//!    `|B_Q ∩ B_G|` for every graph in a range, so ϕ is known exactly
//!    without merging a single run pair.
//!
//! Every stage is conservative: a bound decides only when the entire
//! possible ϕ interval lands inside the accepting prefix or the rejecting
//! suffix, and the count filter reproduces the merge's intersection
//! bit-for-bit, so cascade results are identical to the exact scan.
//!
//! # Hardware-fast layout
//!
//! The stages read per-graph state through two cache-conscious structures:
//!
//! - **Packed aggregates** — [`SegmentIndex::aggregates`] exposes one
//!   16-byte [`GraphAggregate`] record per graph (size, bucket, distinct
//!   runs, max run multiplicity), so the stage-1/2 sweep streams one
//!   contiguous array instead of gathering from four parallel vectors.
//! - **Adaptive postings cursors** — [`PostingsCursors`] walks each query
//!   run's postings list with a monotone cursor that is *reused across
//!   sub-ranges* (sharded scans do O(postings) total work, not a fresh
//!   binary search per shard) and locates each range start adaptively: a
//!   few linear probes for runs dense in the range, exponential galloping
//!   plus binary search for runs whose postings dwarf the range width. The
//!   accumulated intersection is bit-identical to the linear reference walk
//!   ([`FilterCascade::intersections_linear`]) because `u32` addition is
//!   associative and each posting is visited exactly once.
//!
//! The per-query stage *planner* built on top of these lives in
//! [`planner`].

pub mod planner;

use std::ops::Range;

use gbd_graph::FlatBranchSet;

use crate::database::{BucketRun, GraphAggregate, GraphDatabase, Posting};
use crate::offline::OfflineIndex;
use crate::posterior_cache::PosteriorCache;

/// The slice of database structure the filter cascade reads, abstracted so
/// the same cascade code prunes any *segment*: the immutable base
/// [`GraphDatabase`] or the append-only delta segment of
/// [`crate::DynamicDatabase`]. Graph indices are segment-local.
pub trait SegmentIndex {
    /// The packed per-graph scan aggregates, one 16-byte record per graph
    /// in segment-local index order. This is the array the scan kernel's
    /// chunked stage-1/2 sweep streams; the per-graph accessors below are
    /// derived views of it.
    fn aggregates(&self) -> &[GraphAggregate];

    /// The maximal constant-bucket index intervals over
    /// [`Self::aggregates`], ascending and covering `0..segment_len`. The
    /// scan kernel's stage-1 sweep classifies each interval with one bucket
    /// plan lookup and a mask merge instead of a branch per graph; segments
    /// stored grouped by size (the common case) collapse to a handful of
    /// long runs.
    fn bucket_runs(&self) -> &[BucketRun];

    /// Number of graphs in the segment.
    fn segment_len(&self) -> usize {
        self.aggregates().len()
    }

    /// Vertex count of the segment's `i`-th graph.
    fn size_of(&self, i: usize) -> usize {
        self.aggregates()[i].size as usize
    }

    /// Number of distinct branch runs of the segment's `i`-th graph.
    fn distinct_runs(&self, i: usize) -> usize {
        self.aggregates()[i].runs as usize
    }

    /// Largest run multiplicity of the segment's `i`-th graph.
    fn max_run_count(&self, i: usize) -> u32 {
        self.aggregates()[i].max_run
    }

    /// Index of the `i`-th graph's vertex count in
    /// [`Self::distinct_sizes`] — its *size bucket*.
    fn bucket_of(&self, i: usize) -> usize {
        self.aggregates()[i].bucket as usize
    }

    /// The distinct vertex counts occurring in the segment, in a fixed
    /// order. `bucket_of` indexes into this slice; per-size cutoff tables
    /// are computed once per entry and shared by every graph in the bucket.
    fn distinct_sizes(&self) -> &[usize];

    /// The `(graph, count)` postings of one branch id, sorted by
    /// segment-local graph index. Ids the segment has never stored — the
    /// unknown sentinel, or ids interned after this segment was sealed —
    /// yield an empty list rather than a panic; that is what makes a query
    /// flattened against a *newer* catalog safe to run against an *older*
    /// segment.
    fn postings_of(&self, branch_id: u32) -> &[Posting];

    /// The flat branch runs of the segment's `i`-th graph — the merge-path
    /// fallback when the cascade is disabled.
    fn flat_view(&self, i: usize) -> gbd_graph::FlatBranchView<'_>;
}

impl SegmentIndex for GraphDatabase {
    fn aggregates(&self) -> &[GraphAggregate] {
        GraphDatabase::aggregates(self)
    }

    fn bucket_runs(&self) -> &[BucketRun] {
        GraphDatabase::bucket_runs(self)
    }

    fn distinct_sizes(&self) -> &[usize] {
        GraphDatabase::distinct_sizes(self)
    }

    fn postings_of(&self, branch_id: u32) -> &[Posting] {
        if (branch_id as usize) < self.catalog().len() {
            self.postings(branch_id)
        } else {
            &[]
        }
    }

    fn flat_view(&self, i: usize) -> gbd_graph::FlatBranchView<'_> {
        self.flat(i)
    }
}

/// Computes the accept/reject regions of the memoized posterior for one
/// extended size: the largest contiguous accepting prefix `{0, …}` whose
/// posteriors all clear `gamma` and the largest contiguous rejecting suffix
/// (up to `cap`) whose posteriors all miss it. Shared by
/// [`crate::QueryEngine`] and the dynamic engine so both resolve graphs from
/// the *same* regions.
///
/// `cap` only bounds how far the regions extend — a ϕ beyond it always falls
/// back to a posterior comparison — so an over- or under-estimated cap can
/// never change a search result, only how often the fallback runs.
pub fn compute_size_decision(
    cache: &PosteriorCache,
    index: &OfflineIndex,
    gamma: f64,
    extended_size: usize,
    cap: u64,
) -> SizeDecision {
    let mut accept_max = None;
    for phi in 0..=cap {
        if cache.posterior(index, extended_size, phi) >= gamma {
            accept_max = Some(phi);
        } else {
            break;
        }
    }
    let mut reject_min = cap + 1;
    for phi in (0..=cap).rev() {
        // Mirror the scan's `posterior >= gamma` branch exactly, so a
        // NaN-producing model fault could never flip a decision.
        if cache.posterior(index, extended_size, phi) >= gamma {
            break;
        }
        reject_min = phi;
    }
    SizeDecision {
        extended_size,
        cap,
        accept_max,
        reject_min,
    }
}

/// Computes the ranked-query counterpart of [`compute_size_decision`]: the
/// suffix-maximum table of the memoized posterior for one extended size,
/// `suffix_max[ϕ] = max{Φ(ϕ') : ϕ ≤ ϕ' ≤ cap}`. Shared by
/// [`crate::QueryEngine`] and [`crate::DynamicEngine`] so both prune ranked
/// scans from the *same* table.
///
/// Unlike a [`SizeDecision`], which is fixed by `γ`, a [`RankDecision`]
/// accepts the bound at *query time* ([`RankDecision::rejects_from`],
/// [`RankDecision::cutoff`]): the running k-th-best posterior of a top-k heap
/// tightens as the scan proceeds, and the same table serves every value it
/// takes. No monotonicity of `Φ` in ϕ is assumed — the suffix maximum is
/// conservative by construction.
pub fn compute_rank_decision(
    cache: &PosteriorCache,
    index: &OfflineIndex,
    extended_size: usize,
    cap: u64,
) -> RankDecision {
    let mut suffix_max = vec![0.0f64; cap as usize + 1];
    let mut best = f64::NEG_INFINITY;
    for phi in (0..=cap).rev() {
        let posterior = cache.posterior(index, extended_size, phi);
        // `max` via total_cmp so a NaN-producing model fault propagates into
        // the table (making the bound unable to prune) instead of vanishing.
        if best.total_cmp(&posterior) == std::cmp::Ordering::Less {
            best = posterior;
        }
        suffix_max[phi as usize] = best;
    }
    RankDecision {
        extended_size,
        cap,
        suffix_max,
    }
}

/// The per-extended-size suffix-maximum table of the posterior used by
/// ranked (top-k) scans — see [`compute_rank_decision`].
///
/// A graph whose ϕ is known to be at least `lb` can reach a posterior of at
/// most `suffix_max[lb]`; once a top-k heap is full, any graph with
/// `suffix_max[lb] ≤ bound` (the running k-th-best posterior) can be
/// rejected without resolving ϕ or the posterior at all. ϕ values beyond
/// `cap` are not covered and always fall back to exact resolution, so an
/// under-estimated cap can never change a result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankDecision {
    /// The extended size `|V'1|` this table applies to.
    pub extended_size: usize,
    /// Largest ϕ the table covers.
    pub cap: u64,
    /// `suffix_max[ϕ] = max{Φ(ϕ') : ϕ ≤ ϕ' ≤ cap}`, non-increasing in ϕ.
    suffix_max: Vec<f64>,
}

impl RankDecision {
    /// The best posterior any ϕ in `[phi_lb, cap]` can reach, or `None` when
    /// `phi_lb` lies beyond the table's cap (nothing can be guaranteed).
    pub fn best_from(&self, phi_lb: u64) -> Option<f64> {
        self.suffix_max.get(phi_lb as usize).copied()
    }

    /// Returns `true` when a graph whose ϕ interval is `[phi_lb, phi_ub]`
    /// provably cannot **strictly beat** `bound` — the sound rejection test
    /// of a full top-k heap scanning in ascending id order, where an equal
    /// posterior already loses the tie-break (see
    /// [`crate::topk::TopKHeap::threshold`]).
    ///
    /// Conservative on both ends: `phi_ub` must not exceed the cap (a ϕ
    /// beyond the table could have any posterior) and the comparison uses
    /// the heap's own total order ([`f64::total_cmp`]) — not IEEE `<=` — so
    /// `-0.0` vs `0.0` (and a NaN-producing model fault) order identically
    /// on the pruning side and the admission side.
    pub fn rejects_from(&self, phi_lb: u64, phi_ub: u64, bound: f64) -> bool {
        debug_assert!(phi_lb <= phi_ub);
        if phi_ub > self.cap {
            return false;
        }
        match self.best_from(phi_lb) {
            Some(best) => best.total_cmp(&bound) != std::cmp::Ordering::Greater,
            None => false,
        }
    }

    /// The ϕ cutoff induced by `bound`: the smallest ϕ whose whole suffix
    /// (up to the cap) cannot strictly beat `bound`. Every graph whose ϕ
    /// interval lies inside `[cutoff, cap]` is rejected by
    /// [`Self::rejects_from`]; a tighter (larger) bound yields a smaller
    /// cutoff, rejecting more graphs. Returns `cap + 1` when even ϕ = cap
    /// could still beat the bound.
    ///
    /// This is the *diagnostic* form of the rejection rule — useful for
    /// inspecting how much a given bound prunes (the unit tests prove
    /// `rejects_from(lb, cap, b) ⟺ lb ≥ cutoff(b)`). Scans never call it:
    /// the bound tightens per admission, so the per-graph `O(1)` table read
    /// of [`Self::rejects_from`] beats re-deriving the cutoff by binary
    /// search.
    pub fn cutoff(&self, bound: f64) -> u64 {
        self.suffix_max
            .partition_point(|best| best.total_cmp(&bound) == std::cmp::Ordering::Greater)
            as u64
    }
}

/// The per-extended-size accept/reject regions of the posterior, shared by
/// every graph in a size bucket.
///
/// Built by `QueryEngine::size_decision` from the memoized posterior: the
/// accepting prefix is the largest `ϕ` range `{0, …, accept_max}` whose
/// posteriors all clear `γ`, the rejecting suffix is the smallest
/// `reject_min` such that every `ϕ ∈ [reject_min, cap]` misses `γ`. Values
/// between the two regions (possible when the posterior is non-monotone in
/// ϕ) always fall back to a memoized posterior comparison, so the regions
/// can never change a result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeDecision {
    /// The extended size `|V'1|` this decision applies to.
    pub extended_size: usize,
    /// Largest ϕ the decision covers; ϕ beyond `cap` is never classified.
    pub cap: u64,
    /// Largest ϕ of the contiguous accepting prefix (`None` when ϕ = 0
    /// already misses `γ`).
    pub accept_max: Option<u64>,
    /// Smallest ϕ of the contiguous rejecting suffix (`cap + 1` when even
    /// ϕ = cap clears `γ`).
    pub reject_min: u64,
}

impl SizeDecision {
    /// Returns `true` when `Φ(ϕ) ≥ γ` is guaranteed.
    pub fn accepts(&self, phi: u64) -> bool {
        matches!(self.accept_max, Some(t) if phi <= t)
    }

    /// Returns `true` when `Φ(ϕ) < γ` is guaranteed.
    pub fn rejects(&self, phi: u64) -> bool {
        phi >= self.reject_min && phi <= self.cap
    }

    /// Classifies a whole ϕ interval: `Some(true)` when every value in
    /// `[lb, ub]` is accepted, `Some(false)` when every value is rejected,
    /// `None` when the interval straddles a region boundary.
    pub fn classify_interval(&self, lb: u64, ub: u64) -> Option<bool> {
        debug_assert!(lb <= ub);
        if self.accepts(ub) {
            // The prefix is contiguous from 0, so accepting `ub` accepts all.
            Some(true)
        } else if lb >= self.reject_min && ub <= self.cap {
            Some(false)
        } else {
            None
        }
    }
}

/// Per-query pruning state: the query's flat runs plus the handful of
/// aggregates the bound stages read.
///
/// The cascade is variant-aware: for GBDA-V2 the observed distance is the
/// weighted `VGBD = max{|V1|, |V2|} − w · |B_Q ∩ B_G|` (Equation 26), which
/// is monotone in the intersection only for `w ≥ 0` — [`Self::bounds_usable`]
/// gates the bound stages accordingly, while the count filter stays exact
/// for any weight.
#[derive(Debug)]
pub struct FilterCascade<'a, S: SegmentIndex = GraphDatabase> {
    database: &'a S,
    query: &'a FlatBranchSet,
    /// `|Q|` — all query branches, unknowns included (what GBD divides on).
    query_total: usize,
    /// Query branches with a catalogued id (only these can intersect).
    query_known: usize,
    /// Number of distinct catalogued query runs.
    query_known_runs: usize,
    /// Largest multiplicity among the catalogued query runs.
    query_max_run: u32,
    /// `Some(w)` for GBDA-V2, `None` for the plain GBD.
    weight: Option<f64>,
}

impl<'a, S: SegmentIndex> FilterCascade<'a, S> {
    /// Builds the cascade state for one query (already flattened against the
    /// catalog the segment's runs are interned in — or any *extension* of
    /// it). `weight` is `Some` for the GBDA-V2 variant.
    pub fn new(database: &'a S, query: &'a FlatBranchSet, weight: Option<f64>) -> Self {
        let view = query.as_view();
        FilterCascade {
            database,
            query,
            query_total: view.len(),
            query_known: view.known_len(),
            query_known_runs: view.known_runs().len(),
            query_max_run: view.max_known_run_count(),
            weight,
        }
    }

    /// Whether the bound stages may be used: the observed distance must be
    /// monotone non-increasing in the intersection size. Always true for the
    /// plain GBD; true for the weighted variant only when `w ≥ 0`.
    pub fn bounds_usable(&self) -> bool {
        self.weight.is_none_or(|w| w >= 0.0)
    }

    /// The observed distance for a graph of `graph_total` vertices with
    /// intersection `inter` — exactly the arithmetic of
    /// [`gbd_graph::FlatBranchView::gbd`] / `weighted_gbd` plus the engine's
    /// rounding, so a value computed from the count filter is bit-identical
    /// to one computed from a merge.
    pub fn phi_from_intersection(&self, graph_total: usize, inter: usize) -> u64 {
        let max = self.query_total.max(graph_total);
        match self.weight {
            None => (max - inter) as u64,
            Some(w) => {
                let value = max as f64 - w * inter as f64;
                value.round().max(0.0) as u64
            }
        }
    }

    /// Stage 1 — the L1 size/total-count bound, constant over a size bucket:
    /// `(ϕ_lb, ϕ_ub)` for any graph with `graph_total` vertices.
    ///
    /// Only catalogued query branches can match, so
    /// `|B_Q ∩ B_G| ≤ min(known(Q), |G|)` and ϕ is at least the distance at
    /// that intersection; ϕ is at most the distance at intersection 0.
    pub fn size_bounds(&self, graph_total: usize) -> (u64, u64) {
        let inter_ub = self.query_known.min(graph_total);
        (
            self.phi_from_intersection(graph_total, inter_ub),
            self.phi_from_intersection(graph_total, 0),
        )
    }

    /// Stage 2's intersection upper bound for one packed aggregate record:
    /// at most `min(d_Q, d_G)` distinct branches can match, each
    /// contributing at most `min(maxrun_Q, maxrun_G)` copies, and never more
    /// than `min(known(Q), |G|)` in total. Computed in `u64` so the
    /// runs × per-run product cannot overflow; the result fits `u32` because
    /// it is capped by the graph's `u32` size.
    pub fn stage2_inter_ub(&self, agg: GraphAggregate) -> u32 {
        let runs = (self.query_known_runs as u64).min(agg.runs as u64);
        let per_run = (self.query_max_run as u64).min(agg.max_run as u64);
        (self.query_known as u64)
            .min(agg.size as u64)
            .min(runs * per_run) as u32
    }

    /// The ϕ value of every possible intersection for a graph of
    /// `graph_total` vertices: `table[inter] = ϕ(inter)` for
    /// `inter ∈ [0, min(known(Q), graph_total)]`. Non-increasing whenever
    /// [`Self::bounds_usable`] holds, so `table[0]` is the stage-1 upper
    /// bound and the last entry the stage-1 lower bound — the raw material
    /// the scan kernel's per-bucket plans are compiled from.
    pub fn phi_table(&self, graph_total: usize) -> Vec<u64> {
        let inter_max = self.query_known.min(graph_total);
        (0..=inter_max)
            .map(|inter| self.phi_from_intersection(graph_total, inter))
            .collect()
    }

    /// One ϕ table per size bucket of the segment, in
    /// [`SegmentIndex::distinct_sizes`] order.
    pub fn bucket_phi_tables(&self) -> Vec<Vec<u64>> {
        self.database
            .distinct_sizes()
            .iter()
            .map(|&size| self.phi_table(size))
            .collect()
    }

    /// Stage 2 — the distinct-run refinement for one graph. A thin per-graph
    /// view of [`Self::stage2_inter_ub`], so the scalar and chunked sweeps
    /// compute the same bound by construction.
    pub fn refined_bounds(&self, graph: usize) -> (u64, u64) {
        let agg = self.database.aggregates()[graph];
        let inter_ub = self.stage2_inter_ub(agg) as usize;
        (
            self.phi_from_intersection(agg.size as usize, inter_ub),
            self.phi_from_intersection(agg.size as usize, 0),
        )
    }

    /// Builds the resumable per-run cursors for stage 3. One set of cursors
    /// serves an entire ascending scan: feeding consecutive sub-ranges to
    /// [`PostingsCursors::accumulate`] walks every postings list exactly
    /// once in total, however the scan is chunked or sharded.
    pub fn cursors(&self) -> PostingsCursors<'a> {
        PostingsCursors {
            runs: self
                .query
                .runs()
                .iter()
                .map(|run| CursorRun {
                    postings: self.database.postings_of(run.id),
                    count: run.count,
                    pos: 0,
                })
                .collect(),
        }
    }

    /// Stage 3 — the count filter: walks the query's runs over the inverted
    /// postings and accumulates the **exact** multiset intersection
    /// `|B_Q ∩ B_G|` for every graph in `range` (indexed relative to
    /// `range.start`). Graphs sharing no branch with the query are never
    /// touched and keep intersection 0. Query runs the segment has no
    /// postings for — unknown branches, or ids interned after the segment
    /// was built — contribute nothing, exactly as in a merge.
    ///
    /// One-shot convenience over [`Self::cursors`]; a scan that visits many
    /// ranges should hold one [`PostingsCursors`] instead.
    pub fn intersections(&self, range: Range<usize>) -> Vec<u32> {
        let mut acc = vec![0u32; range.len()];
        self.cursors().accumulate(range, &mut acc);
        acc
    }

    /// The pre-adaptive reference implementation of [`Self::intersections`]:
    /// a fresh `partition_point` per run followed by a linear walk. Kept as
    /// the equivalence oracle for the adaptive kernel (property tests and
    /// `bench_scan_kernel --check` compare against it) and as the baseline
    /// the micro-bench times.
    pub fn intersections_linear(&self, range: Range<usize>) -> Vec<u32> {
        let mut acc = vec![0u32; range.len()];
        for run in self.query.runs() {
            let postings = self.database.postings_of(run.id);
            let lo = postings.partition_point(|p| (p.graph as usize) < range.start);
            for posting in &postings[lo..] {
                let graph = posting.graph as usize;
                if graph >= range.end {
                    break;
                }
                acc[graph - range.start] += run.count.min(posting.count);
            }
        }
        acc
    }

    /// The exact observed distance for one graph given its accumulated
    /// intersection from [`Self::intersections`].
    pub fn phi_exact(&self, graph: usize, intersection: u32) -> u64 {
        self.phi_from_intersection(self.database.size_of(graph), intersection as usize)
    }
}

/// How many in-order probes the cursor advance tries before switching to
/// galloping. Small enough that a dense run never pays a binary search to
/// move one or two postings forward, large enough that galloping only kicks
/// in when it saves real work.
const LINEAR_PROBES: usize = 8;

/// A run whose remaining postings exceed `GALLOP_DENSITY ×` the range width
/// is treated as *rare in range*: most of its postings lie outside the
/// range, so the cursor gallops straight to the range start instead of
/// probing linearly first.
const GALLOP_DENSITY: usize = 4;

/// One query run's resumable position in its postings list.
#[derive(Debug)]
struct CursorRun<'a> {
    postings: &'a [Posting],
    count: u32,
    pos: usize,
}

/// The adaptive stage-3 intersection kernel: per-run monotone cursors over
/// the query's postings lists, fed ascending, non-overlapping graph ranges.
///
/// Two properties make it fast without changing a single accumulated bit:
///
/// - **Cursor reuse** — each run remembers where the previous range left
///   off, so a scan split into chunks or shards walks every postings list
///   exactly once in total. The old per-range `partition_point` from index 0
///   cost an extra `O(runs · log postings)` per sub-range.
/// - **Adaptive range location** — advancing a cursor to the next range
///   start uses up to `LINEAR_PROBES` in-order probes (the common dense
///   case: the next posting is adjacent), then exponential galloping plus a
///   binary search over the located window (the rare case: a long gap).
///   Runs whose remaining postings dwarf the range width
///   (`GALLOP_DENSITY`) skip the probes and gallop immediately.
///
/// Accumulation within the range is a plain linear walk — every posting in
/// range must be added exactly once, and `u32` addition commutes, so the
/// result is bit-identical to [`FilterCascade::intersections_linear`].
#[derive(Debug)]
pub struct PostingsCursors<'a> {
    runs: Vec<CursorRun<'a>>,
}

impl PostingsCursors<'_> {
    /// Accumulates the exact multiset intersection for every graph in
    /// `range` into `acc` (indexed relative to `range.start`, which must
    /// hold `range.len()` zero-initialized slots). Ranges must be fed in
    /// ascending, non-overlapping order — the cursors only move forward.
    pub fn accumulate(&mut self, range: Range<usize>, acc: &mut [u32]) {
        debug_assert_eq!(acc.len(), range.len());
        if range.is_empty() {
            return;
        }
        for run in &mut self.runs {
            let remaining = run.postings.len() - run.pos;
            let probe = remaining <= GALLOP_DENSITY.saturating_mul(range.len());
            let mut pos = advance(run.postings, run.pos, range.start, probe);
            while pos < run.postings.len() {
                let posting = run.postings[pos];
                let graph = posting.graph as usize;
                if graph >= range.end {
                    break;
                }
                acc[graph - range.start] += run.count.min(posting.count);
                pos += 1;
            }
            run.pos = pos;
        }
    }
}

/// Advances a cursor over a sorted postings list to the first posting with
/// `graph ≥ target`. With `probe` set, up to `LINEAR_PROBES` in-order
/// comparisons run first; either way the fallback is exponential galloping
/// (doubling steps from the current position) finished by a binary search
/// over the overshot window — `O(log gap)` instead of `O(gap)`.
pub(crate) fn advance(postings: &[Posting], mut pos: usize, target: usize, probe: bool) -> usize {
    if probe {
        let limit = (pos + LINEAR_PROBES).min(postings.len());
        while pos < limit {
            if postings[pos].graph as usize >= target {
                return pos;
            }
            pos += 1;
        }
    }
    if pos >= postings.len() || postings[pos].graph as usize >= target {
        return pos;
    }
    // Gallop: postings[pos] is still below the target, double the step until
    // the window [lo, lo + step] brackets it, then binary-search the window.
    let mut lo = pos;
    let mut step = 1usize;
    while lo + step < postings.len() && (postings[lo + step].graph as usize) < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(postings.len());
    lo + postings[lo..hi].partition_point(|p| (p.graph as usize) < target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::{BranchMultiset, GeneratorConfig, Graph, LabelAlphabets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (GraphDatabase, Vec<Graph>) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut graphs = Vec::new();
        for size in [6usize, 9, 12] {
            let cfg = GeneratorConfig::new(size, 2.0).with_alphabets(LabelAlphabets::new(4, 3));
            graphs.extend(cfg.generate_many(8, &mut rng).unwrap());
        }
        // Queries from a different seed so some branches are unknown.
        let cfg = GeneratorConfig::new(10, 2.0).with_alphabets(LabelAlphabets::new(4, 3));
        let queries = cfg.generate_many(4, &mut rng).unwrap();
        (GraphDatabase::from_graphs(graphs), queries)
    }

    #[test]
    fn count_filter_reproduces_the_merge_intersection() {
        let (db, queries) = setup();
        for query in &queries {
            let multiset = BranchMultiset::from_graph(query);
            let flat = db.catalog().flatten_lookup(&multiset);
            let cascade = FilterCascade::new(&db, &flat, None);
            let acc = cascade.intersections(0..db.len());
            for (i, &acc_i) in acc.iter().enumerate() {
                let merged = flat.as_view().intersection_size(db.flat(i));
                assert_eq!(acc_i as usize, merged, "intersection diverges on {i}");
                assert_eq!(
                    cascade.phi_exact(i, acc_i),
                    flat.as_view().gbd(db.flat(i)) as u64,
                    "exact ϕ diverges on {i}"
                );
            }
        }
    }

    #[test]
    fn count_filter_respects_sub_ranges() {
        let (db, queries) = setup();
        let multiset = BranchMultiset::from_graph(&queries[0]);
        let flat = db.catalog().flatten_lookup(&multiset);
        let cascade = FilterCascade::new(&db, &flat, None);
        let full = cascade.intersections(0..db.len());
        for range in [0..5usize, 5..db.len(), 11..12, 3..3] {
            let partial = cascade.intersections(range.clone());
            assert_eq!(partial.len(), range.len());
            for (offset, value) in partial.iter().enumerate() {
                assert_eq!(*value, full[range.start + offset]);
            }
        }
    }

    #[test]
    fn bounds_sandwich_the_exact_distance() {
        let (db, queries) = setup();
        for weight in [None, Some(0.0), Some(0.4), Some(1.0)] {
            for query in &queries {
                let multiset = BranchMultiset::from_graph(query);
                let flat = db.catalog().flatten_lookup(&multiset);
                let cascade = FilterCascade::new(&db, &flat, weight);
                assert!(cascade.bounds_usable());
                let acc = cascade.intersections(0..db.len());
                for (i, &acc_i) in acc.iter().enumerate() {
                    let phi = cascade.phi_exact(i, acc_i);
                    let (lb1, ub1) = cascade.size_bounds(db.size_of(i));
                    let (lb2, ub2) = cascade.refined_bounds(i);
                    assert!(lb1 <= phi && phi <= ub1, "stage-1 bound violated on {i}");
                    assert!(lb2 <= phi && phi <= ub2, "stage-2 bound violated on {i}");
                    assert!(lb2 >= lb1, "stage 2 must refine stage 1");
                }
            }
        }
    }

    #[test]
    fn negative_weights_disable_the_bound_stages() {
        let (db, queries) = setup();
        let multiset = BranchMultiset::from_graph(&queries[0]);
        let flat = db.catalog().flatten_lookup(&multiset);
        let cascade = FilterCascade::new(&db, &flat, Some(-0.5));
        assert!(!cascade.bounds_usable());
        // The count filter stays exact regardless of the weight.
        let acc = cascade.intersections(0..db.len());
        for (i, &acc_i) in acc.iter().enumerate() {
            let expected = flat.as_view().weighted_gbd(db.flat(i), -0.5);
            assert_eq!(
                cascade.phi_exact(i, acc_i),
                expected.round().max(0.0) as u64
            );
        }
    }

    #[test]
    fn cascade_is_well_defined_on_an_empty_database() {
        let db = GraphDatabase::from_graphs(Vec::new());
        let query = BranchMultiset::from_graph(&{
            let mut rng = StdRng::seed_from_u64(3);
            GeneratorConfig::new(6, 1.8)
                .with_alphabets(LabelAlphabets::new(3, 2))
                .generate(&mut rng)
                .unwrap()
        });
        let flat = db.catalog().flatten_lookup(&query);
        let cascade = FilterCascade::new(&db, &flat, None);
        assert!(cascade.bounds_usable());
        assert!(cascade.intersections(0..0).is_empty());
        // Every query branch is unknown to an empty catalog, so the size
        // bound degenerates to "nothing can intersect".
        let (lb, ub) = cascade.size_bounds(0);
        assert_eq!(lb, ub);
        assert_eq!(ub, query.len() as u64);
    }

    #[test]
    fn cascade_is_exact_on_a_single_graph_database() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = GeneratorConfig::new(8, 2.0).with_alphabets(LabelAlphabets::new(4, 3));
        let only = cfg.generate(&mut rng).unwrap();
        let query = cfg.generate(&mut rng).unwrap();
        let db = GraphDatabase::from_graphs(vec![only]);
        let multiset = BranchMultiset::from_graph(&query);
        let flat = db.catalog().flatten_lookup(&multiset);
        let cascade = FilterCascade::new(&db, &flat, None);
        let acc = cascade.intersections(0..1);
        assert_eq!(acc.len(), 1);
        assert_eq!(
            cascade.phi_exact(0, acc[0]),
            flat.as_view().gbd(db.flat(0)) as u64
        );
        let (lb1, ub1) = cascade.size_bounds(db.size_of(0));
        let (lb2, ub2) = cascade.refined_bounds(0);
        let phi = cascade.phi_exact(0, acc[0]);
        assert!(lb1 <= phi && phi <= ub1);
        assert!(lb2 <= phi && phi <= ub2);
        // Self-query: the exact ϕ is 0 and the bounds must allow it.
        let self_flat = db.catalog().flatten_graph(db.graph(0));
        let self_cascade = FilterCascade::new(&db, &self_flat, None);
        let self_acc = self_cascade.intersections(0..1);
        assert_eq!(self_cascade.phi_exact(0, self_acc[0]), 0);
        assert_eq!(self_cascade.refined_bounds(0).0, 0);
    }

    #[test]
    fn advance_agrees_with_partition_point_on_adversarial_shapes() {
        let shapes: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![7],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
            vec![0, 1, 2, 10, 11, 100, 1000, 1001],
            vec![5, 5, 5], // duplicate graph ids cannot occur, but stay safe
            (0..200).collect(),
            (0..200).map(|g| g * 17).collect(),
        ];
        for graphs in shapes {
            let postings: Vec<Posting> = graphs
                .iter()
                .map(|&g| Posting { graph: g, count: 1 })
                .collect();
            for start in 0..=postings.len() {
                for target in 0..1100usize {
                    let expected =
                        start + postings[start..].partition_point(|p| (p.graph as usize) < target);
                    for probe in [false, true] {
                        // A cursor never sits past a posting below the
                        // target, so only starts at or before the answer
                        // are reachable states.
                        if start <= expected {
                            assert_eq!(
                                advance(&postings, start, target, probe),
                                expected,
                                "start {start}, target {target}, probe {probe}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cursors_match_the_linear_walk_over_any_chunking() {
        let (db, queries) = setup();
        for query in &queries {
            let multiset = BranchMultiset::from_graph(query);
            let flat = db.catalog().flatten_lookup(&multiset);
            let cascade = FilterCascade::new(&db, &flat, None);
            let full = cascade.intersections_linear(0..db.len());
            // Split the scan range at every boundary, including empty and
            // single-graph chunks, reusing one cursor set across chunks.
            for width in 1..=db.len() {
                let mut cursors = cascade.cursors();
                let mut acc = Vec::new();
                let mut start = 0;
                while start < db.len() {
                    let end = (start + width).min(db.len());
                    let mut chunk = vec![0u32; end - start];
                    cursors.accumulate(start..end, &mut chunk);
                    acc.extend_from_slice(&chunk);
                    start = end;
                }
                assert_eq!(acc, full, "chunk width {width}");
            }
        }
    }

    #[test]
    fn postings_of_is_total_over_any_branch_id() {
        let (db, queries) = setup();
        // In-range ids go to the CSR; unseen and sentinel ids are empty
        // rather than a panic — the segment-awareness the dynamic layer
        // relies on.
        assert!(db.postings_of(0).len() <= db.postings_len());
        assert!(db.postings_of(db.catalog().len() as u32).is_empty());
        assert!(db.postings_of(u32::MAX).is_empty());
        let _ = queries;
    }

    #[test]
    fn rank_decision_is_the_exact_suffix_maximum() {
        use crate::config::GbdaConfig;
        use crate::posterior_cache::PosteriorCache;

        let (db, _) = setup();
        let config = GbdaConfig::new(4, 0.8).with_sample_pairs(120);
        let index = crate::offline::OfflineIndex::build(&db, &config).unwrap();
        let cache = PosteriorCache::new(config.tau_hat);
        let cap = db.max_vertices() as u64;
        for &size in db.distinct_sizes() {
            let decision = compute_rank_decision(&cache, &index, size, cap);
            assert_eq!(decision.extended_size, size);
            assert_eq!(decision.cap, cap);
            for lb in 0..=cap {
                let expected = (lb..=cap)
                    .map(|phi| cache.posterior(&index, size, phi))
                    .fold(f64::NEG_INFINITY, f64::max);
                let best = decision.best_from(lb).unwrap();
                assert_eq!(best.to_bits(), expected.to_bits(), "size {size}, lb {lb}");
                // Every posterior in the suffix is really dominated.
                for phi in lb..=cap {
                    assert!(cache.posterior(&index, size, phi) <= best);
                }
            }
            assert_eq!(decision.best_from(cap + 1), None);
        }
    }

    #[test]
    fn rank_rejection_matches_the_cutoff_and_is_conservative() {
        use crate::config::GbdaConfig;
        use crate::posterior_cache::PosteriorCache;

        let (db, _) = setup();
        let config = GbdaConfig::new(4, 0.8).with_sample_pairs(120);
        let index = crate::offline::OfflineIndex::build(&db, &config).unwrap();
        let cache = PosteriorCache::new(config.tau_hat);
        let cap = db.max_vertices() as u64;
        let size = db.distinct_sizes()[0];
        let decision = compute_rank_decision(&cache, &index, size, cap);
        for bound in [0.0f64, 0.2, 0.5, 0.9, 1.0] {
            let cutoff = decision.cutoff(bound);
            assert!(cutoff <= cap + 1);
            for lb in 0..=cap {
                let rejected = decision.rejects_from(lb, cap, bound);
                assert_eq!(
                    rejected,
                    lb >= cutoff,
                    "bound {bound}, lb {lb}: rejection must equal the cutoff test"
                );
                if rejected {
                    // Nothing in the suffix can strictly beat the bound.
                    for phi in lb..=cap {
                        assert!(cache.posterior(&index, size, phi) <= bound);
                    }
                }
            }
            // A ϕ interval leaking past the cap is never rejected.
            assert!(!decision.rejects_from(0, cap + 1, 2.0));
        }
        // A tighter bound never rejects fewer graphs.
        assert!(decision.cutoff(0.9) <= decision.cutoff(0.1));
    }

    #[test]
    fn size_decision_classifies_intervals_conservatively() {
        let d = SizeDecision {
            extended_size: 10,
            cap: 10,
            accept_max: Some(2),
            reject_min: 6,
        };
        assert!(d.accepts(0) && d.accepts(2) && !d.accepts(3));
        assert!(d.rejects(6) && d.rejects(10) && !d.rejects(5) && !d.rejects(11));
        assert_eq!(d.classify_interval(0, 2), Some(true));
        assert_eq!(d.classify_interval(6, 10), Some(false));
        assert_eq!(d.classify_interval(2, 6), None); // straddles the gap
        assert_eq!(d.classify_interval(5, 5), None); // inside the gap
        assert_eq!(d.classify_interval(8, 11), None); // exceeds the cap
        let none = SizeDecision {
            extended_size: 10,
            cap: 10,
            accept_max: None,
            reject_min: 0,
        };
        assert!(!none.accepts(0));
        assert_eq!(none.classify_interval(0, 10), Some(false));
    }
}
