//! The one generic scan kernel behind every online search path.
//!
//! The paper's online phase is a single conceptual operation: scan candidate
//! graphs, prune through the [`FilterCascade`], resolve the observed distance
//! ϕ and the memoized posterior `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]`, and deliver
//! survivors — under either a *static* probability threshold γ (Algorithm 1)
//! or a *tightening* top-k rank bound. [`ScanKernel::scan`] implements that
//! loop exactly once; every public search API is a thin instantiation of it
//! over a cutoff policy ([`Cutoff`]), a result sink ([`Sink`]) and a segment
//! ([`SegmentIndex`]).
//!
//! # The Cutoff × Sink × SegmentIndex matrix
//!
//! | public API | cutoff | sink | segment(s) |
//! |---|---|---|---|
//! | [`QueryEngine::search`] / `search_batch` | [`StaticPhi`] | [`CollectAll`] | [`GraphDatabase`] |
//! | [`QueryEngine::search_top_k`] / `search_top_k_batch` | [`TighteningRank`] | [`TopKSink`] | [`GraphDatabase`] |
//! | [`QueryEngine::search_streaming`] | [`StaticPhi`] | [`Subscriber`] | [`GraphDatabase`] |
//! | [`DynamicEngine::search`] | [`StaticPhi`] | [`CollectAll`] | base + delta under tombstone masks |
//! | [`DynamicEngine::search_top_k`] | [`TighteningRank`] | [`TopKSink`] | base + delta (one shared heap) |
//! | [`DynamicEngine::search_streaming`] | [`StaticPhi`] | [`Subscriber`] | base + delta |
//!
//! Not every cell of the matrix is meaningful: a ranked scan needs resolved
//! posteriors for every candidate it keeps, so [`TighteningRank`] never
//! *accepts* a graph early — pairing [`TopKSink`] with a cutoff that does
//! ([`StaticPhi`] with a non-empty accept region) violates the sink contract
//! and panics. Every other pairing composes freely.
//!
//! # Shard drivers
//!
//! The two parallel execution scaffolds also live here so the threshold,
//! ranked and batch paths share them: [`scan_shards`] (contiguous
//! range-sharded scans, order-preserving) and [`run_batch`] (the
//! work-stealing per-query cursor). Per-shard ranked results are merged with
//! [`crate::topk::merge_ranked`]; the canonical tie-break total order for
//! *all* ranked results is defined once, by [`crate::topk::rank_order`]
//! (posterior descending via `f64::total_cmp`, then graph id ascending).
//!
//! # The chunked bound sweep
//!
//! With the cascade on, the scan walks the segment's packed
//! [`GraphAggregate`] records in 64-graph chunks. Per chunk it compiles (or
//! reuses) one [`BucketPlan`] per size bucket under the sink's current
//! bound — the stage-1 verdict plus a stage-2 *reject threshold* on the
//! intersection upper bound — and sweeps the chunk's aggregates into
//! branchless accept/reject `u64` words (one comparison-derived bit per
//! graph, no branches in the loop body). Stage-3 postings are accumulated
//! through resumable [`PostingsCursors`], either eagerly per chunk
//! (postings-first) or only for chunks the bounds left undecided
//! (bound-first) — the per-query [`planner`](crate::filter::planner) picks,
//! and [`ScanKernel::with_plan`] applies, the schedule. Accepts and exact
//! resolutions are then delivered in ascending index order; under a
//! tightening rank bound each undecided graph is re-tested against the
//! *freshest* bound before resolving (plans are recompiled when the bound
//! moved), so the chunked sweep reproduces the per-graph scan bit for bit —
//! results and stats counters alike. Bounds only tighten, so chunk-start
//! rejections always remain valid.
//!
//! # Accounting
//!
//! The kernel owns the [`SearchStats`] stage counters. Per scanned, unmasked
//! graph exactly one of the following fires, so
//! `bound_rejected + bound_accepted + rank_rejected + postings_resolved +
//! merged == evaluated` ([`SearchStats::stage_partition`]) holds on every
//! instantiation:
//!
//! * `bound_accepted` / `bound_rejected` — decided by the stage-1 size bound
//!   or the stage-2 distinct-run refinement under a [`StaticPhi`] cutoff;
//! * `rank_rejected` — decided by the same bound stages under a
//!   [`TighteningRank`] cutoff;
//! * `postings_resolved` — survived to the stage-3 count filter, which
//!   resolves the exact ϕ from the inverted postings;
//! * `merged` — cascade disabled; ϕ came from a full flat-run merge.
//!
//! `stage2_decided` additionally counts the subset of bound decisions made
//! specifically by stage 2 — the marginal selectivity the planner's cost
//! model feeds on.
//!
//! [`GraphAggregate`]: crate::database::GraphAggregate
//! [`PostingsCursors`]: crate::filter::PostingsCursors
//! [`QueryEngine::search`]: crate::QueryEngine::search
//! [`QueryEngine::search_top_k`]: crate::QueryEngine::search_top_k
//! [`QueryEngine::search_streaming`]: crate::QueryEngine::search_streaming
//! [`DynamicEngine::search`]: crate::DynamicEngine::search
//! [`DynamicEngine::search_top_k`]: crate::DynamicEngine::search_top_k
//! [`DynamicEngine::search_streaming`]: crate::DynamicEngine::search_streaming
//! [`GraphDatabase`]: crate::GraphDatabase

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gbd_graph::FlatBranchSet;

use crate::filter::planner::QueryPlan;
use crate::filter::{FilterCascade, RankDecision, SegmentIndex, SizeDecision};
use crate::search::SearchStats;
use crate::topk::{RankedHit, TopKHeap};

/// Chunk width of the bound sweep: one `u64` word of per-graph bits.
const CHUNK: usize = 64;

/// Chunks per superchunk: the bound sweep classifies this many chunks in one
/// pass before a single postings accumulation covers them all, amortising
/// the per-(chunk, query-run) cursor setup sixteen-fold. The whole
/// superchunk accumulator (16 × 64 × 4 B = 4 KiB) stays in L1.
const SUPER_CHUNKS: usize = 16;

/// Graphs per superchunk.
const SUPER: usize = SUPER_CHUNKS * CHUNK;

/// The verdict of a cutoff policy on a graph (or a whole ϕ interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundClass {
    /// The graph is provably a hit; no posterior needs to be resolved.
    Accept,
    /// The graph provably cannot be delivered; skip it.
    Reject,
    /// The evidence is inconclusive; fall through to the next stage.
    Undecided,
}

/// One size bucket's compiled verdict under a specific bound: everything
/// the chunked sweep needs to classify a graph of that bucket with two
/// branch-free comparisons.
///
/// `class` is the stage-1 verdict of the bucket's ϕ interval (constant over
/// the bucket). `reject_below` encodes the stage-2 distinct-run refinement:
/// in an [`BoundClass::Undecided`] bucket, a graph is rejected exactly when
/// its intersection upper bound ([`FilterCascade::stage2_inter_ub`]) is
/// `< reject_below` — the ϕ table is non-increasing in the intersection, so
/// the stage-2 interval test collapses to one integer comparison. `0` means
/// stage 2 can never reject in this bucket (or was planned away).
///
/// The remaining three fields pre-compile the cutoff's **stage-3** verdict
/// ([`Cutoff::classify_phi`]) into intersection space, again exploiting the
/// non-increasing ϕ table: for a graph with exact intersection `inter`,
/// `classify_phi(bucket, table[inter])` equals `Accept` iff
/// `inter ≥ accept_from`, `Reject` iff `reject_lo ≤ inter < reject_hi`, and
/// `Undecided` otherwise — so the delivery loop resolves most graphs with
/// three `u32` comparisons and never touches the ϕ table except to feed a
/// posterior lookup. A cutoff that never fast-classifies at stage 3 (the
/// rank bound) compiles the empty thresholds (`u32::MAX`, `0`, `0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketPlan {
    /// Stage-1 verdict, shared by every graph in the bucket.
    pub class: BoundClass,
    /// Stage-2 rejection threshold on the intersection upper bound.
    pub reject_below: u32,
    /// Stage-3: smallest exact intersection that fast-accepts.
    pub accept_from: u32,
    /// Stage-3: start of the fast-rejecting intersection interval.
    pub reject_lo: u32,
    /// Stage-3: one-past-the-end of the fast-rejecting interval.
    pub reject_hi: u32,
}

/// A cutoff policy: how the kernel decides, per graph, whether the filter
/// bounds settle the outcome or the posterior must be resolved — and whether
/// a resolved posterior is admitted.
///
/// Two policies exist: [`StaticPhi`] (the fixed probability threshold γ of
/// Algorithm 1) and [`TighteningRank`] (the running k-th-best bound of a
/// top-k heap). See the [module docs](self) for which API uses which.
pub trait Cutoff {
    /// Whether any bound tables exist at all. When `false` the kernel skips
    /// the bound stages entirely and resolves every graph.
    fn prunes(&self) -> bool;

    /// Compiles one [`BucketPlan`] per size bucket into `plans` under the
    /// sink's current `bound` (the running k-th-best posterior for ranked
    /// sinks, `None` otherwise). `tables` holds each bucket's ϕ table
    /// ([`FilterCascade::bucket_phi_tables`]); `use_stage2 == false` zeroes
    /// every `reject_below` (the planner skipped stage 2). Returns `false`
    /// when nothing can prune under this bound — no tables (recording
    /// mode), or a rank cutoff whose heap has not filled yet — in which
    /// case `plans` is left untouched and every graph is undecided.
    fn plan_buckets(
        &self,
        bound: Option<f64>,
        use_stage2: bool,
        tables: &[Vec<u64>],
        plans: &mut Vec<BucketPlan>,
    ) -> bool;

    /// Stage 3 — classify one graph from its *exact* ϕ. `Undecided` means
    /// the posterior must be resolved and [`Self::admits`] consulted.
    fn classify_phi(&self, bucket: usize, phi: u64) -> BoundClass;

    /// The merge-path (cascade disabled) counterpart of
    /// [`Self::classify_phi`]: may fast-*accept* from ϕ, never rejects —
    /// the merge scan has no bound stages to make rejection sound cheaper
    /// than the posterior lookup it replaces.
    fn merge_classify_phi(&self, bucket: usize, phi: u64) -> BoundClass;

    /// Whether a resolved posterior is delivered as a hit.
    fn admits(&self, posterior: f64) -> bool;

    /// Books `n` bound-stage rejections into the right stats counter
    /// (`bound_rejected` for a threshold, `rank_rejected` for a rank
    /// bound).
    fn count_pruned_n(&self, stats: &mut SearchStats, n: usize);
}

/// The static-threshold cutoff of Algorithm 1: accept when `Φ(ϕ) ≥ γ` is
/// guaranteed, reject when `Φ(ϕ) < γ` is guaranteed, resolve otherwise.
///
/// Holds one [`SizeDecision`] per size bucket of the segment plus the
/// stage-1 classification of each bucket's ϕ interval. In recording mode
/// (`record_posteriors`) both tables are empty, so every graph resolves its
/// posterior — the definitional scan.
#[derive(Debug)]
pub struct StaticPhi {
    gamma: f64,
    /// One decision per size bucket; empty in recording mode.
    decisions: Vec<SizeDecision>,
    /// Stage-1 verdict per size bucket; empty when the cascade is off, the
    /// bounds are unusable (GBDA-V2 with `w < 0`), or in recording mode.
    classes: Vec<BoundClass>,
}

impl StaticPhi {
    /// Builds the per-bucket threshold tables for one query against one
    /// segment. `resolve_all` (recording mode) leaves both tables empty;
    /// `decision_for` maps an extended size to its [`SizeDecision`].
    pub fn prepare<S: SegmentIndex>(
        kernel: &ScanKernel<'_, S>,
        gamma: f64,
        resolve_all: bool,
        mut decision_for: impl FnMut(usize) -> SizeDecision,
    ) -> Self {
        if resolve_all {
            return StaticPhi {
                gamma,
                decisions: Vec::new(),
                classes: Vec::new(),
            };
        }
        let decisions: Vec<SizeDecision> = kernel
            .segment
            .distinct_sizes()
            .iter()
            .map(|&size| decision_for(kernel.extended_size_for(size)))
            .collect();
        let classes = match &kernel.cascade {
            Some(cascade) if cascade.bounds_usable() => kernel
                .segment
                .distinct_sizes()
                .iter()
                .zip(&decisions)
                .map(|(&size, decision)| {
                    let (lb, ub) = cascade.size_bounds(size);
                    match decision.classify_interval(lb, ub) {
                        Some(true) => BoundClass::Accept,
                        Some(false) => BoundClass::Reject,
                        None => BoundClass::Undecided,
                    }
                })
                .collect(),
            _ => Vec::new(),
        };
        StaticPhi {
            gamma,
            decisions,
            classes,
        }
    }
}

impl Cutoff for StaticPhi {
    fn prunes(&self) -> bool {
        !self.classes.is_empty()
    }

    fn plan_buckets(
        &self,
        _bound: Option<f64>,
        use_stage2: bool,
        tables: &[Vec<u64>],
        plans: &mut Vec<BucketPlan>,
    ) -> bool {
        if self.classes.is_empty() {
            return false;
        }
        plans.clear();
        plans.extend(self.classes.iter().zip(&self.decisions).zip(tables).map(
            |((&class, decision), table)| {
                // Stage 2 can never *accept* in an undecided bucket (its
                // ϕ upper bound equals stage 1's, which already failed
                // the accept test), so the refinement reduces to the
                // reject half of `classify_interval`: in an undecided
                // bucket with `ub1 ≤ cap`, reject exactly the graphs
                // whose intersection upper bound keeps ϕ ≥ reject_min —
                // a prefix of the non-increasing ϕ table.
                let reject_below =
                    if use_stage2 && class == BoundClass::Undecided && table[0] <= decision.cap {
                        table.partition_point(|&phi| phi >= decision.reject_min) as u32
                    } else {
                        0
                    };
                // Stage-3 thresholds: `accepts(ϕ)` is a suffix of the
                // non-increasing table, `rejects(ϕ)` (`reject_min ≤ ϕ ≤
                // cap`) an interior interval.
                let accept_from = match decision.accept_max {
                    Some(t) => table.partition_point(|&phi| phi > t) as u32,
                    None => u32::MAX,
                };
                BucketPlan {
                    class,
                    reject_below,
                    accept_from,
                    reject_lo: table.partition_point(|&phi| phi > decision.cap) as u32,
                    reject_hi: table.partition_point(|&phi| phi >= decision.reject_min) as u32,
                }
            },
        ));
        true
    }

    fn classify_phi(&self, bucket: usize, phi: u64) -> BoundClass {
        match self.decisions.get(bucket) {
            Some(decision) if decision.accepts(phi) => BoundClass::Accept,
            Some(decision) if decision.rejects(phi) => BoundClass::Reject,
            _ => BoundClass::Undecided,
        }
    }

    fn merge_classify_phi(&self, bucket: usize, phi: u64) -> BoundClass {
        match self.decisions.get(bucket) {
            Some(decision) if decision.accepts(phi) => BoundClass::Accept,
            _ => BoundClass::Undecided,
        }
    }

    fn admits(&self, posterior: f64) -> bool {
        posterior >= self.gamma
    }

    fn count_pruned_n(&self, stats: &mut SearchStats, n: usize) {
        stats.bound_rejected += n;
    }
}

/// The tightening rank cutoff of a top-k scan: once the heap is full, a
/// graph whose ϕ interval provably cannot *strictly beat* the running
/// k-th-best posterior is rejected ([`RankDecision::rejects_from`]).
///
/// Never accepts early — every kept candidate needs its exact posterior for
/// ranking — and never consults γ. Empty (no pruning) when the cascade is
/// off, the bounds are unusable, or `k` covers every candidate.
#[derive(Debug, Default)]
pub struct TighteningRank {
    /// Per size bucket: the suffix-max table and the stage-1 ϕ interval.
    buckets: Vec<(Arc<RankDecision>, (u64, u64))>,
}

impl TighteningRank {
    /// Builds the per-bucket rank tables for one query against one segment.
    /// `candidates` is the number of graphs competing for the `k` slots
    /// (the *whole* database for a dynamic scan, not one segment): when
    /// `k >= candidates` the heap can never fill, so no tables are built
    /// and the cutoff never prunes.
    pub fn prepare<S: SegmentIndex>(
        kernel: &ScanKernel<'_, S>,
        k: usize,
        candidates: usize,
        mut rank_for: impl FnMut(usize) -> Arc<RankDecision>,
    ) -> Self {
        let buckets = match &kernel.cascade {
            Some(cascade) if cascade.bounds_usable() && k < candidates => kernel
                .segment
                .distinct_sizes()
                .iter()
                .map(|&size| {
                    let decision = rank_for(kernel.extended_size_for(size));
                    let interval = cascade.size_bounds(size);
                    (decision, interval)
                })
                .collect(),
            _ => Vec::new(),
        };
        TighteningRank { buckets }
    }
}

impl Cutoff for TighteningRank {
    fn prunes(&self) -> bool {
        !self.buckets.is_empty()
    }

    fn plan_buckets(
        &self,
        bound: Option<f64>,
        use_stage2: bool,
        tables: &[Vec<u64>],
        plans: &mut Vec<BucketPlan>,
    ) -> bool {
        if self.buckets.is_empty() {
            return false;
        }
        // Until the heap fills there is no bound to prune under.
        let Some(bound) = bound else {
            return false;
        };
        plans.clear();
        plans.extend(
            self.buckets
                .iter()
                .zip(tables)
                .map(|((decision, (lb1, ub1)), table)| {
                    // A rank cutoff never fast-classifies at stage 3 (every
                    // kept candidate needs its exact posterior), so both
                    // stage-3 thresholds stay empty.
                    if decision.rejects_from(*lb1, *ub1, bound) {
                        BucketPlan {
                            class: BoundClass::Reject,
                            reject_below: 0,
                            accept_from: u32::MAX,
                            reject_lo: 0,
                            reject_hi: 0,
                        }
                    } else {
                        // `rejects_from(lb2, ub1, bound) ⟺ ub1 ≤ cap ∧
                        // lb2 ≥ cutoff(bound)` (proven by the RankDecision unit
                        // tests), and lb2 is a non-increasing function of the
                        // intersection upper bound — so stage-2 rejection is a
                        // prefix of the ϕ table here too.
                        let reject_below = if use_stage2 && *ub1 <= decision.cap {
                            let cutoff_phi = decision.cutoff(bound);
                            table.partition_point(|&phi| phi >= cutoff_phi) as u32
                        } else {
                            0
                        };
                        BucketPlan {
                            class: BoundClass::Undecided,
                            reject_below,
                            accept_from: u32::MAX,
                            reject_lo: 0,
                            reject_hi: 0,
                        }
                    }
                }),
        );
        true
    }

    fn classify_phi(&self, _bucket: usize, _phi: u64) -> BoundClass {
        BoundClass::Undecided
    }

    fn merge_classify_phi(&self, _bucket: usize, _phi: u64) -> BoundClass {
        BoundClass::Undecided
    }

    fn admits(&self, _posterior: f64) -> bool {
        true
    }

    fn count_pruned_n(&self, stats: &mut SearchStats, n: usize) {
        stats.rank_rejected += n;
    }
}

/// A result sink: where the kernel delivers survivors.
///
/// The kernel calls [`Sink::accept`] for graphs proven to be hits *without*
/// a posterior (threshold fast path) and [`Sink::offer`] for graphs whose
/// posterior was resolved. [`Sink::bound`] feeds the cutoff's tightening
/// bound back into the bound stages (ranked sinks only).
pub trait Sink<I: Copy> {
    /// The sink's current pruning bound — the k-th-best posterior of a full
    /// top-k heap, `None` for unbounded sinks.
    fn bound(&self) -> Option<f64> {
        None
    }

    /// Delivers a graph proven to be a hit without resolving its posterior.
    fn accept(&mut self, id: I);

    /// Delivers one resolved `(id, posterior)` pair; `admitted` is the
    /// cutoff's verdict. `stats` lets ranked sinks book `heap_inserts`.
    fn offer(&mut self, id: I, posterior: f64, admitted: bool, stats: &mut SearchStats);
}

/// Collects matches (and, when recording, every resolved posterior in scan
/// order) — the sink behind threshold search.
#[derive(Debug)]
pub struct CollectAll<I> {
    record: bool,
    /// Ids delivered as hits, in scan order.
    pub matches: Vec<I>,
    /// When recording: one posterior per scanned graph, in scan order.
    pub posteriors: Vec<f64>,
}

impl<I: Copy> CollectAll<I> {
    /// An empty sink; `record` mirrors
    /// [`GbdaConfig::record_posteriors`](crate::GbdaConfig).
    pub fn new(record: bool) -> Self {
        CollectAll {
            record,
            matches: Vec::new(),
            posteriors: Vec::new(),
        }
    }
}

impl<I: Copy> Sink<I> for CollectAll<I> {
    fn accept(&mut self, id: I) {
        self.matches.push(id);
    }

    fn offer(&mut self, id: I, posterior: f64, admitted: bool, _stats: &mut SearchStats) {
        if self.record {
            self.posteriors.push(posterior);
        }
        if admitted {
            self.matches.push(id);
        }
    }
}

/// A bounded ranked sink wrapping [`TopKHeap`] — the sink behind top-k
/// search. Must be paired with a cutoff that never [`BoundClass::Accept`]s
/// (i.e. [`TighteningRank`]): a rank needs the posterior.
#[derive(Debug)]
pub struct TopKSink<I: Ord + Copy> {
    heap: TopKHeap<I>,
}

impl<I: Ord + Copy> TopKSink<I> {
    /// An empty heap keeping the best `k` candidates.
    pub fn new(k: usize) -> Self {
        TopKSink {
            heap: TopKHeap::new(k),
        }
    }

    /// The kept candidates, best first (ties by ascending id).
    pub fn into_sorted_hits(self) -> Vec<RankedHit<I>> {
        self.heap.into_sorted_hits()
    }
}

impl<I: Ord + Copy> Sink<I> for TopKSink<I> {
    fn bound(&self) -> Option<f64> {
        self.heap.threshold()
    }

    fn accept(&mut self, _id: I) {
        unreachable!("a ranked sink cannot admit a graph without its posterior");
    }

    fn offer(&mut self, id: I, posterior: f64, _admitted: bool, stats: &mut SearchStats) {
        if self.heap.push(RankedHit { id, posterior }) {
            stats.heap_inserts += 1;
        }
    }
}

/// A streaming sink: hits are delivered to a callback as the scan finds
/// them, instead of being buffered. Fast-path accepts arrive with `None`
/// (their posterior was never resolved); resolved hits with `Some(Φ)`.
#[derive(Debug)]
pub struct Subscriber<F> {
    callback: F,
}

impl<F> Subscriber<F> {
    /// Wraps a `FnMut(id, Option<posterior>)` callback.
    pub fn new(callback: F) -> Self {
        Subscriber { callback }
    }
}

impl<I: Copy, F: FnMut(I, Option<f64>)> Sink<I> for Subscriber<F> {
    fn accept(&mut self, id: I) {
        (self.callback)(id, None);
    }

    fn offer(&mut self, id: I, posterior: f64, admitted: bool, _stats: &mut SearchStats) {
        if admitted {
            (self.callback)(id, Some(posterior));
        }
    }
}

/// Per-query scan state over one segment: the flattened query, the filter
/// cascade (when enabled) and the extended-size rule. Built once per
/// (query, segment) pair and shared by every shard scanning that segment.
#[derive(Debug)]
pub struct ScanKernel<'q, S: SegmentIndex> {
    segment: &'q S,
    cascade: Option<FilterCascade<'q, S>>,
    query_flat: &'q FlatBranchSet,
    query_size: usize,
    fixed_extended_size: Option<usize>,
    weight: Option<f64>,
    plan: QueryPlan,
}

impl<'q, S: SegmentIndex> ScanKernel<'q, S> {
    /// Builds the kernel for one query against one segment. `query_flat`
    /// must be flattened against the segment's catalog (or an extension of
    /// it); `fixed_extended_size` is `Some` under GBDA-V1, `weight` under
    /// GBDA-V2; `use_cascade` mirrors
    /// [`GbdaConfig::filter_cascade`](crate::GbdaConfig).
    pub fn new(
        segment: &'q S,
        query_flat: &'q FlatBranchSet,
        query_size: usize,
        fixed_extended_size: Option<usize>,
        weight: Option<f64>,
        use_cascade: bool,
    ) -> Self {
        let cascade = use_cascade.then(|| FilterCascade::new(segment, query_flat, weight));
        ScanKernel {
            segment,
            cascade,
            query_flat,
            query_size,
            fixed_extended_size,
            weight,
            plan: QueryPlan::fixed(),
        }
    }

    /// Applies a planner-chosen stage schedule. The default is the fixed
    /// pipeline ([`QueryPlan::fixed`]); any plan yields bit-identical
    /// results, only the work schedule changes.
    pub fn with_plan(mut self, plan: QueryPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The stage schedule this kernel scans under.
    pub fn plan(&self) -> QueryPlan {
        self.plan
    }

    /// The segment this kernel scans.
    pub fn segment(&self) -> &'q S {
        self.segment
    }

    /// The extended size `|V'1|` for a graph of `graph_size` vertices,
    /// honouring GBDA-V1's fixed size.
    pub fn extended_size_for(&self, graph_size: usize) -> usize {
        match self.fixed_extended_size {
            Some(v) => v,
            None => self.query_size.max(graph_size).max(1),
        }
    }

    /// The scan loop. Drives `range` through the cascade stages under
    /// `cutoff`, resolving posteriors through `lookup` (signature
    /// `(stats, extended_size, phi) -> posterior` so implementations can
    /// book cache hits/misses), and delivers survivors to `sink`.
    ///
    /// `mask(i)` returns `true` for slots to skip entirely (tombstones);
    /// `id_of(i)` maps a segment-local index to the sink's id space.
    #[allow(clippy::too_many_arguments)]
    pub fn scan<I, C, K>(
        &self,
        range: Range<usize>,
        cutoff: &C,
        sink: &mut K,
        stats: &mut SearchStats,
        mask: impl Fn(usize) -> bool,
        id_of: impl Fn(usize) -> I,
        mut lookup: impl FnMut(&mut SearchStats, usize, u64) -> f64,
    ) where
        I: Copy,
        C: Cutoff,
        K: Sink<I>,
    {
        // Armed only at TelemetryLevel::MetricsAndTraces; otherwise one
        // relaxed load per scan call (not per graph).
        let _span = gbd_telemetry::span!("kernel.scan");
        match &self.cascade {
            Some(cascade) => {
                let prune = self.plan.use_bounds && cascade.bounds_usable() && cutoff.prunes();
                let use_stage2 = self.plan.use_stage2;
                let postings_first = self.plan.postings_first;
                // Per-bucket ϕ tables: the raw material bucket plans are
                // compiled from (bound-independent, built once per scan).
                let tables = if prune {
                    cascade.bucket_phi_tables()
                } else {
                    Vec::new()
                };
                let mut plans: Vec<BucketPlan> = Vec::new();
                // The bound key the plans were compiled under: `None` = not
                // yet compiled, `Some(k)` = compiled under bound bits `k`.
                // Static cutoffs keep one compilation for the whole scan; a
                // tightening rank bound recompiles as it moves (cheap — one
                // entry per size bucket).
                let mut compiled_for: Option<Option<u64>> = None;
                let mut plans_active = false;
                let mut cursors = cascade.cursors();
                let mut acc = [0u32; SUPER];
                let aggregates = self.segment.aggregates();
                let bucket_runs = self.segment.bucket_runs();

                let mut super_start = range.start;
                while super_start < range.end {
                    let super_end = (super_start + SUPER).min(range.end);

                    // One bound key serves the whole superchunk sweep:
                    // nothing is delivered during it, so the bound cannot
                    // move until phase 3. Static cutoffs keep one
                    // compilation for the whole scan; a tightening rank
                    // bound recompiles as it moves (cheap — one entry per
                    // size bucket).
                    let mut words_key: Option<Option<u64>> = None;
                    if prune {
                        let bound = sink.bound();
                        let key = bound.map(f64::to_bits);
                        if compiled_for != Some(key) {
                            plans_active =
                                cutoff.plan_buckets(bound, use_stage2, &tables, &mut plans);
                            compiled_for = Some(key);
                        }
                        words_key = Some(key);
                    }

                    // Phase 1 — stages 1 + 2 across every chunk: stage 1
                    // classifies whole constant-bucket intervals with one
                    // plan lookup and a mask merge; stage 2 touches
                    // per-graph aggregates only inside undecided intervals
                    // with a non-trivial reject threshold.
                    let mut accept_words = [0u64; SUPER_CHUNKS];
                    let mut undecided_words = [0u64; SUPER_CHUNKS];
                    let mut any_undecided = false;
                    // Bucket run containing `super_start`; advanced in step
                    // with the ascending chunks.
                    let mut run_idx =
                        bucket_runs.partition_point(|r| (r.end as usize) <= super_start);
                    for (c, chunk_start) in (super_start..super_end).step_by(CHUNK).enumerate() {
                        let chunk_end = (chunk_start + CHUNK).min(super_end);
                        let width = chunk_end - chunk_start;

                        // Live mask: tombstoned slots are skipped entirely.
                        let mut live: u64 = if width == CHUNK {
                            !0u64
                        } else {
                            (1u64 << width) - 1
                        };
                        for j in 0..width {
                            live &= !((mask(chunk_start + j) as u64) << j);
                        }
                        stats.evaluated += live.count_ones() as usize;

                        let mut accept = 0u64;
                        let mut reject = 0u64;
                        if prune && plans_active && live != 0 {
                            let mut reject2 = 0u64;
                            let mut pos = chunk_start;
                            let mut rr = run_idx;
                            while pos < chunk_end {
                                let run = bucket_runs[rr];
                                let interval_end = (run.end as usize).min(chunk_end);
                                let plan = plans[run.bucket as usize];
                                let offset = pos - chunk_start;
                                let len = interval_end - pos;
                                let bits = if len == CHUNK {
                                    !0u64
                                } else {
                                    ((1u64 << len) - 1) << offset
                                };
                                match plan.class {
                                    BoundClass::Accept => accept |= bits,
                                    BoundClass::Reject => reject |= bits,
                                    BoundClass::Undecided if plan.reject_below > 0 => {
                                        for (j, agg) in
                                            aggregates[pos..interval_end].iter().enumerate()
                                        {
                                            let stage2 =
                                                cascade.stage2_inter_ub(*agg) < plan.reject_below;
                                            reject2 |= (stage2 as u64) << (offset + j);
                                        }
                                    }
                                    BoundClass::Undecided => {}
                                }
                                pos = interval_end;
                                rr += ((run.end as usize) <= chunk_end) as usize;
                            }
                            accept &= live;
                            reject &= live;
                            reject2 &= live;
                            stats.bound_accepted += accept.count_ones() as usize;
                            stats.stage2_decided += reject2.count_ones() as usize;
                            reject |= reject2;
                            cutoff.count_pruned_n(stats, reject.count_ones() as usize);
                        }
                        // Keep the run cursor aligned even when the sweep
                        // was skipped for this chunk.
                        while run_idx < bucket_runs.len()
                            && (bucket_runs[run_idx].end as usize) <= chunk_end
                        {
                            run_idx += 1;
                        }
                        let undecided = live & !(accept | reject);
                        accept_words[c] = accept;
                        undecided_words[c] = undecided;
                        any_undecided |= undecided != 0;
                    }

                    // Phase 2 — stage 3 postings for the whole superchunk in
                    // one accumulation: eager under a postings-first plan,
                    // otherwise only when some chunk stayed undecided. The
                    // cursors resume where the previous superchunk stopped,
                    // so every postings list is walked at most once per scan
                    // regardless of chunking.
                    let acc_super = &mut acc[..super_end - super_start];
                    if any_undecided || postings_first {
                        acc_super.fill(0);
                        cursors.accumulate(super_start..super_end, acc_super);
                    }

                    // Phase 3 — delivery: accepts and exact resolutions
                    // interleave in ascending index order, exactly as a
                    // per-graph scan.
                    for (c, chunk_start) in (super_start..super_end).step_by(CHUNK).enumerate() {
                        let accept = accept_words[c];
                        let chunk_acc = &acc_super[chunk_start - super_start..];
                        let mut deliver = accept | undecided_words[c];
                        while deliver != 0 {
                            let j = deliver.trailing_zeros() as usize;
                            deliver &= deliver - 1;
                            let i = chunk_start + j;
                            if (accept >> j) & 1 == 1 {
                                sink.accept(id_of(i));
                                continue;
                            }
                            let agg = aggregates[i];
                            // A tightening bound may have moved since the
                            // superchunk's words were built; re-test this
                            // graph under the fresh bound so the swept scan
                            // books the same per-graph decisions as a scalar
                            // scan. Bounds only tighten, so the sweep-time
                            // rejections above stay valid.
                            if prune {
                                let bound = sink.bound();
                                let key = bound.map(f64::to_bits);
                                if words_key != Some(key) {
                                    if compiled_for != Some(key) {
                                        plans_active = cutoff
                                            .plan_buckets(bound, use_stage2, &tables, &mut plans);
                                        compiled_for = Some(key);
                                    }
                                    if plans_active {
                                        let plan = plans[agg.bucket as usize];
                                        match plan.class {
                                            BoundClass::Accept => {
                                                stats.bound_accepted += 1;
                                                sink.accept(id_of(i));
                                                continue;
                                            }
                                            BoundClass::Reject => {
                                                cutoff.count_pruned_n(stats, 1);
                                                continue;
                                            }
                                            BoundClass::Undecided => {
                                                if cascade.stage2_inter_ub(agg) < plan.reject_below
                                                {
                                                    stats.stage2_decided += 1;
                                                    cutoff.count_pruned_n(stats, 1);
                                                    continue;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            // Stage 3: classify from the exact accumulated
                            // intersection. Under compiled plans the
                            // cutoff's ϕ-space verdict is pre-translated
                            // into intersection thresholds (the ϕ table is
                            // non-increasing), so the common accept/reject
                            // outcomes cost three `u32` comparisons; only a
                            // posterior lookup needs ϕ itself, read from
                            // the bucket's table — which the accumulated
                            // intersection can never overrun, because
                            // `inter ≤ min(known(Q), |G|)`.
                            let inter = chunk_acc[j] as usize;
                            stats.postings_resolved += 1;
                            if prune && plans_active {
                                let plan = plans[agg.bucket as usize];
                                if inter >= plan.accept_from as usize {
                                    stats.threshold_accepts += 1;
                                    sink.accept(id_of(i));
                                    continue;
                                }
                                if inter >= plan.reject_lo as usize
                                    && inter < plan.reject_hi as usize
                                {
                                    continue;
                                }
                                let phi = tables[agg.bucket as usize][inter];
                                let extended_size = self.extended_size_for(agg.size as usize);
                                let posterior = lookup(stats, extended_size, phi);
                                sink.offer(id_of(i), posterior, cutoff.admits(posterior), stats);
                                continue;
                            }
                            let phi = if prune {
                                tables[agg.bucket as usize][inter]
                            } else {
                                cascade.phi_from_intersection(agg.size as usize, inter)
                            };
                            match cutoff.classify_phi(agg.bucket as usize, phi) {
                                BoundClass::Accept => {
                                    stats.threshold_accepts += 1;
                                    sink.accept(id_of(i));
                                }
                                BoundClass::Reject => {}
                                BoundClass::Undecided => {
                                    let extended_size = self.extended_size_for(agg.size as usize);
                                    let posterior = lookup(stats, extended_size, phi);
                                    sink.offer(
                                        id_of(i),
                                        posterior,
                                        cutoff.admits(posterior),
                                        stats,
                                    );
                                }
                            }
                        }
                    }
                    super_start = super_end;
                }
            }
            None => {
                // Merge path: ϕ from a full flat-run merge per graph.
                let query = self.query_flat.as_view();
                for i in range {
                    if mask(i) {
                        continue;
                    }
                    stats.evaluated += 1;
                    stats.merged += 1;
                    let extended_size = self.extended_size_for(self.segment.size_of(i));
                    let phi = match self.weight {
                        Some(w) => {
                            let value = query.weighted_gbd(self.segment.flat_view(i), w);
                            value.round().max(0.0) as u64
                        }
                        None => query.gbd(self.segment.flat_view(i)) as u64,
                    };
                    match cutoff.merge_classify_phi(self.segment.bucket_of(i), phi) {
                        BoundClass::Accept => {
                            stats.threshold_accepts += 1;
                            sink.accept(id_of(i));
                        }
                        BoundClass::Reject => unreachable!("merge scans never fast-reject"),
                        BoundClass::Undecided => {
                            let posterior = lookup(stats, extended_size, phi);
                            sink.offer(id_of(i), posterior, cutoff.admits(posterior), stats);
                        }
                    }
                }
            }
        }
    }
}

/// Runs `scan` over `shards` contiguous ranges of `0..n` on scoped threads,
/// returning the per-shard results in range order (shard 0's range precedes
/// shard 1's, so concatenation preserves ascending scan order). `shards` is
/// clamped to `[1, max(n, 1)]`; a single effective shard runs inline.
pub fn scan_shards<T: Send>(
    n: usize,
    shards: usize,
    scan: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    let shards = shards.max(1).min(n.max(1));
    if shards <= 1 {
        return vec![scan(0..n)];
    }
    let chunk = n.div_ceil(shards);
    let mut results = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                let range = (s * chunk)..n.min((s + 1) * chunk);
                let scan = &scan;
                scope.spawn(move || scan(range))
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("scan shard panicked"));
        }
    });
    results
}

/// Runs `per_item` over every item on a work-stealing pool of up to
/// `workers` scoped threads, returning the results in item order plus the
/// worker count actually used (`None` when the batch ran sequentially).
///
/// The second argument to `per_item` is the shard budget the item may use
/// for its *own* scan: the full `workers` budget when the batch runs
/// sequentially (one item at a time gets all threads), `1` when items run
/// concurrently (one thread each).
pub fn run_batch<Q: Sync, T: Send>(
    workers: usize,
    items: &[Q],
    per_item: impl Fn(&Q, usize) -> T + Sync,
) -> (Vec<T>, Option<usize>) {
    let workers = workers.max(1);
    if workers <= 1 || items.len() <= 1 {
        let results = items.iter().map(|item| per_item(item, workers)).collect();
        return (results, None);
    }
    let workers = workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = cursor.fetch_add(1, Ordering::Relaxed);
                if next >= items.len() {
                    break;
                }
                let result = per_item(&items[next], 1);
                *slots[next].lock() = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every batch slot is filled by a worker")
        })
        .collect();
    (results, Some(workers))
}
