//! The one generic scan kernel behind every online search path.
//!
//! The paper's online phase is a single conceptual operation: scan candidate
//! graphs, prune through the [`FilterCascade`], resolve the observed distance
//! ϕ and the memoized posterior `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]`, and deliver
//! survivors — under either a *static* probability threshold γ (Algorithm 1)
//! or a *tightening* top-k rank bound. [`ScanKernel::scan`] implements that
//! loop exactly once; every public search API is a thin instantiation of it
//! over a cutoff policy ([`Cutoff`]), a result sink ([`Sink`]) and a segment
//! ([`SegmentIndex`]).
//!
//! # The Cutoff × Sink × SegmentIndex matrix
//!
//! | public API | cutoff | sink | segment(s) |
//! |---|---|---|---|
//! | [`QueryEngine::search`] / `search_batch` | [`StaticPhi`] | [`CollectAll`] | [`GraphDatabase`] |
//! | [`QueryEngine::search_top_k`] / `search_top_k_batch` | [`TighteningRank`] | [`TopKSink`] | [`GraphDatabase`] |
//! | [`QueryEngine::search_streaming`] | [`StaticPhi`] | [`Subscriber`] | [`GraphDatabase`] |
//! | [`DynamicEngine::search`] | [`StaticPhi`] | [`CollectAll`] | base + delta under tombstone masks |
//! | [`DynamicEngine::search_top_k`] | [`TighteningRank`] | [`TopKSink`] | base + delta (one shared heap) |
//! | [`DynamicEngine::search_streaming`] | [`StaticPhi`] | [`Subscriber`] | base + delta |
//!
//! Not every cell of the matrix is meaningful: a ranked scan needs resolved
//! posteriors for every candidate it keeps, so [`TighteningRank`] never
//! *accepts* a graph early — pairing [`TopKSink`] with a cutoff that does
//! ([`StaticPhi`] with a non-empty accept region) violates the sink contract
//! and panics. Every other pairing composes freely.
//!
//! # Shard drivers
//!
//! The two parallel execution scaffolds also live here so the threshold,
//! ranked and batch paths share them: [`scan_shards`] (contiguous
//! range-sharded scans, order-preserving) and [`run_batch`] (the
//! work-stealing per-query cursor). Per-shard ranked results are merged with
//! [`crate::topk::merge_ranked`]; the canonical tie-break total order for
//! *all* ranked results is defined once, by [`crate::topk::rank_order`]
//! (posterior descending via `f64::total_cmp`, then graph id ascending).
//!
//! # Accounting
//!
//! The kernel owns the [`SearchStats`] stage counters. Per scanned, unmasked
//! graph exactly one of the following fires, so
//! `bound_rejected + bound_accepted + rank_rejected + postings_resolved +
//! merged == evaluated` ([`SearchStats::stage_partition`]) holds on every
//! instantiation:
//!
//! * `bound_accepted` / `bound_rejected` — decided by the stage-1 size bound
//!   or the stage-2 distinct-run refinement under a [`StaticPhi`] cutoff;
//! * `rank_rejected` — decided by the same bound stages under a
//!   [`TighteningRank`] cutoff;
//! * `postings_resolved` — survived to the stage-3 count filter, which
//!   resolves the exact ϕ from the inverted postings;
//! * `merged` — cascade disabled; ϕ came from a full flat-run merge.
//!
//! [`QueryEngine::search`]: crate::QueryEngine::search
//! [`QueryEngine::search_top_k`]: crate::QueryEngine::search_top_k
//! [`QueryEngine::search_streaming`]: crate::QueryEngine::search_streaming
//! [`DynamicEngine::search`]: crate::DynamicEngine::search
//! [`DynamicEngine::search_top_k`]: crate::DynamicEngine::search_top_k
//! [`DynamicEngine::search_streaming`]: crate::DynamicEngine::search_streaming
//! [`GraphDatabase`]: crate::GraphDatabase

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gbd_graph::FlatBranchSet;

use crate::filter::{FilterCascade, RankDecision, SegmentIndex, SizeDecision};
use crate::search::SearchStats;
use crate::topk::{RankedHit, TopKHeap};

/// The verdict of a cutoff policy on a graph (or a whole ϕ interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundClass {
    /// The graph is provably a hit; no posterior needs to be resolved.
    Accept,
    /// The graph provably cannot be delivered; skip it.
    Reject,
    /// The evidence is inconclusive; fall through to the next stage.
    Undecided,
}

/// A cutoff policy: how the kernel decides, per graph, whether the filter
/// bounds settle the outcome or the posterior must be resolved — and whether
/// a resolved posterior is admitted.
///
/// Two policies exist: [`StaticPhi`] (the fixed probability threshold γ of
/// Algorithm 1) and [`TighteningRank`] (the running k-th-best bound of a
/// top-k heap). See the [module docs](self) for which API uses which.
pub trait Cutoff {
    /// Whether any bound tables exist at all. When `false` the kernel skips
    /// the bound stages entirely and resolves every graph.
    fn prunes(&self) -> bool;

    /// Whether the bound stages apply under the sink's current bound (the
    /// running k-th-best posterior for ranked sinks, `None` otherwise). A
    /// static threshold always prunes; a rank cutoff only once the heap is
    /// full.
    fn prunes_under(&self, bound: Option<f64>) -> bool;

    /// Stage 1 — classify a whole size bucket from its precomputed ϕ
    /// interval.
    fn classify_bucket(&self, bucket: usize, bound: Option<f64>) -> BoundClass;

    /// Stage 2 — classify one graph from its refined ϕ interval `[lb, ub]`.
    fn classify_refined(&self, bucket: usize, lb: u64, ub: u64, bound: Option<f64>) -> BoundClass;

    /// Stage 3 — classify one graph from its *exact* ϕ. `Undecided` means
    /// the posterior must be resolved and [`Self::admits`] consulted.
    fn classify_phi(&self, bucket: usize, phi: u64) -> BoundClass;

    /// The merge-path (cascade disabled) counterpart of
    /// [`Self::classify_phi`]: may fast-*accept* from ϕ, never rejects —
    /// the merge scan has no bound stages to make rejection sound cheaper
    /// than the posterior lookup it replaces.
    fn merge_classify_phi(&self, bucket: usize, phi: u64) -> BoundClass;

    /// Whether a resolved posterior is delivered as a hit.
    fn admits(&self, posterior: f64) -> bool;

    /// Books one bound-stage rejection into the right stats counter
    /// (`bound_rejected` for a threshold, `rank_rejected` for a rank bound).
    fn count_pruned(&self, stats: &mut SearchStats);
}

/// The static-threshold cutoff of Algorithm 1: accept when `Φ(ϕ) ≥ γ` is
/// guaranteed, reject when `Φ(ϕ) < γ` is guaranteed, resolve otherwise.
///
/// Holds one [`SizeDecision`] per size bucket of the segment plus the
/// stage-1 classification of each bucket's ϕ interval. In recording mode
/// (`record_posteriors`) both tables are empty, so every graph resolves its
/// posterior — the definitional scan.
#[derive(Debug)]
pub struct StaticPhi {
    gamma: f64,
    /// One decision per size bucket; empty in recording mode.
    decisions: Vec<SizeDecision>,
    /// Stage-1 verdict per size bucket; empty when the cascade is off, the
    /// bounds are unusable (GBDA-V2 with `w < 0`), or in recording mode.
    classes: Vec<BoundClass>,
}

impl StaticPhi {
    /// Builds the per-bucket threshold tables for one query against one
    /// segment. `resolve_all` (recording mode) leaves both tables empty;
    /// `decision_for` maps an extended size to its [`SizeDecision`].
    pub fn prepare<S: SegmentIndex>(
        kernel: &ScanKernel<'_, S>,
        gamma: f64,
        resolve_all: bool,
        mut decision_for: impl FnMut(usize) -> SizeDecision,
    ) -> Self {
        if resolve_all {
            return StaticPhi {
                gamma,
                decisions: Vec::new(),
                classes: Vec::new(),
            };
        }
        let decisions: Vec<SizeDecision> = kernel
            .segment
            .distinct_sizes()
            .iter()
            .map(|&size| decision_for(kernel.extended_size_for(size)))
            .collect();
        let classes = match &kernel.cascade {
            Some(cascade) if cascade.bounds_usable() => kernel
                .segment
                .distinct_sizes()
                .iter()
                .zip(&decisions)
                .map(|(&size, decision)| {
                    let (lb, ub) = cascade.size_bounds(size);
                    match decision.classify_interval(lb, ub) {
                        Some(true) => BoundClass::Accept,
                        Some(false) => BoundClass::Reject,
                        None => BoundClass::Undecided,
                    }
                })
                .collect(),
            _ => Vec::new(),
        };
        StaticPhi {
            gamma,
            decisions,
            classes,
        }
    }
}

impl Cutoff for StaticPhi {
    fn prunes(&self) -> bool {
        !self.classes.is_empty()
    }

    fn prunes_under(&self, _bound: Option<f64>) -> bool {
        true
    }

    fn classify_bucket(&self, bucket: usize, _bound: Option<f64>) -> BoundClass {
        self.classes[bucket]
    }

    fn classify_refined(&self, bucket: usize, lb: u64, ub: u64, _bound: Option<f64>) -> BoundClass {
        match self.decisions[bucket].classify_interval(lb, ub) {
            Some(true) => BoundClass::Accept,
            Some(false) => BoundClass::Reject,
            None => BoundClass::Undecided,
        }
    }

    fn classify_phi(&self, bucket: usize, phi: u64) -> BoundClass {
        match self.decisions.get(bucket) {
            Some(decision) if decision.accepts(phi) => BoundClass::Accept,
            Some(decision) if decision.rejects(phi) => BoundClass::Reject,
            _ => BoundClass::Undecided,
        }
    }

    fn merge_classify_phi(&self, bucket: usize, phi: u64) -> BoundClass {
        match self.decisions.get(bucket) {
            Some(decision) if decision.accepts(phi) => BoundClass::Accept,
            _ => BoundClass::Undecided,
        }
    }

    fn admits(&self, posterior: f64) -> bool {
        posterior >= self.gamma
    }

    fn count_pruned(&self, stats: &mut SearchStats) {
        stats.bound_rejected += 1;
    }
}

/// The tightening rank cutoff of a top-k scan: once the heap is full, a
/// graph whose ϕ interval provably cannot *strictly beat* the running
/// k-th-best posterior is rejected ([`RankDecision::rejects_from`]).
///
/// Never accepts early — every kept candidate needs its exact posterior for
/// ranking — and never consults γ. Empty (no pruning) when the cascade is
/// off, the bounds are unusable, or `k` covers every candidate.
#[derive(Debug, Default)]
pub struct TighteningRank {
    /// Per size bucket: the suffix-max table and the stage-1 ϕ interval.
    buckets: Vec<(Arc<RankDecision>, (u64, u64))>,
}

impl TighteningRank {
    /// Builds the per-bucket rank tables for one query against one segment.
    /// `candidates` is the number of graphs competing for the `k` slots
    /// (the *whole* database for a dynamic scan, not one segment): when
    /// `k >= candidates` the heap can never fill, so no tables are built
    /// and the cutoff never prunes.
    pub fn prepare<S: SegmentIndex>(
        kernel: &ScanKernel<'_, S>,
        k: usize,
        candidates: usize,
        mut rank_for: impl FnMut(usize) -> Arc<RankDecision>,
    ) -> Self {
        let buckets = match &kernel.cascade {
            Some(cascade) if cascade.bounds_usable() && k < candidates => kernel
                .segment
                .distinct_sizes()
                .iter()
                .map(|&size| {
                    let decision = rank_for(kernel.extended_size_for(size));
                    let interval = cascade.size_bounds(size);
                    (decision, interval)
                })
                .collect(),
            _ => Vec::new(),
        };
        TighteningRank { buckets }
    }
}

impl Cutoff for TighteningRank {
    fn prunes(&self) -> bool {
        !self.buckets.is_empty()
    }

    fn prunes_under(&self, bound: Option<f64>) -> bool {
        bound.is_some()
    }

    fn classify_bucket(&self, bucket: usize, bound: Option<f64>) -> BoundClass {
        let Some(bound) = bound else {
            return BoundClass::Undecided;
        };
        let (decision, (lb, ub)) = &self.buckets[bucket];
        if decision.rejects_from(*lb, *ub, bound) {
            BoundClass::Reject
        } else {
            BoundClass::Undecided
        }
    }

    fn classify_refined(&self, bucket: usize, lb: u64, ub: u64, bound: Option<f64>) -> BoundClass {
        let Some(bound) = bound else {
            return BoundClass::Undecided;
        };
        let (decision, _) = &self.buckets[bucket];
        if decision.rejects_from(lb, ub, bound) {
            BoundClass::Reject
        } else {
            BoundClass::Undecided
        }
    }

    fn classify_phi(&self, _bucket: usize, _phi: u64) -> BoundClass {
        BoundClass::Undecided
    }

    fn merge_classify_phi(&self, _bucket: usize, _phi: u64) -> BoundClass {
        BoundClass::Undecided
    }

    fn admits(&self, _posterior: f64) -> bool {
        true
    }

    fn count_pruned(&self, stats: &mut SearchStats) {
        stats.rank_rejected += 1;
    }
}

/// A result sink: where the kernel delivers survivors.
///
/// The kernel calls [`Sink::accept`] for graphs proven to be hits *without*
/// a posterior (threshold fast path) and [`Sink::offer`] for graphs whose
/// posterior was resolved. [`Sink::bound`] feeds the cutoff's tightening
/// bound back into the bound stages (ranked sinks only).
pub trait Sink<I: Copy> {
    /// The sink's current pruning bound — the k-th-best posterior of a full
    /// top-k heap, `None` for unbounded sinks.
    fn bound(&self) -> Option<f64> {
        None
    }

    /// Delivers a graph proven to be a hit without resolving its posterior.
    fn accept(&mut self, id: I);

    /// Delivers one resolved `(id, posterior)` pair; `admitted` is the
    /// cutoff's verdict. `stats` lets ranked sinks book `heap_inserts`.
    fn offer(&mut self, id: I, posterior: f64, admitted: bool, stats: &mut SearchStats);
}

/// Collects matches (and, when recording, every resolved posterior in scan
/// order) — the sink behind threshold search.
#[derive(Debug)]
pub struct CollectAll<I> {
    record: bool,
    /// Ids delivered as hits, in scan order.
    pub matches: Vec<I>,
    /// When recording: one posterior per scanned graph, in scan order.
    pub posteriors: Vec<f64>,
}

impl<I: Copy> CollectAll<I> {
    /// An empty sink; `record` mirrors
    /// [`GbdaConfig::record_posteriors`](crate::GbdaConfig).
    pub fn new(record: bool) -> Self {
        CollectAll {
            record,
            matches: Vec::new(),
            posteriors: Vec::new(),
        }
    }
}

impl<I: Copy> Sink<I> for CollectAll<I> {
    fn accept(&mut self, id: I) {
        self.matches.push(id);
    }

    fn offer(&mut self, id: I, posterior: f64, admitted: bool, _stats: &mut SearchStats) {
        if self.record {
            self.posteriors.push(posterior);
        }
        if admitted {
            self.matches.push(id);
        }
    }
}

/// A bounded ranked sink wrapping [`TopKHeap`] — the sink behind top-k
/// search. Must be paired with a cutoff that never [`BoundClass::Accept`]s
/// (i.e. [`TighteningRank`]): a rank needs the posterior.
#[derive(Debug)]
pub struct TopKSink<I: Ord + Copy> {
    heap: TopKHeap<I>,
}

impl<I: Ord + Copy> TopKSink<I> {
    /// An empty heap keeping the best `k` candidates.
    pub fn new(k: usize) -> Self {
        TopKSink {
            heap: TopKHeap::new(k),
        }
    }

    /// The kept candidates, best first (ties by ascending id).
    pub fn into_sorted_hits(self) -> Vec<RankedHit<I>> {
        self.heap.into_sorted_hits()
    }
}

impl<I: Ord + Copy> Sink<I> for TopKSink<I> {
    fn bound(&self) -> Option<f64> {
        self.heap.threshold()
    }

    fn accept(&mut self, _id: I) {
        unreachable!("a ranked sink cannot admit a graph without its posterior");
    }

    fn offer(&mut self, id: I, posterior: f64, _admitted: bool, stats: &mut SearchStats) {
        if self.heap.push(RankedHit { id, posterior }) {
            stats.heap_inserts += 1;
        }
    }
}

/// A streaming sink: hits are delivered to a callback as the scan finds
/// them, instead of being buffered. Fast-path accepts arrive with `None`
/// (their posterior was never resolved); resolved hits with `Some(Φ)`.
#[derive(Debug)]
pub struct Subscriber<F> {
    callback: F,
}

impl<F> Subscriber<F> {
    /// Wraps a `FnMut(id, Option<posterior>)` callback.
    pub fn new(callback: F) -> Self {
        Subscriber { callback }
    }
}

impl<I: Copy, F: FnMut(I, Option<f64>)> Sink<I> for Subscriber<F> {
    fn accept(&mut self, id: I) {
        (self.callback)(id, None);
    }

    fn offer(&mut self, id: I, posterior: f64, admitted: bool, _stats: &mut SearchStats) {
        if admitted {
            (self.callback)(id, Some(posterior));
        }
    }
}

/// Per-query scan state over one segment: the flattened query, the filter
/// cascade (when enabled) and the extended-size rule. Built once per
/// (query, segment) pair and shared by every shard scanning that segment.
#[derive(Debug)]
pub struct ScanKernel<'q, S: SegmentIndex> {
    segment: &'q S,
    cascade: Option<FilterCascade<'q, S>>,
    query_flat: &'q FlatBranchSet,
    query_size: usize,
    fixed_extended_size: Option<usize>,
    weight: Option<f64>,
}

impl<'q, S: SegmentIndex> ScanKernel<'q, S> {
    /// Builds the kernel for one query against one segment. `query_flat`
    /// must be flattened against the segment's catalog (or an extension of
    /// it); `fixed_extended_size` is `Some` under GBDA-V1, `weight` under
    /// GBDA-V2; `use_cascade` mirrors
    /// [`GbdaConfig::filter_cascade`](crate::GbdaConfig).
    pub fn new(
        segment: &'q S,
        query_flat: &'q FlatBranchSet,
        query_size: usize,
        fixed_extended_size: Option<usize>,
        weight: Option<f64>,
        use_cascade: bool,
    ) -> Self {
        let cascade = use_cascade.then(|| FilterCascade::new(segment, query_flat, weight));
        ScanKernel {
            segment,
            cascade,
            query_flat,
            query_size,
            fixed_extended_size,
            weight,
        }
    }

    /// The segment this kernel scans.
    pub fn segment(&self) -> &'q S {
        self.segment
    }

    /// The extended size `|V'1|` for a graph of `graph_size` vertices,
    /// honouring GBDA-V1's fixed size.
    pub fn extended_size_for(&self, graph_size: usize) -> usize {
        match self.fixed_extended_size {
            Some(v) => v,
            None => self.query_size.max(graph_size).max(1),
        }
    }

    /// The scan loop. Drives `range` through the cascade stages under
    /// `cutoff`, resolving posteriors through `lookup` (signature
    /// `(stats, extended_size, phi) -> posterior` so implementations can
    /// book cache hits/misses), and delivers survivors to `sink`.
    ///
    /// `mask(i)` returns `true` for slots to skip entirely (tombstones);
    /// `id_of(i)` maps a segment-local index to the sink's id space.
    #[allow(clippy::too_many_arguments)]
    pub fn scan<I, C, K>(
        &self,
        range: Range<usize>,
        cutoff: &C,
        sink: &mut K,
        stats: &mut SearchStats,
        mask: impl Fn(usize) -> bool,
        id_of: impl Fn(usize) -> I,
        mut lookup: impl FnMut(&mut SearchStats, usize, u64) -> f64,
    ) where
        I: Copy,
        C: Cutoff,
        K: Sink<I>,
    {
        let start = range.start;
        match &self.cascade {
            Some(cascade) => {
                let prune = cascade.bounds_usable() && cutoff.prunes();
                // The stage-3 count filter resolves the whole range at once;
                // built lazily so a range fully decided by the bound stages
                // never touches the postings.
                let mut accumulator: Option<Vec<u32>> = None;
                for i in range.clone() {
                    if mask(i) {
                        continue;
                    }
                    stats.evaluated += 1;
                    let extended_size = self.extended_size_for(self.segment.size_of(i));
                    if prune {
                        let bound = sink.bound();
                        if cutoff.prunes_under(bound) {
                            let bucket = self.segment.bucket_of(i);
                            match cutoff.classify_bucket(bucket, bound) {
                                BoundClass::Accept => {
                                    stats.bound_accepted += 1;
                                    sink.accept(id_of(i));
                                    continue;
                                }
                                BoundClass::Reject => {
                                    cutoff.count_pruned(stats);
                                    continue;
                                }
                                BoundClass::Undecided => {
                                    let (lb, ub) = cascade.refined_bounds(i);
                                    match cutoff.classify_refined(bucket, lb, ub, bound) {
                                        BoundClass::Accept => {
                                            stats.bound_accepted += 1;
                                            sink.accept(id_of(i));
                                            continue;
                                        }
                                        BoundClass::Reject => {
                                            cutoff.count_pruned(stats);
                                            continue;
                                        }
                                        BoundClass::Undecided => {}
                                    }
                                }
                            }
                        }
                    }
                    // Stage 3: exact ϕ from the inverted postings.
                    let acc =
                        accumulator.get_or_insert_with(|| cascade.intersections(range.clone()));
                    let phi = cascade.phi_exact(i, acc[i - start]);
                    stats.postings_resolved += 1;
                    match cutoff.classify_phi(self.segment.bucket_of(i), phi) {
                        BoundClass::Accept => {
                            stats.threshold_accepts += 1;
                            sink.accept(id_of(i));
                        }
                        BoundClass::Reject => {}
                        BoundClass::Undecided => {
                            let posterior = lookup(stats, extended_size, phi);
                            sink.offer(id_of(i), posterior, cutoff.admits(posterior), stats);
                        }
                    }
                }
            }
            None => {
                // Merge path: ϕ from a full flat-run merge per graph.
                let query = self.query_flat.as_view();
                for i in range {
                    if mask(i) {
                        continue;
                    }
                    stats.evaluated += 1;
                    stats.merged += 1;
                    let extended_size = self.extended_size_for(self.segment.size_of(i));
                    let phi = match self.weight {
                        Some(w) => {
                            let value = query.weighted_gbd(self.segment.flat_view(i), w);
                            value.round().max(0.0) as u64
                        }
                        None => query.gbd(self.segment.flat_view(i)) as u64,
                    };
                    match cutoff.merge_classify_phi(self.segment.bucket_of(i), phi) {
                        BoundClass::Accept => {
                            stats.threshold_accepts += 1;
                            sink.accept(id_of(i));
                        }
                        BoundClass::Reject => unreachable!("merge scans never fast-reject"),
                        BoundClass::Undecided => {
                            let posterior = lookup(stats, extended_size, phi);
                            sink.offer(id_of(i), posterior, cutoff.admits(posterior), stats);
                        }
                    }
                }
            }
        }
    }
}

/// Runs `scan` over `shards` contiguous ranges of `0..n` on scoped threads,
/// returning the per-shard results in range order (shard 0's range precedes
/// shard 1's, so concatenation preserves ascending scan order). `shards` is
/// clamped to `[1, max(n, 1)]`; a single effective shard runs inline.
pub fn scan_shards<T: Send>(
    n: usize,
    shards: usize,
    scan: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    let shards = shards.max(1).min(n.max(1));
    if shards <= 1 {
        return vec![scan(0..n)];
    }
    let chunk = n.div_ceil(shards);
    let mut results = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                let range = (s * chunk)..n.min((s + 1) * chunk);
                let scan = &scan;
                scope.spawn(move || scan(range))
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("scan shard panicked"));
        }
    });
    results
}

/// Runs `per_item` over every item on a work-stealing pool of up to
/// `workers` scoped threads, returning the results in item order plus the
/// worker count actually used (`None` when the batch ran sequentially).
///
/// The second argument to `per_item` is the shard budget the item may use
/// for its *own* scan: the full `workers` budget when the batch runs
/// sequentially (one item at a time gets all threads), `1` when items run
/// concurrently (one thread each).
pub fn run_batch<Q: Sync, T: Send>(
    workers: usize,
    items: &[Q],
    per_item: impl Fn(&Q, usize) -> T + Sync,
) -> (Vec<T>, Option<usize>) {
    let workers = workers.max(1);
    if workers <= 1 || items.len() <= 1 {
        let results = items.iter().map(|item| per_item(item, workers)).collect();
        return (results, None);
    }
    let workers = workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = cursor.fetch_add(1, Ordering::Relaxed);
                if next >= items.len() {
                    break;
                }
                let result = per_item(&items[next], 1);
                *slots[next].lock() = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every batch slot is filled by a worker")
        })
        .collect();
    (results, Some(workers))
}
